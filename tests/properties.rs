//! Property-based tests over the reproduction's core invariants, driven
//! by the in-repo seeded harness (`cfd_isa::prop_check`).

use cfd::core::{Core, CoreConfig, FetchBq, FetchTq};
use cfd::isa::{eval_alu, prop_check, AluOp, ArchBq, ArchTq, Assembler, Machine, MemImage, Reg};
use cfd::workloads::{AddressPattern, CdRegion, Predicate, Scale, ScanKernel, Suite, Variant};

// ---------------------------------------------------------------------
// BQ: the microarchitectural queue tracks the architectural model under
// arbitrary interleavings of push/execute/pop/mark/forward.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BqOp {
    PushExec(bool),
    Pop,
    Mark,
    Forward,
}

fn bq_op(rng: &mut cfd::isa::Rng) -> BqOp {
    match rng.weighted(&[3, 3, 1, 1]) {
        0 => BqOp::PushExec(rng.bool()),
        1 => BqOp::Pop,
        2 => BqOp::Mark,
        _ => BqOp::Forward,
    }
}

#[test]
fn fetch_bq_matches_arch_bq() {
    prop_check!(64, |rng| {
        let ops = rng.vec(1, 200, bq_op);
        let mut hw = FetchBq::new(16);
        let mut model = ArchBq::new(16);
        let mut marked = false;
        for op in ops {
            match op {
                BqOp::PushExec(p) => {
                    if hw.push_would_stall() {
                        assert_eq!(model.len(), 16, "stall only when the model is full");
                        continue;
                    }
                    let abs = hw.fetch_push();
                    hw.execute_push(abs, p);
                    hw.retire_push();
                    model.push(p).unwrap();
                }
                BqOp::Pop => {
                    if model.is_empty() {
                        continue;
                    }
                    let (_, pred) = hw.fetch_pop();
                    hw.retire_pop();
                    let want = model.pop().unwrap();
                    assert_eq!(pred, Some(want), "predicate mismatch");
                }
                BqOp::Mark => {
                    hw.fetch_mark();
                    hw.retire_mark();
                    model.mark();
                    marked = true;
                }
                BqOp::Forward => {
                    if !marked {
                        continue;
                    }
                    let skipped_hw = hw.fetch_forward().unwrap();
                    hw.retire_forward();
                    let skipped_model = model.forward().unwrap() as u64;
                    assert_eq!(skipped_hw, skipped_model, "forward skip count mismatch");
                }
            }
            assert_eq!(hw.length(), model.len() as u64, "occupancy mismatch");
        }
    });
}

#[test]
fn bq_recovery_restores_future_pops() {
    prop_check!(64, |rng| {
        // Push a prefix, snapshot, do wrong-path pushes/pops, recover: the
        // pops after recovery must see exactly the prefix.
        let prefix = rng.vec(1, 12, |r| r.bool());
        let wrong = rng.vec(1, 12, |r| r.bool());
        let mut hw = FetchBq::new(32);
        for &p in &prefix {
            let abs = hw.fetch_push();
            hw.execute_push(abs, p);
        }
        let snap = hw.snapshot();
        for &p in &wrong {
            if !hw.push_would_stall() {
                let abs = hw.fetch_push();
                hw.execute_push(abs, p);
            }
            let _ = hw.fetch_pop();
        }
        hw.recover(&snap);
        for &want in &prefix {
            let (_, got) = hw.fetch_pop();
            assert_eq!(got, Some(want));
        }
    });
}

#[test]
fn fetch_tq_matches_arch_tq() {
    prop_check!(64, |rng| {
        // Random interleaving of pushes (with counts occasionally exceeding
        // the 16-bit architected maximum) and pop+drain sequences.
        let ops = rng.vec(1, 150, |r| (r.bool(), r.range_i64(0, 100_000)));
        let mut hw = FetchTq::new(8, 16);
        let mut model = ArchTq::with_trip_bits(8, 16);
        for (is_push, count) in ops {
            if is_push {
                if hw.push_would_stall() {
                    assert_eq!(model.len(), 8);
                    continue;
                }
                let abs = hw.fetch_push();
                hw.execute_push(abs, count);
                hw.retire_push();
                model.push(count).unwrap();
            } else {
                if model.is_empty() {
                    continue;
                }
                let (_, ovf) = hw.fetch_pop();
                let want = model.pop().unwrap();
                assert_eq!(ovf, Some(want.overflow));
                assert_eq!(hw.tcr, model.tcr());
                // Drain the trip count through Branch_on_TCR.
                let mut iters = 0u32;
                while hw.fetch_branch_on_tcr() {
                    assert!(model.branch_on_tcr());
                    iters += 1;
                }
                assert!(!model.branch_on_tcr());
                assert_eq!(iters, want.trip_count);
                hw.retire_pop(0);
            }
            assert_eq!(hw.length(), model.len() as u64);
        }
    });
}

// ---------------------------------------------------------------------
// Functional simulator vs an independent interpreter on random
// straight-line ALU programs.
// ---------------------------------------------------------------------

#[test]
fn functional_sim_matches_reference_interpreter() {
    prop_check!(64, |rng| {
        let alu_ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Seq,
            AluOp::Max,
        ];
        let ops = rng.vec(1, 60, |r| {
            (r.range_usize(0, 14), r.range_usize(1, 8), r.range_usize(1, 8), r.range_usize(1, 8), r.range_i64(-50, 50))
        });
        let mut a = Assembler::new();
        let mut ref_regs = [0i64; 8];
        for (op_idx, rd, rs1, rs2, imm) in &ops {
            let op = alu_ops[*op_idx];
            if *imm % 2 == 0 {
                a.alu(op, Reg::new(*rd), Reg::new(*rs1), Reg::new(*rs2));
                ref_regs[*rd] = eval_alu(op, ref_regs[*rs1], ref_regs[*rs2]);
            } else {
                a.alu(op, Reg::new(*rd), Reg::new(*rs1), *imm);
                ref_regs[*rd] = eval_alu(op, ref_regs[*rs1], *imm);
            }
        }
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        for (r, want) in ref_regs.iter().enumerate().skip(1) {
            assert_eq!(m.regs.read(Reg::new(r)), *want, "r{r} mismatch");
        }
    });
}

// ---------------------------------------------------------------------
// Whole-kernel properties (fewer cases: each runs several simulations).
// ---------------------------------------------------------------------

#[test]
fn scan_kernel_variants_always_agree() {
    prop_check!(10, |rng| {
        let kernel = ScanKernel {
            name: "prop_scan",
            suite: Suite::Spec2006,
            pattern: if rng.bool() { AddressPattern::Indirect } else { AddressPattern::Streaming },
            predicate: Predicate::Threshold { threshold: rng.range_i64(5, 95), range: 100 },
            cd: CdRegion { alu_updates: rng.range_usize(5, 10), stores: rng.bool() },
            chunk: rng.range_i64(8, 128),
            partial_feedback: rng.bool(),
            what: "prop branch",
        };
        let scale = Scale { n: 300, seed: rng.range_u64(1, u64::MAX) };
        let want = kernel.build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd] {
            let got = kernel.build(v, scale).observe().unwrap();
            assert_eq!(got, want, "variant {v} diverges");
        }
    });
}

#[test]
fn timing_core_retires_functional_stream_on_random_kernels() {
    prop_check!(10, |rng| {
        // The core's internal oracle verifies every retired instruction;
        // additionally the retired count must match functional execution.
        let chunk = rng.range_i64(16, 128);
        let kernel = ScanKernel {
            name: "prop_timing",
            suite: Suite::Spec2006,
            pattern: AddressPattern::Streaming,
            predicate: Predicate::Threshold { threshold: rng.range_i64(10, 90), range: 100 },
            cd: CdRegion { alu_updates: 6, stores: true },
            chunk,
            partial_feedback: false,
            what: "prop branch",
        };
        let scale = Scale { n: 250, seed: rng.range_u64(1, u64::MAX) };
        for v in [Variant::Base, Variant::Cfd] {
            let w = kernel.build(v, scale);
            let functional = w.dynamic_instructions().unwrap();
            let cfg = CoreConfig { bq_size: chunk.max(16) as usize, ..Default::default() };
            let rep = Core::new(cfg, w.program.clone(), w.mem.clone()).unwrap().run(50_000_000).unwrap();
            assert_eq!(rep.stats.retired, functional);
        }
    });
}
