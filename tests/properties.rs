//! Property-based tests over the reproduction's core invariants.

use cfd::core::{Core, CoreConfig, FetchBq, FetchTq};
use cfd::isa::{eval_alu, AluOp, ArchBq, ArchTq, Assembler, Machine, MemImage, Reg};
use cfd::workloads::{AddressPattern, CdRegion, Predicate, Scale, ScanKernel, Suite, Variant};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// BQ: the microarchitectural queue tracks the architectural model under
// arbitrary interleavings of push/execute/pop/mark/forward.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BqOp {
    PushExec(bool),
    Pop,
    Mark,
    Forward,
}

fn bq_op() -> impl Strategy<Value = BqOp> {
    prop_oneof![
        3 => any::<bool>().prop_map(BqOp::PushExec),
        3 => Just(BqOp::Pop),
        1 => Just(BqOp::Mark),
        1 => Just(BqOp::Forward),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fetch_bq_matches_arch_bq(ops in proptest::collection::vec(bq_op(), 1..200)) {
        let mut hw = FetchBq::new(16);
        let mut model = ArchBq::new(16);
        let mut marked = false;
        for op in ops {
            match op {
                BqOp::PushExec(p) => {
                    if hw.push_would_stall() {
                        prop_assert_eq!(model.len(), 16, "stall only when the model is full");
                        continue;
                    }
                    let abs = hw.fetch_push();
                    hw.execute_push(abs, p);
                    hw.retire_push();
                    model.push(p).unwrap();
                }
                BqOp::Pop => {
                    if model.is_empty() {
                        continue;
                    }
                    let (_, pred) = hw.fetch_pop();
                    hw.retire_pop();
                    let want = model.pop().unwrap();
                    prop_assert_eq!(pred, Some(want), "predicate mismatch");
                }
                BqOp::Mark => {
                    hw.fetch_mark();
                    hw.retire_mark();
                    model.mark();
                    marked = true;
                }
                BqOp::Forward => {
                    if !marked {
                        continue;
                    }
                    let skipped_hw = hw.fetch_forward().unwrap();
                    hw.retire_forward();
                    let skipped_model = model.forward().unwrap() as u64;
                    prop_assert_eq!(skipped_hw, skipped_model, "forward skip count mismatch");
                }
            }
            prop_assert_eq!(hw.length(), model.len() as u64, "occupancy mismatch");
        }
    }

    #[test]
    fn bq_recovery_restores_future_pops(
        prefix in proptest::collection::vec(any::<bool>(), 1..12),
        wrong in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        // Push a prefix, snapshot, do wrong-path pushes/pops, recover: the
        // pops after recovery must see exactly the prefix.
        let mut hw = FetchBq::new(32);
        for &p in &prefix {
            let abs = hw.fetch_push();
            hw.execute_push(abs, p);
        }
        let snap = hw.snapshot();
        for &p in &wrong {
            if !hw.push_would_stall() {
                let abs = hw.fetch_push();
                hw.execute_push(abs, p);
            }
            let _ = hw.fetch_pop();
        }
        hw.recover(&snap);
        for &want in &prefix {
            let (_, got) = hw.fetch_pop();
            prop_assert_eq!(got, Some(want));
        }
    }

    #[test]
    fn fetch_tq_matches_arch_tq(
        ops in proptest::collection::vec((any::<bool>(), 0i64..100_000), 1..150)
    ) {
        // Random interleaving of pushes (with counts occasionally exceeding
        // the 16-bit architected maximum) and pop+drain sequences.
        let mut hw = FetchTq::new(8, 16);
        let mut model = ArchTq::with_trip_bits(8, 16);
        for (is_push, count) in ops {
            if is_push {
                if hw.push_would_stall() {
                    prop_assert_eq!(model.len(), 8);
                    continue;
                }
                let abs = hw.fetch_push();
                hw.execute_push(abs, count);
                hw.retire_push();
                model.push(count).unwrap();
            } else {
                if model.is_empty() {
                    continue;
                }
                let (_, ovf) = hw.fetch_pop();
                let want = model.pop().unwrap();
                prop_assert_eq!(ovf, Some(want.overflow));
                prop_assert_eq!(hw.tcr, model.tcr());
                // Drain the trip count through Branch_on_TCR.
                let mut iters = 0u32;
                while hw.fetch_branch_on_tcr() {
                    prop_assert!(model.branch_on_tcr());
                    iters += 1;
                }
                prop_assert!(!model.branch_on_tcr());
                prop_assert_eq!(iters, want.trip_count);
                hw.retire_pop(0);
            }
            prop_assert_eq!(hw.length(), model.len() as u64);
        }
    }

    // -----------------------------------------------------------------
    // Functional simulator vs an independent interpreter on random
    // straight-line ALU programs.
    // -----------------------------------------------------------------

    #[test]
    fn functional_sim_matches_reference_interpreter(
        ops in proptest::collection::vec((0usize..14, 1usize..8, 1usize..8, 1usize..8, -50i64..50), 1..60)
    ) {
        let alu_ops = [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div, AluOp::Rem, AluOp::And, AluOp::Or,
            AluOp::Xor, AluOp::Sll, AluOp::Srl, AluOp::Sra, AluOp::Slt, AluOp::Seq, AluOp::Max,
        ];
        let mut a = Assembler::new();
        let mut ref_regs = [0i64; 8];
        for (op_idx, rd, rs1, rs2, imm) in &ops {
            let op = alu_ops[*op_idx];
            if *imm % 2 == 0 {
                a.alu(op, Reg::new(*rd), Reg::new(*rs1), Reg::new(*rs2));
                ref_regs[*rd] = eval_alu(op, ref_regs[*rs1], ref_regs[*rs2]);
            } else {
                a.alu(op, Reg::new(*rd), Reg::new(*rs1), *imm);
                ref_regs[*rd] = eval_alu(op, ref_regs[*rs1], *imm);
            }
        }
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        for (r, want) in ref_regs.iter().enumerate().skip(1) {
            prop_assert_eq!(m.regs.read(Reg::new(r)), *want, "r{} mismatch", r);
        }
    }
}

// ---------------------------------------------------------------------
// Whole-kernel properties (fewer cases: each runs four simulations).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn scan_kernel_variants_always_agree(
        seed in 1u64..u64::MAX,
        threshold in 5i64..95,
        alu_updates in 5usize..10,
        stores in any::<bool>(),
        indirect in any::<bool>(),
        partial in any::<bool>(),
        chunk in 8i64..128,
    ) {
        let kernel = ScanKernel {
            name: "prop_scan",
            suite: Suite::Spec2006,
            pattern: if indirect { AddressPattern::Indirect } else { AddressPattern::Streaming },
            predicate: Predicate::Threshold { threshold, range: 100 },
            cd: CdRegion { alu_updates, stores },
            chunk,
            partial_feedback: partial,
            what: "prop branch",
        };
        let scale = Scale { n: 300, seed };
        let want = kernel.build(Variant::Base, scale).observe().unwrap();
        for v in [Variant::Cfd, Variant::CfdPlus, Variant::Dfd, Variant::CfdDfd] {
            let got = kernel.build(v, scale).observe().unwrap();
            prop_assert_eq!(&got, &want, "variant {} diverges", v);
        }
    }

    #[test]
    fn timing_core_retires_functional_stream_on_random_kernels(
        seed in 1u64..u64::MAX,
        threshold in 10i64..90,
        chunk in 16i64..128,
    ) {
        // The core's internal oracle verifies every retired instruction;
        // additionally the retired count must match functional execution.
        let kernel = ScanKernel {
            name: "prop_timing",
            suite: Suite::Spec2006,
            pattern: AddressPattern::Streaming,
            predicate: Predicate::Threshold { threshold, range: 100 },
            cd: CdRegion { alu_updates: 6, stores: true },
            chunk,
            partial_feedback: false,
            what: "prop branch",
        };
        let scale = Scale { n: 250, seed };
        for v in [Variant::Base, Variant::Cfd] {
            let w = kernel.build(v, scale);
            let functional = w.dynamic_instructions().unwrap();
            let cfg = CoreConfig { bq_size: chunk.max(16) as usize, ..Default::default() };
            let rep = Core::new(cfg, w.program.clone(), w.mem.clone()).run(50_000_000).unwrap();
            prop_assert_eq!(rep.stats.retired, functional);
        }
    }
}
