//! Cross-crate integration tests: workloads × analysis × profiler × timing
//! core, exercised together the way the experiment harness uses them.

use cfd::analysis::{classify_program, BranchClass, ClassifyConfig};
use cfd::core::{Core, CoreConfig, PerfectMode};
use cfd::profile::profile;
use cfd::workloads::{by_name, catalog, PaperClass, Scale, Variant};

fn small() -> Scale {
    Scale { n: 1_200, seed: 0xe2e }
}

fn run_timing(w: &cfd::workloads::Workload, cfg: &CoreConfig) -> cfd::core::RunReport {
    Core::new(cfg.clone(), w.program.clone(), w.mem.clone()).unwrap().run(100_000_000).expect("simulation completes")
}

#[test]
fn every_catalog_variant_survives_the_timing_core() {
    // The timing core cross-checks every retired instruction against the
    // functional oracle, so simply completing is a strong statement.
    let scale = small();
    for entry in catalog() {
        for &v in entry.variants {
            let w = entry.build(v, scale);
            let rep = run_timing(&w, &CoreConfig::default());
            assert!(rep.stats.retired > 0, "{} [{v}] retired nothing", entry.name);
        }
    }
}

#[test]
fn timing_retirement_matches_functional_instruction_count() {
    let scale = small();
    for name in ["soplex_ref_like", "astar_tq_like", "tiff2bw_like"] {
        let w = by_name(name).unwrap().build(Variant::Base, scale);
        let functional = w.dynamic_instructions().unwrap();
        let rep = run_timing(&w, &CoreConfig::default());
        assert_eq!(rep.stats.retired, functional, "{name}: timing and functional disagree");
    }
}

#[test]
fn static_classifier_agrees_with_kernel_annotations() {
    // The kernels carry the paper's intended class; the independent static
    // classifier must reach the same verdict for the scan-family kernels.
    let scale = small();
    for name in ["soplex_ref_like", "mcf_like", "jpeg_like", "hmmer_like", "soplex_upd_like"] {
        let w = by_name(name).unwrap().build(Variant::Base, scale);
        let reports = classify_program(&w.program, None, ClassifyConfig::default());
        for ib in &w.interest {
            let got = reports.iter().find(|r| r.pc == ib.pc).expect("classified").class;
            let want = match ib.class {
                PaperClass::SeparableTotal => BranchClass::SeparableTotal,
                PaperClass::SeparablePartial => BranchClass::SeparablePartial,
                PaperClass::Hammock => BranchClass::Hammock,
                PaperClass::SeparableLoopBranch => BranchClass::SeparableLoopBranch,
                PaperClass::Inseparable => BranchClass::Inseparable,
                PaperClass::SpeculativelySeparable => BranchClass::SpeculativelySeparable,
            };
            assert_eq!(got, want, "{name} pc {}", ib.pc);
        }
    }
}

#[test]
fn profiler_and_timing_core_see_the_same_hard_branch() {
    let scale = small();
    let w = by_name("soplex_ref_like").unwrap().build(Variant::Base, scale);
    let prof = profile(&w, "isl-tage", 100_000_000).unwrap();
    let rep = run_timing(&w, &CoreConfig::default());
    let hard_pc = w.interest[0].pc;
    let prof_rate = prof.per_branch[&hard_pc].miss_rate();
    let timing_stat = rep.stats.branches.get(&hard_pc).expect("branch retired");
    let timing_rate = timing_stat.mispredicted as f64 / timing_stat.executed as f64;
    // Same predictor family, but the timing core trains at retire with
    // wrong-path effects — rates agree loosely, not exactly.
    assert!(
        (prof_rate - timing_rate).abs() < 0.15,
        "profiler {prof_rate:.3} vs timing {timing_rate:.3} diverge too much"
    );
}

#[test]
fn cfd_beats_base_beats_nothing_ordering() {
    // Sanity ordering on the flagship kernel: perfect >= cfd > base (by
    // cycles, CFD pays instruction overhead but kills mispredictions).
    let scale = Scale { n: 4_000, seed: 0xe2e };
    let entry = by_name("soplex_pds_like").unwrap();
    let base_w = entry.build(Variant::Base, scale);
    let base = run_timing(&base_w, &CoreConfig::default());
    let cfd = run_timing(&entry.build(Variant::Cfd, scale), &CoreConfig::default());
    let pcfg = CoreConfig { perfect: PerfectMode::All, ..Default::default() };
    let perfect = run_timing(&base_w, &pcfg);
    assert!(cfd.stats.cycles < base.stats.cycles, "CFD must win on the hard branch");
    assert!(perfect.stats.cycles < base.stats.cycles, "perfect must win");
}

#[test]
fn energy_reduction_comes_with_cfd() {
    let scale = Scale { n: 4_000, seed: 0xe2e };
    let entry = by_name("tiffmedian_like").unwrap();
    let base = run_timing(&entry.build(Variant::Base, scale), &CoreConfig::default());
    let cfd = run_timing(&entry.build(Variant::Cfd, scale), &CoreConfig::default());
    let model = cfd::energy::EnergyModel::default();
    assert!(
        cfd.energy(&model).total_pj < base.energy(&model).total_pj,
        "eliminating wrong-path work must save energy here"
    );
}

#[test]
fn wrong_path_work_shrinks_under_cfd() {
    let scale = Scale { n: 4_000, seed: 0xe2e };
    let entry = by_name("soplex_ref_like").unwrap();
    let base = run_timing(&entry.build(Variant::Base, scale), &CoreConfig::default());
    let cfd = run_timing(&entry.build(Variant::Cfd, scale), &CoreConfig::default());
    assert!(
        cfd.stats.wrong_path_fetched * 5 < base.stats.wrong_path_fetched,
        "CFD removes the dominant wrong-path source: {} vs {}",
        cfd.stats.wrong_path_fetched,
        base.stats.wrong_path_fetched
    );
}

#[test]
fn auto_transform_output_runs_on_the_timing_core() {
    use cfd::analysis::apply_cfd;
    use cfd::isa::{Assembler, MemImage, Reg};
    let r = Reg::new;
    let (i, n, base, x, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let mut a = Assembler::new();
    a.li(n, 3_000);
    a.li(base, 0x20000);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base);
    a.ld(x, 0, tmp);
    a.slt(p, x, 500i64);
    let bpc = a.here();
    a.beqz(p, "skip");
    a.add(r(9), r(9), x);
    a.xor(r(10), r(10), r(9));
    a.add(r(11), r(11), r(10));
    a.sub(r(12), r(11), r(9));
    a.add(r(12), r(12), 1i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    let program = a.finish().unwrap();
    let mut mem = MemImage::new();
    let mut s = 77u64;
    for k in 0..3_000u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(0x20000 + 8 * k, s % 1000);
    }
    let t = apply_cfd(&program, bpc, 128, &[r(20), r(21), r(22), r(23)]).unwrap();
    let b = Core::new(CoreConfig::default(), program, mem.clone()).unwrap().run(100_000_000).unwrap();
    let c = Core::new(CoreConfig::default(), t.program, mem).unwrap().run(100_000_000).unwrap();
    assert!(c.stats.mispredictions * 5 < b.stats.mispredictions, "transform kills the mispredictions");
}
