//! # cfd — Control-Flow Decoupling, reproduced in Rust
//!
//! A full reproduction of *"Control-Flow Decoupling: An Approach for
//! Timely, Non-speculative Branching"* (Sheikh, Tuck, Rotenberg;
//! MICRO 2012 / IEEE TC 2014): the CFD ISA extension, the fetch-resident
//! Branch/Value/Trip-count queues, a Sandy-Bridge-class out-of-order core
//! simulator, the paper's branch-classification analysis, benchmark-analog
//! workloads, and an experiment harness that regenerates every table and
//! figure of the evaluation.
//!
//! This crate is a facade: it re-exports the workspace's sub-crates under
//! one roof. See DESIGN.md for the system inventory and EXPERIMENTS.md for
//! recorded paper-vs-measured results.
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`isa`] | `cfd-isa` | ISA + CFD extension, assembler, functional simulator |
//! | [`predictor`] | `cfd-predictor` | ISL-TAGE-lite, gshare, bimodal, BTB, RAS, confidence |
//! | [`mem`] | `cfd-mem` | cache hierarchy, MSHRs, prefetchers |
//! | [`energy`] | `cfd-energy` | event-based energy accounting |
//! | [`analysis`] | `cfd-analysis` | CFG/dominance/slices, separability classes, auto-CFD |
//! | [`core`] | `cfd-core` | the cycle-level OOO core with CFD microarchitecture |
//! | [`workloads`] | `cfd-workloads` | benchmark-analog kernels with all variants |
//! | [`profile`] | `cfd-profile` | per-branch MPKI profiling (PIN-tool analog) |
//!
//! # Quickstart
//!
//! ```
//! use cfd::core::{Core, CoreConfig};
//! use cfd::workloads::{by_name, Scale, Variant};
//!
//! let entry = by_name("soplex_ref_like").unwrap();
//! let scale = Scale { n: 2_000, seed: 42 };
//! let base = entry.build(Variant::Base, scale);
//! let cfd = entry.build(Variant::Cfd, scale);
//!
//! let b = Core::new(CoreConfig::default(), base.program.clone(), base.mem.clone())?
//!     .run(100_000_000)?;
//! let c = Core::new(CoreConfig::default(), cfd.program.clone(), cfd.mem.clone())?
//!     .run(100_000_000)?;
//! assert!(c.speedup_over(&b) > 1.0, "CFD wins on the hard separable branch");
//! # Ok::<(), cfd::core::CoreError>(())
//! ```

pub use cfd_analysis as analysis;
pub use cfd_core as core;
pub use cfd_energy as energy;
pub use cfd_harden as harden;
pub use cfd_isa as isa;
pub use cfd_mem as mem;
pub use cfd_predictor as predictor;
pub use cfd_profile as profile;
pub use cfd_workloads as workloads;
