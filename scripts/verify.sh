#!/usr/bin/env bash
# Tier-1 verification plus smoke fault-injection, crash-resume, and
# IO-chaos gates, fully offline.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release rebuild of the campaign runner when it is
#             already built (CI convenience)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "== tier-1: cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== lint gate: cargo clippy --all-targets -- -D warnings"
cargo clippy -q --offline --all-targets -- -D warnings

echo "== format gate: cargo fmt --check"
cargo fmt --check

echo "== doc gate: cargo doc must build without warnings"
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

cache=$(mktemp -d)
lint_par=$(mktemp); lint_ser=$(mktemp); stats=$(mktemp)
out=$(mktemp); out2=$(mktemp)
obs=$(mktemp -d)
crash=$(mktemp -d); resumed=$(mktemp)
sep=$(mktemp)
serve=$(mktemp -d)
trap 'rm -rf "$cache" "$lint_par" "$lint_ser" "$stats" "$out" "$out2" "$obs" "$crash" "$resumed" "$sep" "$serve"' EXIT

echo "== observe determinism: two telemetry runs must be byte-identical"
cargo run -q --release --offline -p cfd-bench --bin experiments -- \
    observe soplex_ref_like --csv "$obs/a.csv" --trace-out "$obs/a.json" > "$obs/a.txt"
cargo run -q --release --offline -p cfd-bench --bin experiments -- \
    observe soplex_ref_like --csv "$obs/b.csv" --trace-out "$obs/b.json" > "$obs/b.txt"
cmp "$obs/a.csv" "$obs/b.csv"
cmp "$obs/a.json" "$obs/b.json"
grep -q '"traceEvents"' "$obs/a.json"

echo "== static queue-discipline verification (experiments lint, --jobs 2)"
CFD_CACHE_DIR="$cache" cargo run -q --release --offline -p cfd-bench --bin experiments -- \
    lint --jobs 2 --json "$lint_par" > /dev/null 2> "$stats"
grep '^\[cfd-exec\]' "$stats"

echo "== lint cross-check: serial, uncached sweep must match byte-for-byte"
cargo run -q --release --offline -p cfd-bench --bin experiments -- \
    lint --jobs 1 --no-cache --json "$lint_ser" > /dev/null 2>&1
cmp "$lint_par" "$lint_ser"

echo "== lint warm-cache re-run must execute nothing"
CFD_CACHE_DIR="$cache" cargo run -q --release --offline -p cfd-bench --bin experiments -- \
    lint --jobs 2 --json "$lint_ser" > /dev/null 2> "$stats"
grep '^\[cfd-exec\]' "$stats"
grep -q 'executed=0 failed=0' "$stats"
cmp "$lint_par" "$lint_ser"

echo "== separability gates: auto-CFD selection, speculation lint, dynamic claims"
# Exits non-zero when any accepted rewrite lints dirty (e.g. an unproven
# load reaching a speculative rewrite), diverges functionally, or has a
# static disjointness claim contradicted dynamically — and the table must
# stay byte-identical to the checked-in fixture.
target/release/experiments separability --json "$sep" > /dev/null
cmp "$sep" crates/bench/tests/fixtures/separability.json

echo "== crash-safety gate: SIGKILL a mid-run campaign, then --resume must heal it"
# Exec the binary directly (killing a `cargo run` wrapper would orphan the
# child); the journal + cache must let --resume reproduce the uninterrupted
# parallel sweep byte-for-byte.
CFD_CACHE_DIR="$crash" target/release/experiments lint --jobs 4 --json "$resumed" > /dev/null 2>&1 &
victim=$!
# Kill as soon as the first result is durable: mid-campaign on any host.
for _ in $(seq 1 500); do
    compgen -G "$crash/*.json" > /dev/null && break
    sleep 0.01
done
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
CFD_CACHE_DIR="$crash" target/release/experiments lint --jobs 4 --resume --json "$resumed" > /dev/null 2> "$stats"
grep '^\[cfd-exec\]' "$stats"
cmp "$resumed" "$lint_par"

echo "== chaos gate: every injected IO fault must be masked or detected"
# `experiments chaos` exits non-zero on any silent divergence or hang; the
# greps double-check the tally the JSON table reports.
target/release/experiments chaos --json "$out" > /dev/null
grep -q '"silent_divergence": 0' "$out"
grep -q '"hang": 0' "$out"

echo "== dse gate: flagship sweep must match the checked-in Pareto fixture"
# The full 216-point grid, re-simulated and compared byte-for-byte: any
# drift in the simulator, the energy model, the fixed-precision funnel,
# or the frontier algorithm shows up here.
target/release/experiments dse --preset default --jobs 4 --no-cache --quiet --out "$out"
cmp "$out" crates/bench/tests/fixtures/dse_default.txt

echo "== daemon gate: concurrent clients, serial equality, SIGKILL resume"
# Serial, cache-less, in-process reference run first.
target/release/experiments dse --preset tiny --jobs 1 --no-cache --quiet --out "$serve/serial.txt"
target/release/cfd-serve daemon --socket "$serve/sock" --store "$serve/store" --jobs 2 --quiet &
daemon=$!
for _ in $(seq 1 500); do [[ -S "$serve/sock" ]] && break; sleep 0.01; done
# Two concurrent clients must fold onto one sweep and both must receive
# bytes identical to the serial reference.
target/release/cfd-serve submit --socket "$serve/sock" --preset tiny --out "$serve/c1.txt" 2> /dev/null &
client=$!
target/release/cfd-serve submit --socket "$serve/sock" --preset tiny --out "$serve/c2.txt" 2> /dev/null
wait "$client"
cmp "$serve/c1.txt" "$serve/c2.txt"
cmp "$serve/c1.txt" "$serve/serial.txt"
# SIGKILL the daemon (no clean handover — the stale socket stays behind),
# restart it on the same store: the resubmitted sweep must replay entirely
# from the artifact store, byte-identically, with zero re-executed jobs.
kill -9 "$daemon" 2> /dev/null || true
wait "$daemon" 2> /dev/null || true
target/release/cfd-serve daemon --socket "$serve/sock" --store "$serve/store" --jobs 2 --quiet &
daemon=$!
for _ in $(seq 1 500); do target/release/cfd-serve stats --socket "$serve/sock" > /dev/null 2>&1 && break; sleep 0.01; done
target/release/cfd-serve submit --socket "$serve/sock" --preset tiny --out "$serve/c3.txt" 2> "$serve/outcome.txt"
grep -q 'executed=0' "$serve/outcome.txt"
cmp "$serve/c3.txt" "$serve/serial.txt"
target/release/cfd-serve shutdown --socket "$serve/sock"
wait "$daemon"

echo "== observability gate: daemon metrics/health round-trip + JSONL event log"
# A daemon with a JSONL sink at debug; human stderr is not under test.
target/release/cfd-serve daemon --socket "$serve/sock" --store "$serve/store" --jobs 2 \
    --log "$serve/daemon.jsonl" --log-level debug 2> /dev/null &
daemon=$!
for _ in $(seq 1 500); do target/release/cfd-serve stats --socket "$serve/sock" > /dev/null 2>&1 && break; sleep 0.01; done
target/release/cfd-serve submit --socket "$serve/sock" --preset tiny --out /dev/null 2> /dev/null
target/release/cfd-serve metrics --socket "$serve/sock" > "$serve/metrics.txt"
grep -q 'daemon.requests' "$serve/metrics.txt"
grep -q 'daemon.sweep_latency_ms' "$serve/metrics.txt"
grep -q 'exec.submitted' "$serve/metrics.txt"
grep -q '\[store\] version=1' "$serve/metrics.txt"
target/release/cfd-serve health --socket "$serve/sock" > "$serve/health.txt"
grep -q 'executor=alive' "$serve/health.txt"
target/release/cfd-serve shutdown --socket "$serve/sock"
wait "$daemon"
# The daemon's event log must pass the schema gate (version, dense seq)
# and contain the sweep lifecycle.
target/release/cfd-serve logcheck --log "$serve/daemon.jsonl" > "$serve/daemon.canon"
grep -q '"event":"sweep_done"' "$serve/daemon.canon"

echo "== event-log determinism: engine JSONL byte-identical across --jobs"
# The same sweep, serial vs 4 workers, each with a JSONL sink on the
# engine: after logcheck strips wall clocks, the streams must be
# byte-identical (events are emitted only from serial engine sections).
target/release/experiments dse --preset tiny --no-cache --quiet --out /dev/null \
    --log "$serve/l1.jsonl" > /dev/null 2> /dev/null
target/release/experiments dse --preset tiny --jobs 4 --no-cache --quiet --out /dev/null \
    --log "$serve/l2.jsonl" > /dev/null 2> /dev/null
target/release/cfd-serve logcheck --log "$serve/l1.jsonl" > "$serve/l1.canon"
target/release/cfd-serve logcheck --log "$serve/l2.jsonl" > "$serve/l2.canon"
cmp "$serve/l1.canon" "$serve/l2.canon"

echo "== simperf: profiled throughput snapshot, stage shares must sum to 100%"
# The soft floor warns; the hard floor (exit 3) is the null-host overhead
# gate: the host-port refactor promises unarmed telemetry/fault/control
# ports cost nothing measurable, so even the slowest catalog workload must
# clear 100 KIPS (nominal worst case is ~330 KIPS — a 3x margin so only a
# real regression, not host noise, trips it). --append records the run
# into the KIPS trajectory artifact (one JSONL record per run), giving a
# before/after table across refactors.
target/release/experiments simperf --profile --min-kips 250 --min-kips-hard 100 --append > "$serve/simperf.txt"
grep -q 'stage shares sum to 100.00%' "$serve/simperf.txt"
test -s artifacts/BENCH_simperf.json
# --append makes the JSON artifact a trajectory: one record per run.
target/release/experiments simperf --scale 40 --json "$serve/perf.jsonl" --append > /dev/null
target/release/experiments simperf --scale 40 --json "$serve/perf.jsonl" --append > /dev/null
[[ "$(wc -l < "$serve/perf.jsonl")" == "2" ]]

echo "== checkpoint-determinism gate: quarter-point restores must be byte-identical"
# `experiments ckpt` exits 2 on any in-process divergence; the cmp
# re-checks the contract at the artifact level (one serialized RunReport
# line per workload, straight vs restored-from-checkpoint).
target/release/experiments ckpt > /dev/null
cmp artifacts/ckpt_straight.json artifacts/ckpt_restored.json

echo "== sampled-simulation gate: IPC within 10% of full detail on every workload"
# Deterministic cross-check (both IPCs are ratios of simulated counters):
# fast-forward/warm/measure sampling must land within the documented 10%
# error bound on the whole catalog, or the run exits 4.
target/release/experiments simperf --sampled --max-err 10 > "$serve/sampled.txt"
grep -q 'sampled max IPC error' "$serve/sampled.txt"

if [[ "$QUICK" == "0" ]]; then
    echo "== golden equivalence: full experiments transcript vs checked-in fixture"
    # The staged-pipeline / event-driven-wakeup refactor is contractually
    # invisible: the complete experiments transcript must stay byte-identical
    # to the pre-refactor fixture. Any simulator behavior change shows here.
    cargo run -q --release --offline -p cfd-bench --bin experiments -- \
        all --no-cache > /dev/null
    cmp artifacts/experiments_output.txt crates/bench/tests/fixtures/experiments_golden.txt

    echo "== smoke fault campaign (deterministic seed, contract-checked)"
    cargo run -q --release --offline -p cfd-bench --bin experiments -- \
        faults --smoke --seed 0xcfdfa017 --no-cache --json "$out"
    # Same seed at a different worker count must reproduce the same
    # verdict table byte-for-byte.
    cargo run -q --release --offline -p cfd-bench --bin experiments -- \
        faults --smoke --seed 0xcfdfa017 --jobs 4 --no-cache --json "$out2" > /dev/null
    cmp "$out" "$out2"
    echo "== campaign deterministic: serial and --jobs 4 verdict tables identical"
fi

echo "== verify OK"
