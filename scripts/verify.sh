#!/usr/bin/env bash
# Tier-1 verification plus a smoke fault-injection campaign, fully offline.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release rebuild of the campaign runner when it is
#             already built (CI convenience)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "== tier-1: cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== lint gate: cargo clippy --all-targets -- -D warnings"
cargo clippy -q --offline --all-targets -- -D warnings

echo "== static queue-discipline verification (experiments lint)"
cargo run -q --release --offline -p cfd-bench --bin experiments -- lint > /dev/null

if [[ "$QUICK" == "0" ]]; then
    echo "== smoke fault campaign (deterministic seed, contract-checked)"
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    cargo run -q --release --offline -p cfd-bench --bin experiments -- \
        faults --smoke --seed 0xcfdfa017 --json "$out"
    # Same seed must reproduce the same verdict table byte-for-byte.
    out2=$(mktemp)
    trap 'rm -f "$out" "$out2"' EXIT
    cargo run -q --release --offline -p cfd-bench --bin experiments -- \
        faults --smoke --seed 0xcfdfa017 --json "$out2" > /dev/null
    cmp "$out" "$out2"
    echo "== campaign deterministic: verdict tables identical"
fi

echo "== verify OK"
