//! Quickstart: decouple a hard branch and watch the mispredictions vanish.
//!
//! Builds the soplex-like kernel (the paper's Fig. 8 example) in its base
//! and CFD forms, runs both on the Sandy-Bridge-class timing core, and
//! prints what CFD did to the branch.
//!
//! Run with: `cargo run --release --example quickstart`

use cfd::core::{Core, CoreConfig};
use cfd::energy::EnergyModel;
use cfd::workloads::{by_name, Scale, Variant};

fn main() {
    let entry = by_name("soplex_ref_like").expect("kernel in catalog");
    let scale = Scale { n: 10_000, seed: 0xfeed };

    println!("kernel: {} (analog of {})\n", entry.name, entry.paper_benchmark);

    let base_w = entry.build(Variant::Base, scale);
    let cfd_w = entry.build(Variant::Cfd, scale);

    // The two programs compute the same thing (verified functionally).
    assert_eq!(base_w.observe().unwrap(), cfd_w.observe().unwrap());

    let cfg = CoreConfig::default();
    let base =
        Core::new(cfg.clone(), base_w.program.clone(), base_w.mem.clone()).unwrap().run(200_000_000).expect("base run");
    let cfd = Core::new(cfg, cfd_w.program.clone(), cfd_w.mem.clone()).unwrap().run(200_000_000).expect("cfd run");

    let model = EnergyModel::default();
    println!("                       base          CFD");
    println!("cycles        {:>13} {:>12}", base.stats.cycles, cfd.stats.cycles);
    println!("instructions  {:>13} {:>12}", base.stats.retired, cfd.stats.retired);
    println!("IPC           {:>13.3} {:>12.3}", base.ipc(), cfd.ipc());
    println!("mispredicts   {:>13} {:>12}", base.stats.mispredictions, cfd.stats.mispredictions);
    println!("wrong-path    {:>13} {:>12}", base.stats.wrong_path_fetched, cfd.stats.wrong_path_fetched);
    println!("energy (uJ)   {:>13.1} {:>12.1}", base.energy(&model).total_pj / 1e6, cfd.energy(&model).total_pj / 1e6);
    println!();
    println!(
        "CFD: {} BQ pops resolved at fetch, {} BQ misses, speedup {:.2}x, energy {:+.1}%",
        cfd.stats.bq_hits,
        cfd.stats.bq_misses,
        cfd.speedup_over(&base),
        100.0 * (cfd.energy(&model).total_pj / base.energy(&model).total_pj - 1.0)
    );
}
