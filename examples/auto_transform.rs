//! The compiler pass in action: classify a loop's branches, automatically
//! apply CFD to the totally separable one, and compare disassembly and
//! timing before/after.
//!
//! Run with: `cargo run --release --example auto_transform`

use cfd::analysis::{apply_cfd, classify_program, ClassifyConfig};
use cfd::core::{Core, CoreConfig};
use cfd::isa::{Assembler, MemImage, Reg};

fn main() {
    // A hand-written kernel: scan prices[], act on the cheap ones.
    let r = Reg::new;
    let (i, n, base, x, eps, p, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let mut a = Assembler::new();
    let count = 8_000i64;
    a.li(n, count);
    a.li(base, 0x10000);
    a.li(eps, 40);
    a.label("scan");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base);
    a.ld(x, 0, tmp);
    a.slt(p, x, eps);
    let branch_pc = a.here();
    a.beqz(p, "skip");
    a.add(r(9), r(9), x);
    a.addi(r(10), r(10), 1);
    a.xor(r(11), r(11), r(9));
    a.add(r(12), r(12), r(11));
    a.sub(r(13), r(12), r(9));
    a.add(r(13), r(13), 3i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "scan");
    a.halt();
    let program = a.finish().expect("assembles");

    let mut mem = MemImage::new();
    let mut s = 0x1234_5678_9abc_def0u64;
    for k in 0..count as u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(0x10000 + 8 * k, s % 100);
    }

    // 1. Classify: the paper's §II taxonomy, computed statically.
    println!("=== classification ===");
    for rep in classify_program(&program, None, ClassifyConfig::default()) {
        println!(
            "pc {:3}  {:24}  CD region {:2} instrs, slice {:2}, overlap {}",
            rep.pc,
            rep.class.to_string(),
            rep.cd_region_instrs,
            rep.slice_instrs,
            rep.overlap_instrs
        );
    }

    // 2. Transform: the gcc-pass analog, with BQ-sized strip mining.
    let t = apply_cfd(&program, branch_pc, 128, &[r(20), r(21), r(22), r(23)]).expect("totally separable");
    println!("\n=== decoupled program ({} -> {} static instrs) ===", t.static_instrs.0, t.static_instrs.1);
    println!("{}", t.program.disassemble());

    // 3. Measure.
    let base = Core::new(CoreConfig::default(), program, mem.clone()).unwrap().run(200_000_000).expect("base");
    let cfd = Core::new(CoreConfig::default(), t.program, mem).unwrap().run(200_000_000).expect("cfd");
    println!(
        "base: {} cycles, {} mispredicts | cfd: {} cycles, {} mispredicts | speedup {:.2}x",
        base.stats.cycles,
        base.stats.mispredictions,
        cfd.stats.cycles,
        cfd.stats.mispredictions,
        cfd.speedup_over(&base)
    );
}
