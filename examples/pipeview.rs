//! Pipeline diagrams of the same loop, before and after CFD.
//!
//! Renders classic pipeview traces: in the base run the hard branch issues
//! (`I`), executes (`e`) and frequently drags a squash tail behind it; in
//! the CFD run `Branch_on_BQ` completes at dispatch because the fetch unit
//! already resolved it from the BQ.
//!
//! Run with: `cargo run --release --example pipeview`

use cfd::core::{Core, CoreConfig};
use cfd::workloads::{by_name, Scale, Variant};

fn main() {
    let entry = by_name("gromacs_like").expect("kernel in catalog");
    let scale = Scale { n: 400, seed: 0x71ace };

    for variant in [Variant::Base, Variant::Cfd] {
        let w = entry.build(variant, scale);
        let rep = Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone())
            .unwrap()
            .with_pipe_trace(4000)
            .run(50_000_000)
            .expect("run completes");
        let trace = rep.pipe_trace.as_ref().expect("trace enabled");
        // Show a steady-state window (skip warmup).
        let window: Vec<_> = trace.events().iter().skip(600).take(24).cloned().collect();
        let mut sub = cfd::core::PipeTrace::new(window.len());
        for e in window {
            sub.record(e);
        }
        println!("================ {} [{variant}] ================", w.name);
        println!("{}", sub.render());
    }
    println!("legend: F fetch, d front pipe, D dispatch, w IQ wait, I issue, e execute, C complete, . ROB wait, R retire, x squashed");
}
