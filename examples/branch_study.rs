//! The paper's §II control-flow study, end to end: profile every catalog
//! kernel under ISL-TAGE-lite, join with the static classifier, and print
//! the MPKI class breakdown (Fig. 6) plus each kernel's hardest branch.
//!
//! Run with: `cargo run --release --example branch_study`

use cfd::profile::{classified_mpki, profile};
use cfd::workloads::{catalog, Scale, Variant};
use std::collections::BTreeMap;

fn main() {
    let scale = Scale { n: 4_000, seed: 0x57d7 };
    let mut per_class: BTreeMap<String, f64> = BTreeMap::new();

    println!("{:<18} {:>7} {:>10}  hardest branch", "kernel", "MPKI", "miss rate");
    println!("{}", "-".repeat(78));
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        let rep = profile(&w, "isl-tage", 200_000_000).expect("profile");
        let hardest = rep
            .top_branches(1)
            .first()
            .map(|(pc, b)| {
                let label = w.program.annotation(*pc).unwrap_or("(unannotated)");
                format!("pc {pc}: {label} ({:.1}% wrong)", 100.0 * b.miss_rate())
            })
            .unwrap_or_else(|| "none".to_string());
        println!("{:<18} {:>7.2} {:>10.3}  {hardest}", entry.name, rep.mpki(), rep.miss_rate());
        for (class, mpki) in classified_mpki(&w, &rep) {
            *per_class.entry(class.to_string()).or_insert(0.0) += mpki;
        }
    }

    let total: f64 = per_class.values().sum();
    println!("\nFig. 6c analog — targeted MPKI by class (paper: separable 41.4%, hammock 26.5%):");
    for (class, mpki) in &per_class {
        println!("  {:<24} {:>5.1}%", class, 100.0 * mpki / total);
    }
}
