//! Kernels from plain text: parse assembler source, auto-decouple the hard
//! branch, and race the two versions on the timing core.
//!
//! Run with: `cargo run --release --example from_text`

use cfd::analysis::{apply_cfd, classify_program, BranchClass, ClassifyConfig};
use cfd::core::{Core, CoreConfig};
use cfd::isa::{parse_program, MemImage, Reg};

const SOURCE: &str = "
; price scan: act on every cheap element (hard, data-dependent branch)
      li   r2, 6000          ; n
      li   r3, 65536         ; &prices
scan:
      sll  r8, r1, 3
      add  r8, r8, r3
      l8   r6, 0(r8)         ; x = prices[i]
      slt  r7, r6, 40        ; p = x < 40
      beq  r7, r0, next      ; the separable branch
      add  r9, r9, r6        ; control-dependent region
      add  r10, r10, 1
      xor  r11, r11, r9
      add  r12, r12, r11
      sub  r13, r12, r9
      add  r13, r13, 7
next:
      add  r1, r1, 1
      blt  r1, r2, scan
      halt
";

fn main() {
    let program = parse_program(SOURCE).expect("source parses");
    println!("parsed {} instructions; labels: {:?}\n", program.len(), program.labels().collect::<Vec<_>>());

    // Find the separable branch with the classifier (no annotations needed).
    let branch_pc = classify_program(&program, None, ClassifyConfig::default())
        .into_iter()
        .find(|rep| rep.class == BranchClass::SeparableTotal)
        .map(|rep| rep.pc)
        .expect("a totally separable branch");
    println!("classifier found a totally separable branch at pc {branch_pc}");

    let r = Reg::new;
    let t = apply_cfd(&program, branch_pc, 128, &[r(20), r(21), r(22), r(23)]).expect("transforms");

    let mut mem = MemImage::new();
    let mut s = 0xfeedu64;
    for k in 0..6000u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(65536 + 8 * k, s % 100);
    }

    let base = Core::new(CoreConfig::default(), program, mem.clone()).unwrap().run(200_000_000).expect("base");
    let cfd = Core::new(CoreConfig::default(), t.program, mem).unwrap().run(200_000_000).expect("cfd");
    println!(
        "base: {} cycles / {} mispredicts   cfd: {} cycles / {} mispredicts   speedup {:.2}x",
        base.stats.cycles,
        base.stats.mispredictions,
        cfd.stats.cycles,
        cfd.stats.mispredictions,
        cfd.speedup_over(&base)
    );
}
