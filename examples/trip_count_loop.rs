//! Separable loop-branches and the Trip-count Queue (paper §IV-C).
//!
//! Runs the astar-like nested-loop kernel in all four forms — base,
//! CFD(TQ), CFD(BQ), CFD(BQ+TQ) — and shows the super-additive combination
//! of Fig. 28.
//!
//! Run with: `cargo run --release --example trip_count_loop`

use cfd::core::{Core, CoreConfig};
use cfd::workloads::{by_name, Scale, Variant};

fn main() {
    let entry = by_name("astar_tq_like").expect("kernel in catalog");
    let scale = Scale { n: 8_000, seed: 0xbeef };

    let base_w = entry.build(Variant::Base, scale);
    let base = Core::new(CoreConfig::default(), base_w.program.clone(), base_w.mem.clone())
        .unwrap()
        .run(200_000_000)
        .expect("base run");
    println!(
        "base:        {:>9} cycles  {:>6} mispredicts  (inner loop-branch defies the predictor)",
        base.stats.cycles, base.stats.mispredictions
    );

    let mut gains = Vec::new();
    for v in [Variant::CfdTq, Variant::CfdBq, Variant::CfdBqTq] {
        let w = entry.build(v, scale);
        assert_eq!(w.observe().unwrap(), base_w.observe().unwrap(), "variants agree");
        let rep = Core::new(CoreConfig::default(), w.program.clone(), w.mem.clone())
            .unwrap()
            .run(200_000_000)
            .expect("variant run");
        let s = rep.speedup_over(&base);
        gains.push((v, s));
        println!(
            "{:<12} {:>9} cycles  {:>6} mispredicts  speedup {:.2}x  (TQ pops: {}, BQ pops: {})",
            v.to_string() + ":",
            rep.stats.cycles,
            rep.stats.mispredictions,
            s,
            rep.stats.tq_hits,
            rep.stats.bq_hits,
        );
    }
    let sum: f64 = gains[..2].iter().map(|(_, s)| s - 1.0).sum();
    let both = gains[2].1 - 1.0;
    println!(
        "\ncombined gain {both:.3} vs sum of individual gains {sum:.3} — {}",
        if both > sum { "super-additive, as the paper reports (Fig. 28)" } else { "additive" }
    );
}
