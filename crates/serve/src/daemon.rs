//! The campaign daemon: a Unix-domain-socket server multiplexing any
//! number of clients onto one `cfd-exec` engine over one artifact store.
//!
//! Architecture (one process, three thread roles):
//!
//! * the **accept loop** (caller's thread) owns a nonblocking
//!   `UnixListener`, spawning one handler thread per connection and
//!   polling a shutdown flag between accepts;
//! * **connection handlers** speak the frame protocol ([`crate::proto`]),
//!   translating requests into operations on the shared sweep table —
//!   they never execute jobs, so a slow sweep cannot stall `status`
//!   polls or store queries from other clients;
//! * the **executor thread** drains the sweep queue serially on a single
//!   engine configured with `resume: true` and the store root as its
//!   cache directory. Serial execution is what keeps every sweep's
//!   report byte-identical to a standalone serial run — the engine's
//!   determinism contract is per-batch.
//!
//! Crash safety is inherited rather than reinvented: every batch runs
//! journaled (`<store>/journal/<campaign>.wal`) with results made
//! durable in the store *inside the workers*, so a SIGKILL'd daemon
//! loses at most in-flight simulations. Restarting it on the same store
//! and resubmitting the same sweep replays finished jobs from the store
//! byte-identically — the resumed sweep reports `executed=0` when
//! everything had completed.
//!
//! Observability: all daemon stderr goes through one
//! [`EventLog`] (`--log FILE` adds a JSONL sink,
//! `--quiet` means exactly log-level `error`), per-request counters and
//! a sweep-latency histogram accumulate in a daemon-side
//! [`MetricsRegistry`], live sweep progress flows from the engine's
//! [`BatchProgress`] callback into the sweep
//! table where `status` polls read it, and the `metrics`/`health`
//! requests expose all of it over the socket.

use crate::dse::run_sweep;
use crate::proto::{read_frame, write_frame, HealthInfo, Request, Response, SweepCounters, SweepProgress};
use crate::store::{ArtifactStore, STORE_VERSION};
use crate::sweep::SweepConfig;
use cfd_exec::{BatchProgress, Engine, ExecConfig};
use cfd_obs::{EventLog, Level, MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path to listen on (created; a stale file from
    /// a dead daemon is replaced).
    pub socket: PathBuf,
    /// Artifact-store root (created/validated via [`ArtifactStore`]).
    pub store: PathBuf,
    /// Worker threads for the executor's engine.
    pub jobs: usize,
    /// Stderr severity floor (`--quiet` maps to [`Level::Error`]).
    pub log_level: Level,
    /// Optional JSONL event-log file (`--log FILE`).
    pub log_file: Option<PathBuf>,
}

impl DaemonConfig {
    /// A config with the given socket/store/jobs and stderr logging at
    /// `error` only — what tests and embedders that predate the logger
    /// want.
    pub fn quiet(socket: PathBuf, store: PathBuf, jobs: usize) -> DaemonConfig {
        DaemonConfig { socket, store, jobs, log_level: Level::Error, log_file: None }
    }
}

/// A sweep's lifecycle in the daemon.
enum SweepState {
    Queued,
    Running,
    Done { report: String, counters: SweepCounters },
    Failed { error: String },
}

impl SweepState {
    fn word(&self) -> &'static str {
        match self {
            SweepState::Queued => "queued",
            SweepState::Running => "running",
            SweepState::Done { .. } => "done",
            SweepState::Failed { .. } => "failed",
        }
    }
}

struct SweepEntry {
    config: SweepConfig,
    points: u64,
    state: SweepState,
    /// Live progress cell, written by the engine's progress callback
    /// from worker threads and read by `status` handlers. A separate
    /// `Arc` (not the sweep table itself) so the callback holds no lock
    /// the handlers contend on.
    progress: Arc<Mutex<BatchProgress>>,
}

/// State shared between the accept loop, handlers, and the executor.
struct Shared {
    sweeps: Mutex<BTreeMap<String, SweepEntry>>,
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    shutdown: AtomicBool,
    store: ArtifactStore,
    engine: Engine,
    log: Arc<EventLog>,
    metrics: Mutex<MetricsRegistry>,
    executor_alive: AtomicBool,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the executor so it can observe the flag.
        let _q = self.queue.lock().expect("queue lock poisoned");
        self.wake.notify_all();
    }

    fn count(&self, name: &'static str) {
        self.metrics.lock().expect("metrics lock poisoned").counter_add(name, 1);
    }
}

/// Runs the daemon until a client sends `shutdown`. Returns after the
/// executor drained its current sweep, all handler threads exited, and
/// the socket file was removed.
pub fn serve(cfg: DaemonConfig) -> Result<(), String> {
    let store = ArtifactStore::open(&cfg.store)?;
    let mut log = EventLog::new(cfg.log_level).with_stderr();
    if let Some(path) = &cfg.log_file {
        log = log.with_file(path)?;
    }
    let exec_cfg = ExecConfig {
        jobs: cfg.jobs.max(1),
        use_cache: true,
        cache_dir: cfg.store.clone(),
        resume: true,
        journal: true,
        ..ExecConfig::default()
    };
    let log = Arc::new(log);
    let engine = Engine::new(exec_cfg);
    // The engine shares the daemon's log, so batch lifecycle events
    // (`batch_start`/`retry_wave`/`batch_done`) land in the same JSONL
    // stream as the daemon's own sweep events.
    engine.set_log(Some(Arc::clone(&log)));
    let shared = Arc::new(Shared {
        sweeps: Mutex::new(BTreeMap::new()),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        store,
        engine,
        log,
        metrics: Mutex::new(MetricsRegistry::enabled()),
        executor_alive: AtomicBool::new(true),
    });

    // A stale socket file (dead daemon, SIGKILL) would make bind fail;
    // connect distinguishes stale from live so two daemons never share.
    if cfg.socket.exists() {
        if UnixStream::connect(&cfg.socket).is_ok() {
            return Err(format!("a daemon is already listening on {}", cfg.socket.display()));
        }
        let _ = std::fs::remove_file(&cfg.socket);
    }
    let listener = UnixListener::bind(&cfg.socket).map_err(|e| format!("cannot bind {}: {e}", cfg.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("cannot set nonblocking: {e}"))?;
    shared.log.info(
        "cfd-serve",
        "listening",
        &[
            ("socket", cfg.socket.display().to_string().into()),
            ("store", cfg.store.display().to_string().into()),
            ("jobs", (cfg.jobs as u64).into()),
        ],
    );

    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            executor_loop(&shared);
            // Runs on clean drain only; a panic leaves the flag true and
            // the join below surfaces it.
            shared.executor_alive.store(false, Ordering::SeqCst);
        })
    };

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                shared.count("daemon.connections");
                handlers.push(std::thread::spawn(move || handle_connection(&shared, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                shared.log.error("cfd-serve", "accept_failed", &[("error", format!("{e}").into())]);
                shared.request_shutdown();
            }
        }
        handlers.retain(|h| !h.is_finished());
    }

    for h in handlers {
        let _ = h.join();
    }
    let executor_ok = executor.join().is_ok();
    if !executor_ok {
        shared.log.error("cfd-serve", "executor_panicked", &[]);
    }
    let _ = std::fs::remove_file(&cfg.socket);
    shared.log.info("cfd-serve", "stopped", &[]);
    Ok(())
}

/// The executor: pops sweep ids and runs them serially on one engine.
fn executor_loop(shared: &Shared) {
    let engine = &shared.engine;
    loop {
        let id = {
            let mut q = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(id) = q.pop_front() {
                    break id;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.wake.wait(q).expect("queue lock poisoned");
            }
        };
        let config = {
            let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            let Some(entry) = sweeps.get_mut(&id) else { continue };
            entry.state = SweepState::Running;
            // Thread this sweep's progress cell into the engine; workers
            // write it as slots finalize, status polls read it live.
            let cell = Arc::clone(&entry.progress);
            engine.set_progress(Some(Arc::new(move |p: BatchProgress| {
                *cell.lock().expect("progress cell poisoned") = p;
            })));
            entry.config.clone()
        };
        shared.log.event(Level::Debug, "cfd-serve", "sweep_start", &[("sweep", id.clone().into())]);
        let before = engine.stats();
        let started = Instant::now();
        let outcome = run_sweep(engine, &config);
        let after = engine.stats();
        engine.set_progress(None);
        {
            let mut m = shared.metrics.lock().expect("metrics lock poisoned");
            m.histogram_record("daemon.sweep_latency_ms", started.elapsed().as_millis() as u64);
        }
        let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
        let Some(entry) = sweeps.get_mut(&id) else { continue };
        entry.state = match outcome {
            Ok(report) => {
                let counters = SweepCounters {
                    points: entry.points,
                    executed: after.executed - before.executed,
                    cache_hits: after.cache_hits - before.cache_hits,
                    failed: after.failed - before.failed,
                };
                shared.log.info(
                    "cfd-serve",
                    "sweep_done",
                    &[
                        ("sweep", id.clone().into()),
                        ("points", counters.points.into()),
                        ("executed", counters.executed.into()),
                        ("cache_hits", counters.cache_hits.into()),
                        ("failed", counters.failed.into()),
                    ],
                );
                SweepState::Done { report, counters }
            }
            Err(error) => {
                shared.log.warn(
                    "cfd-serve",
                    "sweep_failed",
                    &[("sweep", id.clone().into()), ("error", error.clone().into())],
                );
                SweepState::Failed { error }
            }
        };
        drop(sweeps);
        // Keep the advisory index fresh for operators tailing the store.
        let _ = shared.store.write_index();
    }
}

/// One connection: frames in, frames out, until EOF or shutdown.
fn handle_connection(shared: &Shared, stream: UnixStream) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let (response, shutdown) = dispatch(shared, &frame);
        let payload = response.to_json();
        {
            let mut m = shared.metrics.lock().expect("metrics lock poisoned");
            m.counter_add("daemon.frame_bytes_in", frame.len() as u64);
            m.counter_add("daemon.frame_bytes_out", payload.len() as u64);
        }
        if write_frame(&mut writer, &payload).is_err() {
            return;
        }
        if shutdown {
            shared.request_shutdown();
            return;
        }
    }
}

/// The counter name for one request kind (static so the registry can
/// hold it without allocation).
fn request_counter(r: &Request) -> &'static str {
    match r {
        Request::SubmitSweep(_) => "daemon.requests.submit_sweep",
        Request::Status { .. } => "daemon.requests.status",
        Request::Results { .. } => "daemon.requests.results",
        Request::StoreStats => "daemon.requests.store_stats",
        Request::Metrics => "daemon.requests.metrics",
        Request::Health => "daemon.requests.health",
        Request::Gc => "daemon.requests.gc",
        Request::Shutdown => "daemon.requests.shutdown",
    }
}

/// Parses one frame and serves it. Returns the response and whether the
/// daemon should shut down after sending it.
fn dispatch(shared: &Shared, frame: &str) -> (Response, bool) {
    let parsed = match cfd_exec::Json::parse(frame) {
        Ok(v) => v,
        Err(e) => {
            shared.count("daemon.requests.malformed");
            return (Response::Error { error: format!("unparseable frame: {e}") }, false);
        }
    };
    let Some(request) = Request::from_json(&parsed) else {
        shared.count("daemon.requests.malformed");
        return (Response::Error { error: "unknown request".to_string() }, false);
    };
    {
        let mut m = shared.metrics.lock().expect("metrics lock poisoned");
        m.counter_add("daemon.requests", 1);
        m.counter_add(request_counter(&request), 1);
    }
    match request {
        Request::SubmitSweep(config) => (submit(shared, config), false),
        Request::Status { sweep_id } => {
            let sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            match sweeps.get(&sweep_id) {
                Some(e) => {
                    let p = *e.progress.lock().expect("progress cell poisoned");
                    let progress =
                        SweepProgress { done: p.done, executed: p.executed, cache_hits: p.cache_hits, wave: p.wave };
                    (
                        Response::Status { sweep_id, state: e.state.word().to_string(), points: e.points, progress },
                        false,
                    )
                }
                None => (Response::Error { error: format!("unknown sweep {sweep_id}") }, false),
            }
        }
        Request::Results { sweep_id } => {
            let sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            match sweeps.get(&sweep_id) {
                Some(SweepEntry { state: SweepState::Done { report, counters }, .. }) => {
                    (Response::Results { sweep_id, report: report.clone(), counters: *counters }, false)
                }
                Some(SweepEntry { state: SweepState::Failed { error }, .. }) => {
                    (Response::Error { error: error.clone() }, false)
                }
                Some(e) => (Response::Error { error: format!("sweep {sweep_id} is {}", e.state.word()) }, false),
                None => (Response::Error { error: format!("unknown sweep {sweep_id}") }, false),
            }
        }
        Request::StoreStats => (Response::StoreStats { text: shared.store.stats().render() }, false),
        Request::Metrics => {
            // Daemon counters first, then the engine registry, then store
            // usage: one text answer with everything an operator scrapes.
            let mut text = shared.metrics.lock().expect("metrics lock poisoned").render();
            text.push_str(&shared.engine.metrics());
            text.push_str(&shared.store.stats().render());
            (Response::Metrics { text }, false)
        }
        Request::Health => (Response::Health(health(shared)), false),
        Request::Gc => {
            let (removed, freed) = shared.store.gc_quarantine();
            (Response::Gc { removed, freed }, false)
        }
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// Assembles the health summary from live daemon state.
fn health(shared: &Shared) -> HealthInfo {
    let (sweeps_done, sweeps_failed, running) = {
        let sweeps = shared.sweeps.lock().expect("sweep table poisoned");
        let mut done = 0u64;
        let mut failed = 0u64;
        let mut running = String::new();
        for (id, e) in sweeps.iter() {
            match e.state {
                SweepState::Done { .. } => done += 1,
                SweepState::Failed { .. } => failed += 1,
                SweepState::Running => running = id.clone(),
                SweepState::Queued => {}
            }
        }
        (done, failed, running)
    };
    let queued = shared.queue.lock().expect("queue lock poisoned").len() as u64;
    let journals = std::fs::read_dir(shared.store.root().join("journal"))
        .map(|dir| dir.filter_map(Result::ok).filter(|e| e.path().extension().is_some_and(|x| x == "wal")).count())
        .unwrap_or(0) as u64;
    HealthInfo {
        requests: shared.metrics.lock().expect("metrics lock poisoned").counter("daemon.requests"),
        sweeps_done,
        sweeps_failed,
        queued,
        running,
        store_version: STORE_VERSION,
        journals,
        executor_alive: shared.executor_alive.load(Ordering::SeqCst),
    }
}

/// Validates, identifies, and queues a sweep. Submissions are
/// idempotent: the sweep id is the campaign fingerprint of the expanded
/// job list, so two clients submitting the same grid share one entry
/// (and one execution).
fn submit(shared: &Shared, config: SweepConfig) -> Response {
    let points = match config.expand() {
        Ok(points) => points,
        Err(e) => return Response::Error { error: e },
    };
    let fps: Vec<_> = points.iter().map(|p| cfd_exec::CampaignJob::fingerprint(&p.job)).collect();
    let sweep_id = cfd_exec::campaign_fingerprint(&fps).hex();
    let n = points.len() as u64;
    let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
    if !sweeps.contains_key(&sweep_id) {
        sweeps.insert(
            sweep_id.clone(),
            SweepEntry {
                config,
                points: n,
                state: SweepState::Queued,
                progress: Arc::new(Mutex::new(BatchProgress { total: n, ..BatchProgress::default() })),
            },
        );
        let mut q = shared.queue.lock().expect("queue lock poisoned");
        q.push_back(sweep_id.clone());
        shared.wake.notify_all();
    }
    Response::Submitted { sweep_id, points: n }
}
