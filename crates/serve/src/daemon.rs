//! The campaign daemon: a Unix-domain-socket server multiplexing any
//! number of clients onto one `cfd-exec` engine over one artifact store.
//!
//! Architecture (one process, three thread roles):
//!
//! * the **accept loop** (caller's thread) owns a nonblocking
//!   `UnixListener`, spawning one handler thread per connection and
//!   polling a shutdown flag between accepts;
//! * **connection handlers** speak the frame protocol ([`crate::proto`]),
//!   translating requests into operations on the shared sweep table —
//!   they never execute jobs, so a slow sweep cannot stall `status`
//!   polls or store queries from other clients;
//! * the **executor thread** drains the sweep queue serially on a single
//!   engine configured with `resume: true` and the store root as its
//!   cache directory. Serial execution is what keeps every sweep's
//!   report byte-identical to a standalone serial run — the engine's
//!   determinism contract is per-batch.
//!
//! Crash safety is inherited rather than reinvented: every batch runs
//! journaled (`<store>/journal/<campaign>.wal`) with results made
//! durable in the store *inside the workers*, so a SIGKILL'd daemon
//! loses at most in-flight simulations. Restarting it on the same store
//! and resubmitting the same sweep replays finished jobs from the store
//! byte-identically — the resumed sweep reports `executed=0` when
//! everything had completed.

use crate::dse::run_sweep;
use crate::proto::{read_frame, write_frame, Request, Response, SweepCounters};
use crate::store::ArtifactStore;
use crate::sweep::SweepConfig;
use cfd_exec::{Engine, ExecConfig};
use std::collections::{BTreeMap, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path to listen on (created; a stale file from
    /// a dead daemon is replaced).
    pub socket: PathBuf,
    /// Artifact-store root (created/validated via [`ArtifactStore`]).
    pub store: PathBuf,
    /// Worker threads for the executor's engine.
    pub jobs: usize,
    /// Suppress the per-sweep stderr stats lines.
    pub quiet: bool,
}

/// A sweep's lifecycle in the daemon.
enum SweepState {
    Queued,
    Running,
    Done { report: String, counters: SweepCounters },
    Failed { error: String },
}

impl SweepState {
    fn word(&self) -> &'static str {
        match self {
            SweepState::Queued => "queued",
            SweepState::Running => "running",
            SweepState::Done { .. } => "done",
            SweepState::Failed { .. } => "failed",
        }
    }
}

struct SweepEntry {
    config: SweepConfig,
    points: u64,
    state: SweepState,
}

/// State shared between the accept loop, handlers, and the executor.
struct Shared {
    sweeps: Mutex<BTreeMap<String, SweepEntry>>,
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    shutdown: AtomicBool,
    store: ArtifactStore,
    quiet: bool,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the executor so it can observe the flag.
        let _q = self.queue.lock().expect("queue lock poisoned");
        self.wake.notify_all();
    }
}

/// Runs the daemon until a client sends `shutdown`. Returns after the
/// executor drained its current sweep, all handler threads exited, and
/// the socket file was removed.
pub fn serve(cfg: DaemonConfig) -> Result<(), String> {
    let store = ArtifactStore::open(&cfg.store)?;
    let shared = Arc::new(Shared {
        sweeps: Mutex::new(BTreeMap::new()),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        store,
        quiet: cfg.quiet,
    });

    // A stale socket file (dead daemon, SIGKILL) would make bind fail;
    // connect distinguishes stale from live so two daemons never share.
    if cfg.socket.exists() {
        if UnixStream::connect(&cfg.socket).is_ok() {
            return Err(format!("a daemon is already listening on {}", cfg.socket.display()));
        }
        let _ = std::fs::remove_file(&cfg.socket);
    }
    let listener = UnixListener::bind(&cfg.socket).map_err(|e| format!("cannot bind {}: {e}", cfg.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("cannot set nonblocking: {e}"))?;
    if !cfg.quiet {
        eprintln!("[cfd-serve] listening on {} store={} jobs={}", cfg.socket.display(), cfg.store.display(), cfg.jobs);
    }

    let executor = {
        let shared = Arc::clone(&shared);
        let exec_cfg = ExecConfig {
            jobs: cfg.jobs.max(1),
            use_cache: true,
            cache_dir: cfg.store.clone(),
            resume: true,
            journal: true,
            ..ExecConfig::default()
        };
        std::thread::spawn(move || executor_loop(&shared, &Engine::new(exec_cfg)))
    };

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || handle_connection(&shared, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                shared.request_shutdown();
                let _ = e;
            }
        }
        handlers.retain(|h| !h.is_finished());
    }

    for h in handlers {
        let _ = h.join();
    }
    let _ = executor.join();
    let _ = std::fs::remove_file(&cfg.socket);
    Ok(())
}

/// The executor: pops sweep ids and runs them serially on one engine.
fn executor_loop(shared: &Shared, engine: &Engine) {
    loop {
        let id = {
            let mut q = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(id) = q.pop_front() {
                    break id;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.wake.wait(q).expect("queue lock poisoned");
            }
        };
        let config = {
            let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            let Some(entry) = sweeps.get_mut(&id) else { continue };
            entry.state = SweepState::Running;
            entry.config.clone()
        };
        let before = engine.stats();
        let outcome = run_sweep(engine, &config);
        let after = engine.stats();
        let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
        let Some(entry) = sweeps.get_mut(&id) else { continue };
        entry.state = match outcome {
            Ok(report) => {
                let counters = SweepCounters {
                    points: entry.points,
                    executed: after.executed - before.executed,
                    cache_hits: after.cache_hits - before.cache_hits,
                    failed: after.failed - before.failed,
                };
                if !shared.quiet {
                    eprintln!(
                        "[cfd-serve] sweep={id} state=done points={} executed={} cache_hits={} failed={}",
                        counters.points, counters.executed, counters.cache_hits, counters.failed
                    );
                    eprintln!("{}", engine.stats_line());
                }
                SweepState::Done { report, counters }
            }
            Err(error) => {
                if !shared.quiet {
                    eprintln!("[cfd-serve] sweep={id} state=failed error={error}");
                }
                SweepState::Failed { error }
            }
        };
        drop(sweeps);
        // Keep the advisory index fresh for operators tailing the store.
        let _ = shared.store.write_index();
    }
}

/// One connection: frames in, frames out, until EOF or shutdown.
fn handle_connection(shared: &Shared, stream: UnixStream) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let (response, shutdown) = dispatch(shared, &frame);
        if write_frame(&mut writer, &response.to_json()).is_err() {
            return;
        }
        if shutdown {
            shared.request_shutdown();
            return;
        }
    }
}

/// Parses one frame and serves it. Returns the response and whether the
/// daemon should shut down after sending it.
fn dispatch(shared: &Shared, frame: &str) -> (Response, bool) {
    let parsed = match cfd_exec::Json::parse(frame) {
        Ok(v) => v,
        Err(e) => return (Response::Error { error: format!("unparseable frame: {e}") }, false),
    };
    let Some(request) = Request::from_json(&parsed) else {
        return (Response::Error { error: "unknown request".to_string() }, false);
    };
    match request {
        Request::SubmitSweep(config) => (submit(shared, config), false),
        Request::Status { sweep_id } => {
            let sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            match sweeps.get(&sweep_id) {
                Some(e) => (Response::Status { sweep_id, state: e.state.word().to_string(), points: e.points }, false),
                None => (Response::Error { error: format!("unknown sweep {sweep_id}") }, false),
            }
        }
        Request::Results { sweep_id } => {
            let sweeps = shared.sweeps.lock().expect("sweep table poisoned");
            match sweeps.get(&sweep_id) {
                Some(SweepEntry { state: SweepState::Done { report, counters }, .. }) => {
                    (Response::Results { sweep_id, report: report.clone(), counters: *counters }, false)
                }
                Some(SweepEntry { state: SweepState::Failed { error }, .. }) => {
                    (Response::Error { error: error.clone() }, false)
                }
                Some(e) => (Response::Error { error: format!("sweep {sweep_id} is {}", e.state.word()) }, false),
                None => (Response::Error { error: format!("unknown sweep {sweep_id}") }, false),
            }
        }
        Request::StoreStats => (Response::StoreStats { text: shared.store.stats().render() }, false),
        Request::Gc => {
            let (removed, freed) = shared.store.gc_quarantine();
            (Response::Gc { removed, freed }, false)
        }
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// Validates, identifies, and queues a sweep. Submissions are
/// idempotent: the sweep id is the campaign fingerprint of the expanded
/// job list, so two clients submitting the same grid share one entry
/// (and one execution).
fn submit(shared: &Shared, config: SweepConfig) -> Response {
    let points = match config.expand() {
        Ok(points) => points,
        Err(e) => return Response::Error { error: e },
    };
    let fps: Vec<_> = points.iter().map(|p| cfd_exec::CampaignJob::fingerprint(&p.job)).collect();
    let sweep_id = cfd_exec::campaign_fingerprint(&fps).hex();
    let n = points.len() as u64;
    let mut sweeps = shared.sweeps.lock().expect("sweep table poisoned");
    if !sweeps.contains_key(&sweep_id) {
        sweeps.insert(sweep_id.clone(), SweepEntry { config, points: n, state: SweepState::Queued });
        let mut q = shared.queue.lock().expect("queue lock poisoned");
        q.push_back(sweep_id.clone());
        shared.wake.notify_all();
    }
    Response::Submitted { sweep_id, points: n }
}
