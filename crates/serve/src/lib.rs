//! # cfd-serve — the campaign daemon and DSE sweep service
//!
//! `cfd-exec` (PR 3/6) made individual campaigns parallel, cached, and
//! crash-safe — but every campaign still lived and died with one CLI
//! process. This crate turns that engine into a long-running service in
//! the direction ROADMAP item 3 points: design-space exploration served
//! from one warm, persistent store.
//!
//! Four layers, composable and individually testable:
//!
//! * [`store`] — the **artifact store**: the content-addressed result
//!   cache promoted to a versioned shared root (`store.json` stamp,
//!   `index.json` summary, quarantine GC) that any number of daemons,
//!   CLI runs, and tests share safely;
//! * [`sweep`] — **declarative sweeps**: a config grid (predictor ×
//!   BQ/VQ/TQ × widths × L1) expanded deterministically into
//!   fingerprinted `SimJob`s, identified by the campaign fingerprint of
//!   its job list;
//! * [`pareto`] + [`dse`] — **evaluation**: per-point IPC/MPKI/EDP and
//!   a non-dominated frontier decided at table precision, rendered
//!   byte-stably;
//! * [`proto`] + [`daemon`] + [`client`] — the **service**: a Unix-socket
//!   server speaking length-prefixed JSON, multiplexing concurrent
//!   clients onto one engine with WAL-backed crash-safe resume.
//!
//! Everything is dependency-free `std`, like the rest of the repo.

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;
pub mod dse;
pub mod logcheck;
pub mod pareto;
pub mod proto;
pub mod store;
pub mod sweep;

#[cfg(unix)]
pub use client::{outcome_line, submit_and_wait, SweepOutcome};
#[cfg(unix)]
pub use daemon::{serve, DaemonConfig};
pub use dse::run_sweep;
pub use logcheck::check_log;
pub use pareto::{frontier, render_report, DseRow};
pub use proto::{HealthInfo, Request, Response, SweepCounters, SweepProgress};
pub use store::{ArtifactStore, StoreStats, STORE_VERSION};
pub use sweep::{DsePoint, SweepConfig, DSE_CYCLE_LIMIT};
