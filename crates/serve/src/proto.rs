//! The daemon wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame — a little-endian `u32` byte length
//! followed by that many bytes of UTF-8 JSON (the minimal `cfd-exec`
//! dialect: integers, strings, arrays, objects). Requests carry a
//! `"req"` tag, responses an `"ok"` flag plus a `"resp"` tag; an
//! `{"ok":false,"error":...}` frame answers anything malformed or
//! unserviceable. One connection may carry any number of
//! request/response pairs; the daemon answers in order.

use crate::sweep::SweepConfig;
use cfd_exec::json::write_str;
use cfd_exec::Json;
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Upper bound on a frame body, to fail fast on a garbage length prefix
/// (a misdialed client, a cat to the socket) instead of allocating it.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("frame length {len} exceeds {MAX_FRAME}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Ok(Some(text))
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Queue (or re-identify) a sweep.
    SubmitSweep(SweepConfig),
    /// Poll a sweep's state.
    Status {
        /// The sweep to poll.
        sweep_id: String,
    },
    /// Fetch a finished sweep's report.
    Results {
        /// The sweep to fetch.
        sweep_id: String,
    },
    /// Scan the artifact store and return its usage summary.
    StoreStats,
    /// Fetch the daemon's metrics: its own request/connection/frame
    /// counters plus the engine registry and store usage.
    Metrics,
    /// Fetch a liveness/health summary.
    Health,
    /// Delete quarantined store entries.
    Gc,
    /// Stop the daemon after draining queued sweeps' current job batch.
    Shutdown,
}

impl Request {
    /// Serializes as one JSON document.
    pub fn to_json(&self) -> String {
        match self {
            Request::SubmitSweep(cfg) => {
                format!("{{\"req\":\"submit_sweep\",\"sweep\":{}}}", cfg.to_json())
            }
            Request::Status { sweep_id } => tagged_id("status", sweep_id),
            Request::Results { sweep_id } => tagged_id("results", sweep_id),
            Request::StoreStats => "{\"req\":\"store_stats\"}".to_string(),
            Request::Metrics => "{\"req\":\"metrics\"}".to_string(),
            Request::Health => "{\"req\":\"health\"}".to_string(),
            Request::Gc => "{\"req\":\"gc\"}".to_string(),
            Request::Shutdown => "{\"req\":\"shutdown\"}".to_string(),
        }
    }

    /// Rebuilds a request from a parsed frame.
    pub fn from_json(v: &Json) -> Option<Request> {
        let id = |v: &Json| v.get("sweep_id").and_then(Json::as_str).map(str::to_string);
        Some(match v.get("req")?.as_str()? {
            "submit_sweep" => Request::SubmitSweep(SweepConfig::from_json(v.get("sweep")?)?),
            "status" => Request::Status { sweep_id: id(v)? },
            "results" => Request::Results { sweep_id: id(v)? },
            "store_stats" => Request::StoreStats,
            "metrics" => Request::Metrics,
            "health" => Request::Health,
            "gc" => Request::Gc,
            "shutdown" => Request::Shutdown,
            _ => return None,
        })
    }
}

fn tagged_id(req: &str, sweep_id: &str) -> String {
    let mut s = format!("{{\"req\":\"{req}\",\"sweep_id\":");
    write_str(&mut s, sweep_id);
    s.push('}');
    s
}

/// Per-sweep execution counters, the engine-stats delta attributed to
/// one sweep's batch. A warm resubmission reports `executed=0`: every
/// point came back from the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounters {
    /// Grid points in the sweep.
    pub points: u64,
    /// Points simulated this run.
    pub executed: u64,
    /// Points served from the artifact store.
    pub cache_hits: u64,
    /// Points that failed.
    pub failed: u64,
}

/// Live execution progress for one sweep, fed by the engine's
/// [`BatchProgress`](cfd_exec::BatchProgress) callback into the
/// daemon's sweep table. Observed through `status` polls, `done` is
/// monotonically non-decreasing within a sweep, and the final snapshot
/// (state `done`) agrees with the [`SweepCounters`] that `results`
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepProgress {
    /// Points whose result is final.
    pub done: u64,
    /// Points simulated so far.
    pub executed: u64,
    /// Points served from the store.
    pub cache_hits: u64,
    /// Current retry wave (0 = first attempts).
    pub wave: u64,
}

/// The daemon's health summary: liveness facts a monitoring probe needs,
/// all cheap to compute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// Uptime measured in requests served (including this one).
    pub requests: u64,
    /// Sweeps finished successfully since start.
    pub sweeps_done: u64,
    /// Sweeps that failed since start.
    pub sweeps_failed: u64,
    /// Sweeps waiting in the queue.
    pub queued: u64,
    /// The sweep id currently executing (empty when idle).
    pub running: String,
    /// The store's layout version stamp.
    pub store_version: u64,
    /// Write-ahead journal files present under the store.
    pub journals: u64,
    /// Whether the executor thread is alive (false after a panic or
    /// shutdown drain).
    pub executor_alive: bool,
}

impl HealthInfo {
    /// Deterministic one-line-per-fact rendering for the CLI.
    pub fn render(&self) -> String {
        format!(
            "[health] executor={} requests={} sweeps_done={} sweeps_failed={} queued={} running={} \
             store_version={} journals={}\n",
            if self.executor_alive { "alive" } else { "stopped" },
            self.requests,
            self.sweeps_done,
            self.sweeps_failed,
            self.queued,
            if self.running.is_empty() { "-" } else { &self.running },
            self.store_version,
            self.journals
        )
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request could not be served.
    Error {
        /// What went wrong.
        error: String,
    },
    /// A sweep was queued (or was already known under this id).
    Submitted {
        /// The sweep's identity (campaign fingerprint hex).
        sweep_id: String,
        /// Expanded grid points.
        points: u64,
    },
    /// A sweep's current state: `"queued"`, `"running"`, `"done"`, or
    /// `"failed"`.
    Status {
        /// The polled sweep.
        sweep_id: String,
        /// State word.
        state: String,
        /// Expanded grid points.
        points: u64,
        /// Live progress (zeroed while queued; final when done).
        progress: SweepProgress,
    },
    /// A finished sweep's rendered report plus its execution counters.
    Results {
        /// The fetched sweep.
        sweep_id: String,
        /// The full rendered DSE report.
        report: String,
        /// Execution counters for this sweep's batch.
        counters: SweepCounters,
    },
    /// Store usage summary (rendered [`StoreStats`](crate::StoreStats)).
    StoreStats {
        /// The rendered stats text.
        text: String,
    },
    /// Metrics dump: daemon registry render, engine registry render,
    /// store usage — deterministic modulo wall-clock-derived values
    /// (the sweep-latency histogram).
    Metrics {
        /// The rendered metrics text.
        text: String,
    },
    /// Health summary.
    Health(HealthInfo),
    /// Quarantine GC outcome.
    Gc {
        /// Files removed.
        removed: u64,
        /// Bytes freed.
        freed: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShuttingDown,
}

impl Response {
    /// Serializes as one JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        match self {
            Response::Error { error } => {
                s.push_str("{\"ok\":false,\"error\":");
                write_str(&mut s, error);
                s.push('}');
            }
            Response::Submitted { sweep_id, points } => {
                s.push_str("{\"ok\":true,\"resp\":\"submitted\",\"sweep_id\":");
                write_str(&mut s, sweep_id);
                let _ = write!(s, ",\"points\":{points}}}");
            }
            Response::Status { sweep_id, state, points, progress } => {
                s.push_str("{\"ok\":true,\"resp\":\"status\",\"sweep_id\":");
                write_str(&mut s, sweep_id);
                s.push_str(",\"state\":");
                write_str(&mut s, state);
                let _ = write!(
                    s,
                    ",\"points\":{points},\"done\":{},\"executed\":{},\"cache_hits\":{},\"wave\":{}}}",
                    progress.done, progress.executed, progress.cache_hits, progress.wave
                );
            }
            Response::Results { sweep_id, report, counters } => {
                s.push_str("{\"ok\":true,\"resp\":\"results\",\"sweep_id\":");
                write_str(&mut s, sweep_id);
                let _ = write!(
                    s,
                    ",\"points\":{},\"executed\":{},\"cache_hits\":{},\"failed\":{},\"report\":",
                    counters.points, counters.executed, counters.cache_hits, counters.failed
                );
                write_str(&mut s, report);
                s.push('}');
            }
            Response::StoreStats { text } => {
                s.push_str("{\"ok\":true,\"resp\":\"store_stats\",\"text\":");
                write_str(&mut s, text);
                s.push('}');
            }
            Response::Metrics { text } => {
                s.push_str("{\"ok\":true,\"resp\":\"metrics\",\"text\":");
                write_str(&mut s, text);
                s.push('}');
            }
            Response::Health(h) => {
                s.push_str("{\"ok\":true,\"resp\":\"health\",\"running\":");
                write_str(&mut s, &h.running);
                let _ = write!(
                    s,
                    ",\"requests\":{},\"sweeps_done\":{},\"sweeps_failed\":{},\"queued\":{},\"store_version\":{},\
                     \"journals\":{},\"executor_alive\":{}}}",
                    h.requests, h.sweeps_done, h.sweeps_failed, h.queued, h.store_version, h.journals, h.executor_alive
                );
            }
            Response::Gc { removed, freed } => {
                let _ = write!(s, "{{\"ok\":true,\"resp\":\"gc\",\"removed\":{removed},\"freed\":{freed}}}");
            }
            Response::ShuttingDown => s.push_str("{\"ok\":true,\"resp\":\"shutting_down\"}"),
        }
        s
    }

    /// Rebuilds a response from a parsed frame.
    pub fn from_json(v: &Json) -> Option<Response> {
        if v.get("ok")?.as_bool()? {
            let id = |v: &Json| v.get("sweep_id").and_then(Json::as_str).map(str::to_string);
            Some(match v.get("resp")?.as_str()? {
                "submitted" => Response::Submitted { sweep_id: id(v)?, points: v.get("points")?.as_u64()? },
                "status" => Response::Status {
                    sweep_id: id(v)?,
                    state: v.get("state")?.as_str()?.to_string(),
                    points: v.get("points")?.as_u64()?,
                    progress: SweepProgress {
                        done: v.get("done")?.as_u64()?,
                        executed: v.get("executed")?.as_u64()?,
                        cache_hits: v.get("cache_hits")?.as_u64()?,
                        wave: v.get("wave")?.as_u64()?,
                    },
                },
                "results" => Response::Results {
                    sweep_id: id(v)?,
                    report: v.get("report")?.as_str()?.to_string(),
                    counters: SweepCounters {
                        points: v.get("points")?.as_u64()?,
                        executed: v.get("executed")?.as_u64()?,
                        cache_hits: v.get("cache_hits")?.as_u64()?,
                        failed: v.get("failed")?.as_u64()?,
                    },
                },
                "store_stats" => Response::StoreStats { text: v.get("text")?.as_str()?.to_string() },
                "metrics" => Response::Metrics { text: v.get("text")?.as_str()?.to_string() },
                "health" => Response::Health(HealthInfo {
                    requests: v.get("requests")?.as_u64()?,
                    sweeps_done: v.get("sweeps_done")?.as_u64()?,
                    sweeps_failed: v.get("sweeps_failed")?.as_u64()?,
                    queued: v.get("queued")?.as_u64()?,
                    running: v.get("running")?.as_str()?.to_string(),
                    store_version: v.get("store_version")?.as_u64()?,
                    journals: v.get("journals")?.as_u64()?,
                    executor_alive: v.get("executor_alive")?.as_bool()?,
                }),
                "gc" => Response::Gc { removed: v.get("removed")?.as_u64()?, freed: v.get("freed")?.as_u64()? },
                "shutting_down" => Response::ShuttingDown,
                _ => return None,
            })
        } else {
            Some(Response::Error { error: v.get("error")?.as_str()?.to_string() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let json = r.to_json();
        assert_eq!(Request::from_json(&Json::parse(&json).unwrap()), Some(r));
    }

    fn roundtrip_resp(r: Response) {
        let json = r.to_json();
        assert_eq!(Response::from_json(&Json::parse(&json).unwrap()), Some(r));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::SubmitSweep(SweepConfig::preset_tiny()));
        roundtrip_req(Request::Status { sweep_id: "abc123".to_string() });
        roundtrip_req(Request::Results { sweep_id: "abc123".to_string() });
        roundtrip_req(Request::StoreStats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Health);
        roundtrip_req(Request::Gc);
        roundtrip_req(Request::Shutdown);
        assert_eq!(Request::from_json(&Json::parse("{\"req\":\"nope\"}").unwrap()), None);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Error { error: "bad \"frame\"\n".to_string() });
        roundtrip_resp(Response::Submitted { sweep_id: "id".to_string(), points: 216 });
        roundtrip_resp(Response::Status {
            sweep_id: "id".to_string(),
            state: "running".to_string(),
            points: 8,
            progress: SweepProgress { done: 3, executed: 2, cache_hits: 1, wave: 0 },
        });
        roundtrip_resp(Response::Results {
            sweep_id: "id".to_string(),
            report: "line one\nline two\n".to_string(),
            counters: SweepCounters { points: 8, executed: 8, cache_hits: 0, failed: 0 },
        });
        roundtrip_resp(Response::StoreStats { text: "[store] entries=3\n".to_string() });
        roundtrip_resp(Response::Metrics { text: "counter   daemon.connections 2\n".to_string() });
        roundtrip_resp(Response::Health(HealthInfo {
            requests: 17,
            sweeps_done: 2,
            sweeps_failed: 1,
            queued: 0,
            running: "abc123".to_string(),
            store_version: 1,
            journals: 3,
            executor_alive: true,
        }));
        roundtrip_resp(Response::Gc { removed: 2, freed: 512 });
        roundtrip_resp(Response::ShuttingDown);
    }

    #[test]
    fn health_render_is_one_line_per_probe() {
        let idle = HealthInfo { executor_alive: true, store_version: 1, ..HealthInfo::default() };
        let line = idle.render();
        assert!(line.starts_with("[health] executor=alive"), "{line}");
        assert!(line.contains("running=-"), "idle daemon shows a dash: {line}");
        let busy = HealthInfo { running: "abc".to_string(), ..idle };
        assert!(busy.render().contains("running=abc"));
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"req\":\"gc\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"req\":\"gc\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"x");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"req\":\"gc\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }
}
