//! Deterministic Pareto aggregation over (IPC, MPKI, EDP).
//!
//! Dominance is decided on the *rendered* metrics, not the raw `f64`s:
//! each metric is passed through the fixed-precision funnel in
//! `cfd-energy` ([`fixed_scaled`]) at the same precision the table
//! prints, so the frontier can never disagree with the numbers the
//! reader sees, and the whole report is byte-stable across hosts. A
//! point is dominated when another point is at least as good on every
//! objective (IPC maximized; MPKI and EDP minimized) and strictly better
//! on at least one; rendering-identical points do not dominate each
//! other, so ties survive together. Frontier order is input (grid
//! expansion) order.

use cfd_energy::{fixed, fixed_scaled};

/// Decimals printed (and compared) per metric.
const IPC_DECIMALS: usize = 3;
const MPKI_DECIMALS: usize = 2;
const EDP_DECIMALS: usize = 3;

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DseRow {
    /// Grid-point label (`pred=... bq=... ...`).
    pub label: String,
    /// Retired instructions per cycle (maximize).
    pub ipc: f64,
    /// Mispredictions per kilo-instruction (minimize).
    pub mpki: f64,
    /// Energy-delay product in µJ·cycles (minimize).
    pub edp: f64,
}

/// The three objectives as scaled integers at table precision.
/// Non-finite metrics (a zero-cycle run) are treated as worst-possible.
fn key(r: &DseRow) -> (i128, i128, i128) {
    (
        fixed_scaled(r.ipc, IPC_DECIMALS).unwrap_or(i128::MIN),
        fixed_scaled(r.mpki, MPKI_DECIMALS).unwrap_or(i128::MAX),
        fixed_scaled(r.edp, EDP_DECIMALS).unwrap_or(i128::MAX),
    )
}

/// Whether `a` dominates `b` at table precision.
fn dominates(a: (i128, i128, i128), b: (i128, i128, i128)) -> bool {
    a.0 >= b.0 && a.1 <= b.1 && a.2 <= b.2 && a != b
}

/// Indices of the non-dominated rows, in input order.
pub fn frontier(rows: &[DseRow]) -> Vec<usize> {
    let keys: Vec<_> = rows.iter().map(key).collect();
    (0..rows.len()).filter(|&i| !keys.iter().any(|&k| dominates(k, keys[i]))).collect()
}

/// Renders the full DSE report: every grid point, then the frontier.
///
/// Contains no timing, host, or cache-state information — the bytes are
/// a pure function of the evaluated rows, which is what lets a daemon
/// client `cmp` its copy against a serial in-process run.
pub fn render_report(title: &str, rows: &[DseRow]) -> String {
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max("point".len());
    let front = frontier(rows);
    let mut out = String::with_capacity(rows.len() * 96 + 256);
    out.push_str(&format!("# DSE sweep: {title}, {} points\n", rows.len()));
    let header = format!("{:<label_w$} {:>7} {:>8} {:>12}\n", "point", "ipc", "mpki", "edp");
    out.push_str(&header);
    for r in rows {
        out.push_str(&format!(
            "{:<label_w$} {:>7} {:>8} {:>12}\n",
            r.label,
            fixed(r.ipc, IPC_DECIMALS),
            fixed(r.mpki, MPKI_DECIMALS),
            fixed(r.edp, EDP_DECIMALS)
        ));
    }
    out.push_str(&format!("# Pareto frontier (maximize IPC, minimize MPKI, minimize EDP): {} points\n", front.len()));
    out.push_str(&header);
    for &i in &front {
        let r = &rows[i];
        out.push_str(&format!(
            "{:<label_w$} {:>7} {:>8} {:>12}\n",
            r.label,
            fixed(r.ipc, IPC_DECIMALS),
            fixed(r.mpki, MPKI_DECIMALS),
            fixed(r.edp, EDP_DECIMALS)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, ipc: f64, mpki: f64, edp: f64) -> DseRow {
        DseRow { label: label.to_string(), ipc, mpki, edp }
    }

    /// O(n²) reference: a row survives iff no other row beats it.
    fn brute_force(rows: &[DseRow]) -> Vec<usize> {
        (0..rows.len())
            .filter(|&i| !(0..rows.len()).any(|j| j != i && dominates(key(&rows[j]), key(&rows[i]))))
            .collect()
    }

    #[test]
    fn dominated_points_are_excluded() {
        let rows =
            [row("good", 2.0, 1.0, 10.0), row("worse-everywhere", 1.5, 2.0, 20.0), row("tradeoff", 2.5, 3.0, 8.0)];
        assert_eq!(frontier(&rows), vec![0, 2]);
    }

    #[test]
    fn ties_at_table_precision_both_survive() {
        // Differ only below the rendered precision: neither dominates.
        let rows = [row("a", 2.0001, 1.0, 10.0), row("b", 2.0004, 1.0, 10.0)];
        assert_eq!(frontier(&rows), vec![0, 1]);
        // A visible difference in one objective does dominate.
        let rows = [row("a", 2.0, 1.0, 10.0), row("b", 2.01, 1.0, 10.0)];
        assert_eq!(frontier(&rows), vec![1]);
    }

    #[test]
    fn frontier_matches_brute_force_on_a_grid() {
        // A deterministic pseudo-grid with plenty of dominance structure.
        let mut rows = Vec::new();
        let mut x: u64 = 0x5eed;
        for i in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (x >> 33) % 300;
            let b = (x >> 13) % 300;
            rows.push(row(&format!("p{i}"), a as f64 / 100.0, b as f64 / 10.0, (a + b) as f64 / 3.0));
        }
        let got = frontier(&rows);
        assert_eq!(got, brute_force(&rows));
        assert!(!got.is_empty(), "a finite set always has a non-dominated point");
    }

    #[test]
    fn report_lists_every_point_and_a_nonempty_frontier() {
        let rows = [row("a", 2.0, 1.0, 10.0), row("b", 1.0, 2.0, 20.0)];
        let text = render_report("demo", &rows);
        assert!(text.starts_with("# DSE sweep: demo, 2 points\n"));
        assert!(text.contains("# Pareto frontier (maximize IPC, minimize MPKI, minimize EDP): 1 points\n"));
        assert_eq!(text.matches("\na ").count(), 2, "frontier row repeats the point row");
        assert_eq!(text.matches("2.000").count(), 2);
        assert!(text.contains("1.00"));
        // Deterministic: same input, same bytes.
        assert_eq!(render_report("demo", &rows), text);
    }
}
