//! Declarative DSE sweep configs and their expansion into fingerprinted
//! simulation jobs.
//!
//! A [`SweepConfig`] names one workload/variant/scale and a value list
//! per design axis (predictor, BQ/VQ/TQ depths, fetch/issue widths, L1
//! capacity). [`SweepConfig::expand`] takes the cross product in a fixed
//! axis order, builds one [`SimJob`] per grid point, and drops exact
//! duplicates (repeated axis values), so expansion is deterministic and
//! duplicate-free — the property the Pareto fixtures and the daemon's
//! idempotent sweep identity both rest on. The sweep's identity *is* its
//! job list: [`SweepConfig::sweep_id`] folds the job fingerprints with
//! the same [`campaign_fingerprint`] the engine uses to name its
//! write-ahead journal, so a re-submitted sweep maps onto the journal of
//! its first submission.

use cfd_core::CoreConfig;
use cfd_exec::json::write_str;
use cfd_exec::{campaign_fingerprint, CampaignJob, Json, SimJob};
use cfd_workloads::{by_name, Scale, Variant, Workload};
use std::fmt::Write as _;

/// Cycle budget per DSE point. Grid points run small problem sizes
/// (thousands to tens of thousands of cycles); the budget only bounds a
/// runaway configuration. Part of every job fingerprint.
pub const DSE_CYCLE_LIMIT: u64 = 50_000_000;

/// A declarative design-space sweep: one workload, a value list per axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Catalog kernel name (e.g. `"soplex_ref_like"`).
    pub workload: String,
    /// Variant label (e.g. `"cfd"`; see [`Variant::label`]).
    pub variant: String,
    /// Outer trip count of the kernel ([`Scale::n`]; the seed is the
    /// catalog default).
    pub scale_n: usize,
    /// Direction-predictor names.
    pub predictors: Vec<String>,
    /// Branch Queue depths.
    pub bq: Vec<usize>,
    /// Value Queue depths.
    pub vq: Vec<usize>,
    /// Trip-count Queue depths.
    pub tq: Vec<usize>,
    /// `(fetch/retire width, issue width)` pairs.
    pub widths: Vec<(usize, usize)>,
    /// L1D capacities in KB.
    pub l1_kb: Vec<usize>,
}

/// One expanded grid point: the rendering label and the job to run.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Stable human-readable point label (one table cell).
    pub label: String,
    /// The simulation job for this point.
    pub job: SimJob,
}

/// The variants a sweep config may name, with their report labels.
const VARIANTS: [Variant; 9] = [
    Variant::Base,
    Variant::Cfd,
    Variant::CfdPlus,
    Variant::Dfd,
    Variant::CfdDfd,
    Variant::CfdTq,
    Variant::CfdBq,
    Variant::CfdBqTq,
    Variant::IfConv,
];

fn variant_by_label(label: &str) -> Option<Variant> {
    VARIANTS.into_iter().find(|v| v.label() == label)
}

impl SweepConfig {
    /// The flagship grid: 216 points over the paper's sensitivity axes
    /// (predictor × BQ × VQ × TQ × width × L1) on the `soplex_ref_like`
    /// CFD+ kernel. This is what `experiments dse` renders into the
    /// checked-in Pareto fixture.
    ///
    /// Queue depths start at the kernel's software chunk size (128):
    /// chunked CFD pushes a whole chunk of predicates/values before the
    /// consumer loop drains, so a BQ or VQ shallower than the chunk is
    /// not a runnable software configuration (the push loop wedges) —
    /// the same reason the paper's queue-sensitivity figures saturate at
    /// the chunk size.
    pub fn preset_default() -> SweepConfig {
        SweepConfig {
            workload: "soplex_ref_like".to_string(),
            variant: "cfd+".to_string(),
            scale_n: 400,
            predictors: vec![
                "isl-tage".to_string(),
                "gshare".to_string(),
                "perceptron".to_string(),
                "bimodal".to_string(),
            ],
            bq: vec![128, 192, 256],
            vq: vec![128, 256],
            tq: vec![256],
            widths: vec![(2, 4), (4, 6), (8, 8)],
            l1_kb: vec![4, 8, 32],
        }
    }

    /// A small 8-point grid for tests and the CI daemon gate.
    pub fn preset_tiny() -> SweepConfig {
        SweepConfig {
            workload: "soplex_ref_like".to_string(),
            variant: "cfd".to_string(),
            scale_n: 120,
            predictors: vec!["gshare".to_string(), "bimodal".to_string()],
            bq: vec![128, 256],
            vq: vec![128],
            tq: vec![256],
            widths: vec![(2, 4), (4, 6)],
            l1_kb: vec![32],
        }
    }

    /// Looks up a preset by name (`"default"` or `"tiny"`).
    pub fn preset(name: &str) -> Option<SweepConfig> {
        match name {
            "default" => Some(SweepConfig::preset_default()),
            "tiny" => Some(SweepConfig::preset_tiny()),
            _ => None,
        }
    }

    /// A one-line description for status output.
    pub fn describe(&self) -> String {
        format!("{} [{}] n={}", self.workload, self.variant, self.scale_n)
    }

    /// Expands the grid into fingerprinted jobs.
    ///
    /// The cross product is taken in a fixed axis order (predictor, BQ,
    /// VQ, TQ, widths, L1), so two expansions of the same config produce
    /// the same points in the same order. Exact duplicates (repeated
    /// values within an axis) collapse onto their first occurrence by job
    /// fingerprint. Unknown workload/variant/predictor names fail here —
    /// expansion is the validation point — so the daemon can reject a bad
    /// sweep before queueing it.
    pub fn expand(&self) -> Result<Vec<DsePoint>, String> {
        let entry = by_name(&self.workload).ok_or_else(|| format!("unknown workload {:?}", self.workload))?;
        let variant = variant_by_label(&self.variant).ok_or_else(|| format!("unknown variant {:?}", self.variant))?;
        if !entry.variants.contains(&variant) {
            return Err(format!("{} does not support variant {:?}", self.workload, self.variant));
        }
        for p in &self.predictors {
            if cfd_predictor::predictor_by_name(p).is_none() {
                return Err(format!("unknown predictor {p:?}"));
            }
        }
        for (axis, vals) in [
            ("predictors", self.predictors.len()),
            ("bq", self.bq.len()),
            ("vq", self.vq.len()),
            ("tq", self.tq.len()),
            ("widths", self.widths.len()),
            ("l1_kb", self.l1_kb.len()),
        ] {
            if vals == 0 {
                return Err(format!("empty axis {axis:?}"));
            }
        }
        let scale = Scale { n: self.scale_n.max(1), ..Scale::default() };
        let workload: Workload = entry.build(variant, scale);

        let mut points = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for pred in &self.predictors {
            for &bq in &self.bq {
                for &vq in &self.vq {
                    for &tq in &self.tq {
                        for &(width, issue) in &self.widths {
                            for &l1 in &self.l1_kb {
                                let cfg = CoreConfig::default()
                                    .with_predictor(pred)
                                    .with_queue_depths(bq, vq, tq)
                                    .with_widths(width, issue)
                                    .with_l1_kb(l1);
                                let label = format!("pred={pred} bq={bq} vq={vq} tq={tq} w={width}/{issue} l1={l1}K");
                                let job = SimJob { workload: workload.clone(), cfg, cycle_limit: DSE_CYCLE_LIMIT };
                                if seen.insert(job.fingerprint()) {
                                    points.push(DsePoint { label, job });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(points)
    }

    /// The sweep's identity: the campaign fingerprint over its expanded
    /// job list (the same fold the engine journal uses). Two configs that
    /// expand to the same jobs — e.g. differing only in duplicated axis
    /// values — share an id, so daemon submissions are idempotent.
    pub fn sweep_id(&self) -> Result<String, String> {
        let fps: Vec<_> = self.expand()?.iter().map(|p| p.job.fingerprint()).collect();
        Ok(campaign_fingerprint(&fps).hex())
    }

    /// Serializes the config as a JSON object (the `submit_sweep` wire
    /// payload).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"workload\":");
        write_str(&mut s, &self.workload);
        s.push_str(",\"variant\":");
        write_str(&mut s, &self.variant);
        let _ = write!(s, ",\"scale_n\":{}", self.scale_n);
        s.push_str(",\"predictors\":[");
        for (i, p) in self.predictors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_str(&mut s, p);
        }
        s.push(']');
        for (name, vals) in [("bq", &self.bq), ("vq", &self.vq), ("tq", &self.tq), ("l1_kb", &self.l1_kb)] {
            let _ = write!(s, ",\"{name}\":[");
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push(']');
        }
        s.push_str(",\"widths\":[");
        for (i, (w, iw)) in self.widths.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{w},{iw}]");
        }
        s.push_str("]}");
        s
    }

    /// Rebuilds a config from a parsed [`SweepConfig::to_json`] object.
    pub fn from_json(v: &Json) -> Option<SweepConfig> {
        let usize_list = |key: &str| -> Option<Vec<usize>> {
            v.get(key)?.as_arr()?.iter().map(|x| x.as_u64().and_then(|n| usize::try_from(n).ok())).collect()
        };
        Some(SweepConfig {
            workload: v.get("workload")?.as_str()?.to_string(),
            variant: v.get("variant")?.as_str()?.to_string(),
            scale_n: usize::try_from(v.get("scale_n")?.as_u64()?).ok()?,
            predictors: v
                .get("predictors")?
                .as_arr()?
                .iter()
                .map(|p| p.as_str().map(str::to_string))
                .collect::<Option<_>>()?,
            bq: usize_list("bq")?,
            vq: usize_list("vq")?,
            tq: usize_list("tq")?,
            widths: v
                .get("widths")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let [w, iw] = pair.as_arr()? else { return None };
                    Some((usize::try_from(w.as_u64()?).ok()?, usize::try_from(iw.as_u64()?).ok()?))
                })
                .collect::<Option<_>>()?,
            l1_kb: usize_list("l1_kb")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_has_at_least_200_points() {
        let points = SweepConfig::preset_default().expand().unwrap();
        assert!(points.len() >= 200, "got {}", points.len());
        assert_eq!(points.len(), 216);
    }

    #[test]
    fn tiny_preset_is_small_and_valid() {
        let points = SweepConfig::preset_tiny().expand().unwrap();
        assert_eq!(points.len(), 8);
        assert!(SweepConfig::preset("tiny").is_some());
        assert!(SweepConfig::preset("nope").is_none());
    }

    #[test]
    fn expansion_is_deterministic() {
        let cfg = SweepConfig::preset_tiny();
        let a: Vec<String> = cfg.expand().unwrap().iter().map(|p| p.label.clone()).collect();
        let b: Vec<String> = cfg.expand().unwrap().iter().map(|p| p.label.clone()).collect();
        assert_eq!(a, b);
        assert_eq!(cfg.sweep_id().unwrap(), cfg.sweep_id().unwrap());
    }

    #[test]
    fn duplicate_axis_values_collapse_and_share_the_sweep_id() {
        let mut dup = SweepConfig::preset_tiny();
        dup.bq = vec![128, 256, 128];
        let base = SweepConfig::preset_tiny();
        assert_eq!(dup.expand().unwrap().len(), base.expand().unwrap().len());
        assert_eq!(dup.sweep_id().unwrap(), base.sweep_id().unwrap());
    }

    #[test]
    fn validation_rejects_unknown_names_and_empty_axes() {
        let mut c = SweepConfig::preset_tiny();
        c.workload = "nope".to_string();
        assert!(c.expand().is_err());
        let mut c = SweepConfig::preset_tiny();
        c.variant = "nope".to_string();
        assert!(c.expand().is_err());
        let mut c = SweepConfig::preset_tiny();
        c.predictors = vec!["nope".to_string()];
        assert!(c.expand().is_err());
        let mut c = SweepConfig::preset_tiny();
        c.l1_kb.clear();
        assert!(c.expand().is_err());
    }

    #[test]
    fn config_json_roundtrips() {
        for cfg in [SweepConfig::preset_default(), SweepConfig::preset_tiny()] {
            let json = cfg.to_json();
            let back = SweepConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, cfg);
            assert_eq!(back.to_json(), json);
        }
    }
}
