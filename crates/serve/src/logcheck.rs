//! Schema validation and canonicalization for JSONL event logs.
//!
//! `cfd-serve logcheck --log FILE` (and the verify.sh gates) run every
//! line of an [`EventLog`](cfd_obs::EventLog) file through
//! [`check_log`]: each line must parse, carry the expected schema
//! version, a valid level, and a dense sequence starting at 0. The
//! returned text is the wall-clock-stripped canonical form, suitable
//! for byte comparison across runs and worker counts.

use cfd_exec::Json;
use cfd_obs::{strip_wall, Level, LOG_SCHEMA_VERSION};

/// Validates a JSONL event log and returns its canonical
/// (wall-clock-stripped) form.
///
/// Checks, per line: parseable JSON, `v` equal to
/// [`LOG_SCHEMA_VERSION`], a parseable `level`, non-empty `target` and
/// `event` strings, and `seq` exactly equal to the line number (the
/// dense-sequence contract — a gap means records were lost).
pub fn check_log(text: &str) -> Result<String, String> {
    for (lineno, line) in text.lines().enumerate() {
        let v = Json::parse(line).map_err(|e| format!("line {}: unparseable record: {e}", lineno + 1))?;
        let version = v.get("v").and_then(Json::as_u64);
        if version != Some(LOG_SCHEMA_VERSION) {
            return Err(format!("line {}: schema version {version:?}, expected {LOG_SCHEMA_VERSION}", lineno + 1));
        }
        let seq = v.get("seq").and_then(Json::as_u64);
        if seq != Some(lineno as u64) {
            return Err(format!("line {}: seq {seq:?} breaks the dense sequence (expected {lineno})", lineno + 1));
        }
        let level =
            v.get("level").and_then(Json::as_str).ok_or_else(|| format!("line {}: missing level", lineno + 1))?;
        Level::parse(level).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        for key in ["target", "event"] {
            match v.get(key).and_then(Json::as_str) {
                Some(s) if !s.is_empty() => {}
                _ => return Err(format!("line {}: missing or empty {key}", lineno + 1)),
            }
        }
        if v.get("fields").is_none() {
            return Err(format!("line {}: missing fields object", lineno + 1));
        }
    }
    Ok(strip_wall(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_obs::EventLog;

    #[test]
    fn real_log_output_passes_and_canonicalizes() {
        let log = EventLog::memory(Level::Debug);
        log.info("cfd-serve", "listening", &[("jobs", 2u64.into())]);
        log.debug("cfd-serve", "sweep_start", &[("sweep", "abc".into())]);
        let canonical = check_log(&log.contents()).unwrap();
        assert!(!canonical.contains("wall_us"), "{canonical}");
        assert!(canonical.contains("\"seq\":0"));
        assert!(canonical.contains("\"seq\":1"));
    }

    #[test]
    fn bad_version_gap_and_garbage_are_rejected() {
        assert!(check_log("not json\n").unwrap_err().contains("unparseable"));
        let wrong_v = "{\"v\":999,\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"e\",\"fields\":{}}\n";
        assert!(check_log(wrong_v).unwrap_err().contains("schema version"));
        let gap = concat!(
            "{\"v\":1,\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"e\",\"fields\":{}}\n",
            "{\"v\":1,\"seq\":2,\"level\":\"info\",\"target\":\"t\",\"event\":\"e\",\"fields\":{}}\n",
        );
        assert!(check_log(gap).unwrap_err().contains("dense sequence"));
        let bad_level = "{\"v\":1,\"seq\":0,\"level\":\"loud\",\"target\":\"t\",\"event\":\"e\",\"fields\":{}}\n";
        assert!(check_log(bad_level).unwrap_err().contains("unknown log level"));
    }

    #[test]
    fn empty_log_is_valid() {
        assert_eq!(check_log("").unwrap(), "");
    }
}
