//! Running a sweep end to end: expand, execute on a `cfd-exec` engine,
//! evaluate IPC/MPKI/EDP per point, render the Pareto report.
//!
//! This is the one code path behind both `experiments dse` (in-process)
//! and the daemon's executor thread, which is what makes a daemon
//! client's report byte-identical to a serial local run of the same
//! sweep.

use crate::pareto::{render_report, DseRow};
use crate::sweep::SweepConfig;
use cfd_energy::{edp_uj_cycles, EnergyModel};
use cfd_exec::Engine;

/// Expands and runs `cfg` on `engine`, returning the rendered report.
///
/// Any failed point (panic, timeout, quarantine) fails the sweep: DSE
/// grids run healthy configurations, so a failure is a bug to surface,
/// not a row to skip silently.
pub fn run_sweep(engine: &Engine, cfg: &SweepConfig) -> Result<String, String> {
    let points = cfg.expand()?;
    let jobs: Vec<_> = points.iter().map(|p| p.job.clone()).collect();
    let model = EnergyModel::default();
    let mut rows = Vec::with_capacity(points.len());
    for (point, result) in points.iter().zip(engine.run_all(&jobs)) {
        let report = result.map_err(|e| format!("{}: {e}", point.label))?;
        rows.push(DseRow {
            label: point.label.clone(),
            ipc: report.stats.ipc(),
            mpki: report.stats.mpki(),
            edp: edp_uj_cycles(model.total_pj(&report.events), report.stats.cycles),
        });
    }
    Ok(render_report(&cfg.describe(), &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_exec::ExecConfig;

    fn cacheless(jobs: usize) -> Engine {
        Engine::new(ExecConfig { jobs, use_cache: false, journal: false, ..ExecConfig::default() })
    }

    #[test]
    fn tiny_sweep_event_log_is_byte_identical_across_worker_counts() {
        use cfd_obs::{strip_wall, EventLog, Level};
        use std::sync::Arc;
        let run = |jobs: usize| {
            let engine = cacheless(jobs);
            let log = Arc::new(EventLog::memory(Level::Debug));
            engine.set_log(Some(Arc::clone(&log)));
            run_sweep(&engine, &SweepConfig::preset_tiny()).unwrap();
            log.contents()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(strip_wall(&serial), strip_wall(&parallel), "JSONL event stream must not depend on --jobs");
        // And the stream passes the logcheck schema gate.
        let canonical = crate::logcheck::check_log(&serial).unwrap();
        assert!(canonical.contains("\"event\":\"batch_start\""), "{canonical}");
        assert!(canonical.contains("\"event\":\"batch_done\""), "{canonical}");
    }

    #[test]
    fn tiny_sweep_is_deterministic_across_worker_counts() {
        let cfg = SweepConfig::preset_tiny();
        let serial = run_sweep(&cacheless(1), &cfg).unwrap();
        let parallel = run_sweep(&cacheless(4), &cfg).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.contains("# DSE sweep: soplex_ref_like [cfd] n=120, 8 points"));
        assert!(serial.contains("# Pareto frontier"));
        // Every grid point appears as a row.
        for p in cfg.expand().unwrap() {
            assert!(serial.contains(&p.label), "missing row for {}", p.label);
        }
    }
}
