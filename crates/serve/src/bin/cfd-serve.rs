//! `cfd-serve` — campaign daemon CLI.
//!
//! ```text
//! cfd-serve daemon   --socket S --store DIR [--jobs N] [--quiet]
//! cfd-serve submit   --socket S [--preset default|tiny] [--out FILE]
//! cfd-serve status   --socket S --sweep ID
//! cfd-serve stats    --socket S
//! cfd-serve gc       --socket S
//! cfd-serve shutdown --socket S
//! ```
//!
//! `daemon` runs in the foreground until a client sends `shutdown`.
//! `submit` blocks until the sweep finishes, prints the report to stdout
//! (or `--out FILE`), and prints the one-line outcome summary to stderr.

#[cfg(unix)]
fn main() {
    if let Err(e) = unix::run(std::env::args().skip(1).collect()) {
        eprintln!("cfd-serve: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("cfd-serve: the daemon requires Unix-domain sockets and is unavailable on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
mod unix {
    use cfd_serve::{client, DaemonConfig, Request, Response, SweepConfig};
    use std::path::PathBuf;

    const USAGE: &str = "usage: cfd-serve <daemon|submit|status|stats|gc|shutdown> --socket PATH \
                         [--store DIR] [--jobs N] [--preset NAME] [--out FILE] [--sweep ID] [--quiet]";

    struct Args {
        socket: Option<PathBuf>,
        store: Option<PathBuf>,
        jobs: usize,
        preset: String,
        out: Option<PathBuf>,
        sweep: Option<String>,
        quiet: bool,
    }

    fn parse(mut argv: std::vec::IntoIter<String>) -> Result<Args, String> {
        let mut args = Args {
            socket: None,
            store: None,
            jobs: 1,
            preset: "default".to_string(),
            out: None,
            sweep: None,
            quiet: false,
        };
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
                "--store" => args.store = Some(PathBuf::from(value("--store")?)),
                "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|_| "--jobs needs a positive integer")?,
                "--preset" => args.preset = value("--preset")?,
                "--out" => args.out = Some(PathBuf::from(value("--out")?)),
                "--sweep" => args.sweep = Some(value("--sweep")?),
                "--quiet" => args.quiet = true,
                other => return Err(format!("unknown flag {other}\n{USAGE}")),
            }
        }
        Ok(args)
    }

    pub fn run(argv: Vec<String>) -> Result<(), String> {
        let mut argv = argv.into_iter();
        let cmd = argv.next().ok_or(USAGE)?;
        let args = parse(argv)?;
        let socket = || args.socket.clone().ok_or_else(|| format!("{cmd} needs --socket\n{USAGE}"));
        match cmd.as_str() {
            "daemon" => {
                let store = args.store.clone().ok_or_else(|| format!("daemon needs --store\n{USAGE}"))?;
                cfd_serve::serve(DaemonConfig { socket: socket()?, store, jobs: args.jobs, quiet: args.quiet })
            }
            "submit" => {
                let config = SweepConfig::preset(&args.preset)
                    .ok_or_else(|| format!("unknown preset {:?} (have: default, tiny)", args.preset))?;
                let outcome = client::submit_and_wait(&socket()?, &config)?;
                eprintln!("{}", cfd_serve::outcome_line(&outcome));
                match &args.out {
                    Some(path) => std::fs::write(path, &outcome.report)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
                    None => print!("{}", outcome.report),
                }
                Ok(())
            }
            "status" => {
                let sweep_id = args.sweep.clone().ok_or_else(|| format!("status needs --sweep\n{USAGE}"))?;
                match client::request(&socket()?, &Request::Status { sweep_id })? {
                    Response::Status { sweep_id, state, points } => {
                        println!("sweep={sweep_id} state={state} points={points}");
                        Ok(())
                    }
                    Response::Error { error } => Err(error),
                    other => Err(format!("unexpected response: {other:?}")),
                }
            }
            "stats" => match client::request(&socket()?, &Request::StoreStats)? {
                Response::StoreStats { text } => {
                    print!("{text}");
                    Ok(())
                }
                Response::Error { error } => Err(error),
                other => Err(format!("unexpected response: {other:?}")),
            },
            "gc" => match client::request(&socket()?, &Request::Gc)? {
                Response::Gc { removed, freed } => {
                    println!("gc: removed={removed} freed_bytes={freed}");
                    Ok(())
                }
                Response::Error { error } => Err(error),
                other => Err(format!("unexpected response: {other:?}")),
            },
            "shutdown" => client::shutdown(&socket()?),
            other => Err(format!("unknown command {other}\n{USAGE}")),
        }
    }
}
