//! `cfd-serve` — campaign daemon CLI.
//!
//! ```text
//! cfd-serve daemon   --socket S --store DIR [--jobs N] [--log FILE] [--log-level L] [--quiet]
//! cfd-serve submit   --socket S [--preset default|tiny] [--out FILE]
//! cfd-serve status   --socket S --sweep ID
//! cfd-serve stats    --socket S
//! cfd-serve metrics  --socket S
//! cfd-serve health   --socket S
//! cfd-serve gc       --socket S
//! cfd-serve shutdown --socket S
//! cfd-serve logcheck --log FILE
//! ```
//!
//! `daemon` runs in the foreground until a client sends `shutdown`; all
//! its stderr goes through the structured logger (`--quiet` means
//! exactly `--log-level error`; `--log FILE` adds a JSONL sink).
//! `submit` blocks until the sweep finishes, prints the report to stdout
//! (or `--out FILE`), and prints the one-line outcome summary to stderr.
//! `logcheck` validates a JSONL event log (schema version, dense
//! sequence numbers) and prints its wall-clock-stripped canonical form
//! to stdout — the determinism surface verify.sh compares.

#[cfg(unix)]
fn main() {
    if let Err(e) = unix::run(std::env::args().skip(1).collect()) {
        eprintln!("cfd-serve: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("cfd-serve: the daemon requires Unix-domain sockets and is unavailable on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
mod unix {
    use cfd_obs::Level;
    use cfd_serve::{client, DaemonConfig, Request, Response, SweepConfig};
    use std::path::PathBuf;

    const USAGE: &str = "usage: cfd-serve <daemon|submit|status|stats|metrics|health|gc|shutdown|logcheck> \
                         --socket PATH [--store DIR] [--jobs N] [--preset NAME] [--out FILE] [--sweep ID] \
                         [--log FILE] [--log-level error|warn|info|debug|trace] [--quiet]";

    struct Args {
        socket: Option<PathBuf>,
        store: Option<PathBuf>,
        jobs: usize,
        preset: String,
        out: Option<PathBuf>,
        sweep: Option<String>,
        log: Option<PathBuf>,
        log_level: Level,
        quiet: bool,
    }

    fn parse(mut argv: std::vec::IntoIter<String>) -> Result<Args, String> {
        let mut args = Args {
            socket: None,
            store: None,
            jobs: 1,
            preset: "default".to_string(),
            out: None,
            sweep: None,
            log: None,
            log_level: Level::Info,
            quiet: false,
        };
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
                "--store" => args.store = Some(PathBuf::from(value("--store")?)),
                "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|_| "--jobs needs a positive integer")?,
                "--preset" => args.preset = value("--preset")?,
                "--out" => args.out = Some(PathBuf::from(value("--out")?)),
                "--sweep" => args.sweep = Some(value("--sweep")?),
                "--log" => args.log = Some(PathBuf::from(value("--log")?)),
                "--log-level" => args.log_level = Level::parse(&value("--log-level")?)?,
                "--quiet" => args.quiet = true,
                other => return Err(format!("unknown flag {other}\n{USAGE}")),
            }
        }
        Ok(args)
    }

    pub fn run(argv: Vec<String>) -> Result<(), String> {
        let mut argv = argv.into_iter();
        let cmd = argv.next().ok_or(USAGE)?;
        let args = parse(argv)?;
        let socket = || args.socket.clone().ok_or_else(|| format!("{cmd} needs --socket\n{USAGE}"));
        match cmd.as_str() {
            "daemon" => {
                let store = args.store.clone().ok_or_else(|| format!("daemon needs --store\n{USAGE}"))?;
                // --quiet is exactly log-level=error: nothing but errors
                // reaches stderr, including the listening banner.
                let log_level = if args.quiet { Level::Error } else { args.log_level };
                cfd_serve::serve(DaemonConfig {
                    socket: socket()?,
                    store,
                    jobs: args.jobs,
                    log_level,
                    log_file: args.log.clone(),
                })
            }
            "submit" => {
                let config = SweepConfig::preset(&args.preset)
                    .ok_or_else(|| format!("unknown preset {:?} (have: default, tiny)", args.preset))?;
                let outcome = client::submit_and_wait(&socket()?, &config)?;
                eprintln!("{}", cfd_serve::outcome_line(&outcome));
                match &args.out {
                    Some(path) => std::fs::write(path, &outcome.report)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
                    None => print!("{}", outcome.report),
                }
                Ok(())
            }
            "status" => {
                let sweep_id = args.sweep.clone().ok_or_else(|| format!("status needs --sweep\n{USAGE}"))?;
                match client::request(&socket()?, &Request::Status { sweep_id })? {
                    Response::Status { sweep_id, state, points, progress } => {
                        println!(
                            "sweep={sweep_id} state={state} points={points} done={} executed={} cache_hits={} wave={}",
                            progress.done, progress.executed, progress.cache_hits, progress.wave
                        );
                        Ok(())
                    }
                    Response::Error { error } => Err(error),
                    other => Err(format!("unexpected response: {other:?}")),
                }
            }
            "stats" => match client::request(&socket()?, &Request::StoreStats)? {
                Response::StoreStats { text } => {
                    print!("{text}");
                    Ok(())
                }
                Response::Error { error } => Err(error),
                other => Err(format!("unexpected response: {other:?}")),
            },
            "metrics" => {
                print!("{}", client::metrics(&socket()?)?);
                Ok(())
            }
            "health" => {
                print!("{}", client::health(&socket()?)?.render());
                Ok(())
            }
            "gc" => match client::request(&socket()?, &Request::Gc)? {
                Response::Gc { removed, freed } => {
                    println!("gc: removed={removed} freed_bytes={freed}");
                    Ok(())
                }
                Response::Error { error } => Err(error),
                other => Err(format!("unexpected response: {other:?}")),
            },
            "shutdown" => client::shutdown(&socket()?),
            "logcheck" => {
                let path = args.log.clone().ok_or_else(|| format!("logcheck needs --log FILE\n{USAGE}"))?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let canonical = cfd_serve::check_log(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                print!("{canonical}");
                Ok(())
            }
            other => Err(format!("unknown command {other}\n{USAGE}")),
        }
    }
}
