//! Client side of the daemon protocol: connect, frame, parse.
//!
//! Each call opens a fresh connection — requests are cheap, the daemon
//! handles any number of concurrent connections, and stateless calls
//! keep retry semantics trivial (a poll that dies mid-frame is simply
//! reissued).

use crate::proto::{read_frame, write_frame, Request, Response, SweepCounters};
use crate::sweep::SweepConfig;
use cfd_exec::Json;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Poll interval while waiting on a sweep.
const POLL: Duration = Duration::from_millis(15);

/// Sends one request and returns the daemon's response.
pub fn request(socket: &Path, req: &Request) -> Result<Response, String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    write_frame(&mut stream, &req.to_json()).map_err(|e| format!("send failed: {e}"))?;
    let frame = read_frame(&mut stream)
        .map_err(|e| format!("receive failed: {e}"))?
        .ok_or_else(|| "daemon closed the connection without replying".to_string())?;
    let parsed = Json::parse(&frame).map_err(|e| format!("unparseable response: {e}"))?;
    Response::from_json(&parsed).ok_or_else(|| format!("malformed response: {frame}"))
}

/// A completed sweep as seen by a client.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The sweep's identity.
    pub sweep_id: String,
    /// The rendered DSE report.
    pub report: String,
    /// Execution counters for the sweep's batch.
    pub counters: SweepCounters,
}

/// Submits `config` and blocks until the sweep finishes, returning its
/// report. Failure states (daemon-side sweep failure, protocol errors)
/// surface as `Err`.
pub fn submit_and_wait(socket: &Path, config: &SweepConfig) -> Result<SweepOutcome, String> {
    let sweep_id = match request(socket, &Request::SubmitSweep(config.clone()))? {
        Response::Submitted { sweep_id, .. } => sweep_id,
        Response::Error { error } => return Err(error),
        other => return Err(format!("unexpected response to submit: {other:?}")),
    };
    loop {
        match request(socket, &Request::Status { sweep_id: sweep_id.clone() })? {
            Response::Status { state, .. } if state == "queued" || state == "running" => {
                std::thread::sleep(POLL);
            }
            Response::Status { .. } => break,
            Response::Error { error } => return Err(error),
            other => return Err(format!("unexpected response to status: {other:?}")),
        }
    }
    match request(socket, &Request::Results { sweep_id: sweep_id.clone() })? {
        Response::Results { report, counters, .. } => Ok(SweepOutcome { sweep_id, report, counters }),
        Response::Error { error } => Err(error),
        other => Err(format!("unexpected response to results: {other:?}")),
    }
}

/// Asks the daemon to shut down. `Ok` means the daemon acknowledged.
pub fn shutdown(socket: &Path) -> Result<(), String> {
    match request(socket, &Request::Shutdown)? {
        Response::ShuttingDown => Ok(()),
        other => Err(format!("unexpected response to shutdown: {other:?}")),
    }
}

/// Fetches the daemon's rendered metrics text (daemon counters, engine
/// registry, store usage).
pub fn metrics(socket: &Path) -> Result<String, String> {
    match request(socket, &Request::Metrics)? {
        Response::Metrics { text } => Ok(text),
        Response::Error { error } => Err(error),
        other => Err(format!("unexpected response to metrics: {other:?}")),
    }
}

/// Fetches the daemon's health summary.
pub fn health(socket: &Path) -> Result<crate::proto::HealthInfo, String> {
    match request(socket, &Request::Health)? {
        Response::Health(h) => Ok(h),
        Response::Error { error } => Err(error),
        other => Err(format!("unexpected response to health: {other:?}")),
    }
}

/// The one-line summary drivers print after a sweep.
pub fn outcome_line(o: &SweepOutcome) -> String {
    format!(
        "[cfd-serve] sweep={} state=done points={} executed={} cache_hits={} failed={}",
        o.sweep_id, o.counters.points, o.counters.executed, o.counters.cache_hits, o.counters.failed
    )
}
