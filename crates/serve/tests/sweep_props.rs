//! Property tests for the sweep generator, driven by the in-repo seeded
//! harness (`cfd_isa::prop_check`): fingerprints never collide across
//! distinct grid points, and expansion is deterministic and
//! duplicate-free.

use cfd_exec::CampaignJob;
use cfd_isa::prop_check;
use cfd_serve::SweepConfig;
use std::collections::HashSet;

/// A random sweep over valid axis values, with distinct values per axis
/// so the nominal grid size is the axis-length product.
fn random_config(rng: &mut cfd_isa::check::Rng) -> SweepConfig {
    let mut pick_distinct = |pool: &[usize], max: usize| -> Vec<usize> {
        let n = rng.range_usize(1, max.min(pool.len()) + 1);
        let mut vals: Vec<usize> = Vec::new();
        while vals.len() < n {
            let v = pool[rng.range_usize(0, pool.len())];
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        vals
    };
    // Queue depths at or above the kernel chunk (128) — shallower queues
    // are not runnable chunked-CFD software configurations. Expansion
    // itself never simulates, but keeping the generated grids feasible
    // means this generator can also seed end-to-end tests.
    let bq = pick_distinct(&[128, 160, 192, 256], 3);
    let vq = pick_distinct(&[128, 192, 256], 2);
    let tq = pick_distinct(&[256, 384, 512], 2);
    let l1_kb = pick_distinct(&[4, 8, 16, 32, 64], 3);
    let all_preds = ["isl-tage", "gshare", "perceptron", "bimodal", "always-taken"];
    let n_preds = rng.range_usize(1, 4);
    let mut predictors: Vec<String> = Vec::new();
    while predictors.len() < n_preds {
        let p = all_preds[rng.range_usize(0, all_preds.len())].to_string();
        if !predictors.contains(&p) {
            predictors.push(p);
        }
    }
    let all_widths = [(1, 2), (2, 4), (4, 6), (6, 8), (8, 8)];
    let n_widths = rng.range_usize(1, 4);
    let mut widths: Vec<(usize, usize)> = Vec::new();
    while widths.len() < n_widths {
        let w = all_widths[rng.range_usize(0, all_widths.len())];
        if !widths.contains(&w) {
            widths.push(w);
        }
    }
    SweepConfig {
        workload: "soplex_ref_like".to_string(),
        variant: "cfd".to_string(),
        scale_n: rng.range_usize(50, 200),
        predictors,
        bq,
        vq,
        tq,
        widths,
        l1_kb,
    }
}

#[test]
fn distinct_grid_points_never_collide_in_fingerprint() {
    prop_check!(48, |rng| {
        let cfg = random_config(rng);
        let nominal =
            cfg.predictors.len() * cfg.bq.len() * cfg.vq.len() * cfg.tq.len() * cfg.widths.len() * cfg.l1_kb.len();
        let points = cfg.expand().expect("valid config expands");
        // Distinct axis values ⇒ every nominal point is a distinct
        // config ⇒ none may fold together by fingerprint.
        assert_eq!(points.len(), nominal, "a fingerprint collision folded distinct grid points");
        let fps: HashSet<_> = points.iter().map(|p| p.job.fingerprint()).collect();
        assert_eq!(fps.len(), points.len());
        let labels: HashSet<_> = points.iter().map(|p| p.label.clone()).collect();
        assert_eq!(labels.len(), points.len(), "labels are unique per point");
    });
}

#[test]
fn expansion_is_deterministic_and_duplicate_free() {
    prop_check!(24, |rng| {
        let cfg = random_config(rng);
        let a = cfg.expand().expect("valid config expands");
        let b = cfg.expand().expect("valid config expands");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label, "expansion order changed between runs");
            assert_eq!(x.job.fingerprint(), y.job.fingerprint());
        }
        // Repeating axis values must collapse onto the same points and
        // the same sweep identity.
        let mut dup = cfg.clone();
        dup.bq = [dup.bq.clone(), dup.bq.clone()].concat();
        dup.predictors = [dup.predictors.clone(), dup.predictors.clone()].concat();
        let c = dup.expand().expect("valid config expands");
        assert_eq!(c.len(), a.len());
        assert_eq!(dup.sweep_id().unwrap(), cfg.sweep_id().unwrap());
    });
}
