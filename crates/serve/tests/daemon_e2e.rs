//! End-to-end daemon tests: concurrent clients, serial-run byte
//! equality, and warm-store resume after a restart.

#![cfg(unix)]

use cfd_exec::{Engine, ExecConfig};
use cfd_serve::{client, run_sweep, DaemonConfig, Request, Response, SweepConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfd-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a daemon thread and blocks until its socket accepts.
fn start_daemon(socket: PathBuf, store: PathBuf, jobs: usize) -> std::thread::JoinHandle<Result<(), String>> {
    let handle = {
        let socket = socket.clone();
        std::thread::spawn(move || cfd_serve::serve(DaemonConfig::quiet(socket, store, jobs)))
    };
    for _ in 0..500 {
        if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
            return handle;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", socket.display());
}

#[test]
fn concurrent_clients_match_serial_run_and_restart_resumes_warm() {
    let dir = temp_dir("roundtrip");
    let socket = dir.join("serve.sock");
    let store = dir.join("store");
    let cfg = SweepConfig::preset_tiny();

    // Reference: the same sweep run serially in-process, cache-less.
    let serial_engine = Engine::new(ExecConfig { jobs: 1, use_cache: false, journal: false, ..ExecConfig::default() });
    let serial_report = run_sweep(&serial_engine, &cfg).unwrap();

    let daemon = start_daemon(socket.clone(), store.clone(), 2);

    // Two clients submit the same sweep concurrently; idempotent
    // submission must give them one sweep id and identical reports.
    let outcomes: Vec<_> = {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let socket = socket.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || client::submit_and_wait(&socket, &cfg).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };
    assert_eq!(outcomes[0].sweep_id, outcomes[1].sweep_id, "same grid, same sweep identity");
    assert_eq!(outcomes[0].report, outcomes[1].report);
    assert_eq!(outcomes[0].report, serial_report, "daemon report must be byte-identical to the serial run");
    // Idempotent submission folds both clients onto one sweep entry, so
    // they see the same counters: 8 executions total, not 8 each.
    assert_eq!(outcomes[0].counters, outcomes[1].counters);
    assert_eq!(outcomes[0].counters.points, 8);
    assert_eq!(outcomes[0].counters.executed, 8, "one execution per grid point, shared by both clients");

    // Store queries work alongside sweeps.
    match client::request(&socket, &Request::StoreStats).unwrap() {
        Response::StoreStats { text } => assert!(text.contains("kind=sim entries=8"), "stats: {text}"),
        other => panic!("unexpected response: {other:?}"),
    }

    client::shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket file removed on clean shutdown");

    // "Restart" on the same store (the SIGKILL variant — no clean
    // handover, just the durable store — is exercised by verify.sh with
    // a real process kill): the resubmitted sweep must replay entirely
    // from the store, byte-identically, with zero re-executed jobs.
    let daemon = start_daemon(socket.clone(), store.clone(), 2);
    let warm = client::submit_and_wait(&socket, &cfg).unwrap();
    assert_eq!(warm.report, serial_report);
    assert_eq!(warm.counters.executed, 0, "warm resume must not re-execute");
    assert_eq!(warm.counters.cache_hits, 8);
    client::shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_progress_is_monotonic_and_final_matches_results() {
    let dir = temp_dir("progress");
    let socket = dir.join("serve.sock");
    let daemon = start_daemon(socket.clone(), dir.join("store"), 2);
    let cfg = SweepConfig::preset_tiny();

    let sweep_id = match client::request(&socket, &Request::SubmitSweep(cfg)).unwrap() {
        Response::Submitted { sweep_id, .. } => sweep_id,
        other => panic!("unexpected response: {other:?}"),
    };

    // Poll status until the sweep settles, collecting progress snapshots.
    let mut snapshots = Vec::new();
    let (final_state, final_progress) = loop {
        match client::request(&socket, &Request::Status { sweep_id: sweep_id.clone() }).unwrap() {
            Response::Status { state, points, progress, .. } => {
                assert_eq!(points, 8);
                assert!(progress.done <= points, "done must never exceed total: {progress:?}");
                snapshots.push(progress);
                if state != "queued" && state != "running" {
                    break (state, progress);
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(final_state, "done");
    for w in snapshots.windows(2) {
        assert!(w[1].done >= w[0].done, "done regressed across polls: {:?} -> {:?}", w[0], w[1]);
        assert!(w[1].executed >= w[0].executed, "executed regressed across polls");
    }

    // The final status snapshot must agree with the results counters.
    match client::request(&socket, &Request::Results { sweep_id: sweep_id.clone() }).unwrap() {
        Response::Results { counters, .. } => {
            assert_eq!(final_progress.done, counters.points);
            assert_eq!(final_progress.executed, counters.executed);
            assert_eq!(final_progress.cache_hits, counters.cache_hits);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Metrics and health answer over the same socket.
    let metrics = client::metrics(&socket).unwrap();
    for needle in
        ["daemon.connections", "daemon.requests", "daemon.frame_bytes_in", "exec.submitted", "[store] version=1"]
    {
        assert!(metrics.contains(needle), "metrics missing {needle}:\n{metrics}");
    }
    let health = client::health(&socket).unwrap();
    assert!(health.executor_alive, "executor should be draining: {health:?}");
    assert!(health.requests > 0);
    assert_eq!(health.sweeps_done, 1);
    assert_eq!(health.sweeps_failed, 0);
    assert_eq!(health.store_version, 1);
    assert!(health.running.is_empty(), "sweep finished: {health:?}");

    client::shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_errors_not_hangs() {
    let dir = temp_dir("errors");
    let socket = dir.join("serve.sock");
    let daemon = start_daemon(socket.clone(), dir.join("store"), 1);

    match client::request(&socket, &Request::Status { sweep_id: "no-such-sweep".to_string() }).unwrap() {
        Response::Error { error } => assert!(error.contains("unknown sweep")),
        other => panic!("unexpected response: {other:?}"),
    }
    let mut bad = SweepConfig::preset_tiny();
    bad.workload = "no-such-kernel".to_string();
    match client::request(&socket, &Request::SubmitSweep(bad)).unwrap() {
        Response::Error { error } => assert!(error.contains("unknown workload")),
        other => panic!("unexpected response: {other:?}"),
    }
    // A second daemon on the same (live) socket must refuse, not steal.
    let err = cfd_serve::serve(DaemonConfig::quiet(socket.clone(), dir.join("store2"), 1)).unwrap_err();
    assert!(err.contains("already listening"), "unexpected error: {err}");

    client::shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
