//! Built-in campaign jobs: timing simulation, functional execution, and
//! branch profiling — with exact JSON codecs for the result cache.
//!
//! Every cached quantity is an unsigned integer counter (`RunReport`,
//! `ProfileReport` and friends hold no floats; rates like IPC are
//! computed at format time), so serializing and re-reading a result
//! reproduces it bit-for-bit. That exactness is what lets warm-cache
//! sweeps emit byte-identical reports to cold ones.

use crate::engine::CampaignJob;
use crate::fingerprint::{Fingerprint, Hasher};
use crate::json::Json;
use crate::policy::timeout_panic;
use cfd_core::{
    BranchStat, CancelToken, Core, CoreConfig, CoreError, CoreStats, FaultKind, InjectionRecord, KernelEvent, RunReport,
};
use cfd_energy::EventCounts;
use cfd_mem::CacheStats;
use cfd_predictor::predictor_by_name;
use cfd_profile::{profile, ProfileReport};
use cfd_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Writes the named `u64` fields of `$src` into `$out` as JSON members
/// (no surrounding braces, no leading comma).
macro_rules! put_u64_fields {
    ($out:ident, $src:expr, $($f:ident),+ $(,)?) => {{
        let mut first = true;
        $(
            if !first { $out.push(','); }
            first = false;
            let _ = write!($out, "\"{}\":{}", stringify!($f), $src.$f);
        )+
        let _ = first;
    }};
}

/// Reads the named `u64` fields of `$dst` back out of a parsed object;
/// any missing or mistyped field aborts the decode (`return None`).
macro_rules! take_u64_fields {
    ($v:expr, $dst:expr, $($f:ident),+ $(,)?) => {{
        $( $dst.$f = $v.get(stringify!($f))?.as_u64()?; )+
    }};
}

macro_rules! core_stats_u64_fields {
    ($m:ident, $a:ident, $b:expr) => {
        $m!(
            $a,
            $b,
            cycles,
            retired,
            fetched,
            wrong_path_fetched,
            issued,
            wrong_path_issued,
            retired_branches,
            mispredictions,
            bq_hits,
            bq_misses,
            bq_spec_recoveries,
            bq_push_stall_cycles,
            bq_miss_stall_cycles,
            tq_hits,
            tq_miss_stall_cycles,
            tq_push_stall_cycles,
            immediate_recoveries,
            retire_recoveries,
            checkpoints_allocated,
            checkpoints_denied,
            checkpoints_unwanted,
            btb_misfetches,
            icache_misses,
            lsq_forwards,
            max_bq_occupancy,
            max_vq_occupancy,
            max_tq_occupancy,
            faults_injected,
            post_fault_recoveries,
        )
    };
}

macro_rules! event_counts_u64_fields {
    ($m:ident, $a:ident, $b:expr) => {
        $m!(
            $a,
            $b,
            cycles,
            fetched,
            decoded,
            renamed,
            iq_writes,
            iq_wakeups,
            regfile_reads,
            regfile_writes,
            alu_simple,
            alu_complex,
            lsq_ops,
            l1d_accesses,
            l2_accesses,
            l3_accesses,
            dram_accesses,
            bpred_ops,
            btb_ops,
            rob_ops,
            checkpoint_ops,
            bq_ops,
            vq_ops,
            tq_ops,
        )
    };
}

fn put_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn take_u64_array(v: &Json) -> Option<Vec<u64>> {
    v.as_arr()?.iter().map(Json::as_u64).collect()
}

fn put_cache_stats(out: &mut String, s: &CacheStats) {
    out.push('{');
    put_u64_fields!(out, s, accesses, hits, writebacks);
    out.push('}');
}

fn take_cache_stats(v: &Json) -> Option<CacheStats> {
    let mut s = CacheStats::default();
    take_u64_fields!(v, s, accesses, hits, writebacks);
    Some(s)
}

fn put_core_stats(out: &mut String, s: &CoreStats) {
    out.push('{');
    core_stats_u64_fields!(put_u64_fields, out, s);
    out.push_str(",\"cpi_slots\":");
    put_u64_array(out, &s.cpi_slots);
    out.push_str(",\"branches\":[");
    for (i, (pc, b)) in s.branches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{pc},{{");
        put_u64_fields!(out, b, executed, taken, mispredicted);
        out.push_str(",\"by_level\":");
        put_u64_array(out, &b.mispredicted_by_level);
        out.push_str("}]");
    }
    out.push_str("]}");
}

fn take_core_stats(v: &Json) -> Option<CoreStats> {
    let mut s = CoreStats::default();
    core_stats_u64_fields!(take_u64_fields, v, s);
    s.cpi_slots = take_u64_array(v.get("cpi_slots")?)?.try_into().ok()?;
    let mut branches = BTreeMap::new();
    for entry in v.get("branches")?.as_arr()? {
        let pair = entry.as_arr()?;
        let [pc, body] = pair else { return None };
        let pc = u32::try_from(pc.as_u64()?).ok()?;
        let mut b = BranchStat::default();
        take_u64_fields!(body, b, executed, taken, mispredicted);
        let levels = take_u64_array(body.get("by_level")?)?;
        b.mispredicted_by_level = levels.try_into().ok()?;
        branches.insert(pc, b);
    }
    s.branches = branches;
    Some(s)
}

fn put_events(out: &mut String, e: &EventCounts) {
    out.push('{');
    event_counts_u64_fields!(put_u64_fields, out, e);
    out.push('}');
}

fn take_events(v: &Json) -> Option<EventCounts> {
    let mut e = EventCounts::default();
    event_counts_u64_fields!(take_u64_fields, v, e);
    Some(e)
}

fn put_injection(out: &mut String, inj: &Option<InjectionRecord>) {
    match inj {
        None => out.push_str("null"),
        Some(rec) => {
            let delay = match rec.kind {
                FaultKind::MemDelay(d) => d.to_string(),
                _ => "null".to_string(),
            };
            let _ = write!(out, "{{\"kind\":\"{}\",\"delay\":{delay},\"cycle\":{}}}", rec.kind.name(), rec.cycle);
        }
    }
}

/// Rebuilds a [`FaultKind`] from its stable name (plus the `MemDelay`
/// parameter); the site string is recovered from the kind, which is how
/// the `&'static str` field survives the cache round trip.
pub fn fault_kind_by_name(name: &str, delay: Option<u64>) -> Option<FaultKind> {
    Some(match name {
        "predictor_flip" => FaultKind::PredictorFlip,
        "bq_corrupt" => FaultKind::BqCorrupt,
        "bq_drop" => FaultKind::BqDrop,
        "tq_corrupt" => FaultKind::TqCorrupt,
        "vq_remap_corrupt" => FaultKind::VqRemapCorrupt,
        "mem_delay" => FaultKind::MemDelay(delay?),
        _ => return None,
    })
}

fn take_injection(v: &Json) -> Option<Option<InjectionRecord>> {
    if *v == Json::Null {
        return Some(None);
    }
    let kind = fault_kind_by_name(v.get("kind")?.as_str()?, v.get("delay")?.as_opt_u64()?)?;
    let cycle = v.get("cycle")?.as_u64()?;
    Some(Some(InjectionRecord { kind, cycle, site: kind.site().name() }))
}

/// Serializes a [`RunReport`] as a compact JSON document.
///
/// The pipeline trace and the telemetry artifacts are intentionally not
/// represented: engine jobs never enable them (they are interactive
/// debugging/observability aids, not campaign output — `experiments
/// observe` runs the core directly), so both fields are always `None` on
/// both sides.
pub fn run_report_to_json(r: &RunReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"stats\":");
    put_core_stats(&mut out, &r.stats);
    out.push_str(",\"events\":");
    put_events(&mut out, &r.events);
    out.push_str(",\"cache_stats\":[");
    put_cache_stats(&mut out, &r.cache_stats.0);
    out.push(',');
    put_cache_stats(&mut out, &r.cache_stats.1);
    out.push(',');
    put_cache_stats(&mut out, &r.cache_stats.2);
    out.push_str("],\"mshr_histogram\":");
    put_u64_array(&mut out, &r.mshr_histogram);
    out.push_str(",\"level_counts\":");
    put_u64_array(&mut out, &r.level_counts);
    out.push_str(",\"injection\":");
    put_injection(&mut out, &r.injection);
    out.push('}');
    out
}

/// Rebuilds a [`RunReport`] from [`run_report_to_json`] output.
pub fn run_report_from_json(v: &Json) -> Option<RunReport> {
    let caches = v.get("cache_stats")?.as_arr()?;
    let [l1, l2, l3] = caches else { return None };
    Some(RunReport {
        stats: take_core_stats(v.get("stats")?)?,
        events: take_events(v.get("events")?)?,
        cache_stats: (take_cache_stats(l1)?, take_cache_stats(l2)?, take_cache_stats(l3)?),
        mshr_histogram: take_u64_array(v.get("mshr_histogram")?)?,
        level_counts: take_u64_array(v.get("level_counts")?)?.try_into().ok()?,
        pipe_trace: None,
        injection: take_injection(v.get("injection")?)?,
        telemetry: None,
    })
}

/// A timing-simulation job: one workload on one core configuration.
///
/// This is the workhorse of every figure sweep. `execute` mirrors the
/// bench runner's semantics: a simulator error is a panic (isolated by
/// the engine into a failed row), carrying the workload name and variant.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The built workload to simulate.
    pub workload: Workload,
    /// Core configuration.
    pub cfg: CoreConfig,
    /// Cycle budget.
    pub cycle_limit: u64,
}

impl CampaignJob for SimJob {
    type Output = RunReport;

    fn kind(&self) -> &'static str {
        "sim"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("kind", b"sim");
        h.section("workload", &self.workload.fingerprint_bytes());
        h.section("config", self.cfg.stable_repr().as_bytes());
        h.section("cycle_limit", &self.cycle_limit.to_le_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("{} [{}]", self.workload.name, self.workload.variant)
    }

    fn execute(&self) -> RunReport {
        self.execute_cancellable(&CancelToken::new())
    }

    /// Drives the core's stepping kernel under the engine's cancellation
    /// token, which the kernel polls once per simulated cycle: a run past
    /// its cycle budget is killed cooperatively at exactly the first
    /// over-budget cycle and classified as a timeout, identically at any
    /// worker count. The engine consumes the kernel's event stream (rather
    /// than a monolithic `run`) so supervision stays outside the core: the
    /// default silent yield policy costs nothing, and the loop is the
    /// natural seam for richer engine-side policies (e.g. heartbeat-driven
    /// progress accounting) without touching cfd-core.
    fn execute_cancellable(&self, cancel: &CancelToken) -> RunReport {
        let mut core = Core::new(self.cfg.clone(), self.workload.program.clone(), self.workload.mem.clone())
            .unwrap_or_else(|e| {
                panic!("{} [{}] core construction failed: {e}", self.workload.name, self.workload.variant)
            })
            .with_cancellation(cancel.clone());
        loop {
            match core.next_event(self.cycle_limit) {
                Ok(KernelEvent::Halted { .. }) => return core.finish(),
                Ok(_) => continue,
                Err(CoreError::Cancelled { budget: Some(b), .. }) => timeout_panic(b),
                Err(e) => panic!("{} [{}] failed: {e}", self.workload.name, self.workload.variant),
            }
        }
    }

    fn result_to_json(out: &RunReport) -> String {
        run_report_to_json(out)
    }

    fn result_from_json(&self, v: &Json) -> Option<RunReport> {
        run_report_from_json(v)
    }
}

/// A functional-execution job: runs the workload on the ISA-level machine
/// and reports retired instructions (the reference instruction count the
/// effective-IPC metrics need).
#[derive(Debug, Clone)]
pub struct FuncJob {
    /// The built workload to execute.
    pub workload: Workload,
}

impl CampaignJob for FuncJob {
    type Output = u64;

    fn kind(&self) -> &'static str {
        "func"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("kind", b"func");
        h.section("workload", &self.workload.fingerprint_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("{} [{}] functional", self.workload.name, self.workload.variant)
    }

    fn execute(&self) -> u64 {
        self.workload
            .dynamic_instructions()
            .unwrap_or_else(|e| panic!("{} [{}] functional run failed: {e}", self.workload.name, self.workload.variant))
    }

    fn result_to_json(out: &u64) -> String {
        format!("{{\"retired\":{out}}}")
    }

    fn result_from_json(&self, v: &Json) -> Option<u64> {
        v.get("retired")?.as_u64()
    }
}

/// A branch-profiling job: functional run under a software predictor
/// model (the paper's Fig. 6 characterization tables).
#[derive(Debug, Clone)]
pub struct ProfileJob {
    /// The built workload to profile.
    pub workload: Workload,
    /// Predictor name (must be known to `cfd-predictor`).
    pub predictor: String,
    /// Instruction budget.
    pub instruction_limit: u64,
}

impl CampaignJob for ProfileJob {
    type Output = ProfileReport;

    fn kind(&self) -> &'static str {
        "profile"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("kind", b"profile");
        h.section("workload", &self.workload.fingerprint_bytes());
        h.section("predictor", self.predictor.as_bytes());
        h.section("instruction_limit", &self.instruction_limit.to_le_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("{} [{}] profile/{}", self.workload.name, self.workload.variant, self.predictor)
    }

    fn execute(&self) -> ProfileReport {
        profile(&self.workload, &self.predictor, self.instruction_limit)
            .unwrap_or_else(|e| panic!("{} [{}] profile failed: {e}", self.workload.name, self.workload.variant))
    }

    fn result_to_json(out: &ProfileReport) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        put_u64_fields!(s, out, instructions, branches, mispredictions);
        s.push_str(",\"per_branch\":[");
        for (i, (pc, b)) in out.per_branch.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{pc},{{");
            put_u64_fields!(s, b, executed, taken, mispredicted);
            s.push_str("}]");
        }
        s.push_str("]}");
        s
    }

    fn result_from_json(&self, v: &Json) -> Option<ProfileReport> {
        // The `&'static str` fields can't live in the cache; rebuild them
        // from the job, exactly as `profile()` would have set them.
        let mut rep = ProfileReport {
            name: self.workload.name,
            predictor: predictor_by_name(&self.predictor)?.name(),
            instructions: 0,
            branches: 0,
            mispredictions: 0,
            per_branch: BTreeMap::new(),
        };
        take_u64_fields!(v, rep, instructions, branches, mispredictions);
        for entry in v.get("per_branch")?.as_arr()? {
            let pair = entry.as_arr()?;
            let [pc, body] = pair else { return None };
            let pc = u32::try_from(pc.as_u64()?).ok()?;
            let mut b = cfd_profile::BranchProfile::default();
            take_u64_fields!(body, b, executed, taken, mispredicted);
            rep.per_branch.insert(pc, b);
        }
        Some(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut stats = CoreStats {
            cycles: 1234,
            retired: 5678,
            mispredictions: 9,
            bq_push_stall_cycles: 17,
            cpi_slots: [900, 8, 7, 6, 5, 4, 3, 2, 1],
            ..Default::default()
        };
        stats.branches.insert(
            4,
            BranchStat { executed: 100, taken: 60, mispredicted: 9, mispredicted_by_level: [1, 2, 3, 0, 3] },
        );
        RunReport {
            stats,
            events: EventCounts { cycles: 1234, fetched: 9000, bq_ops: 7, ..Default::default() },
            cache_stats: (
                CacheStats { accesses: 10, hits: 8, writebacks: 1 },
                CacheStats { accesses: 2, hits: 1, writebacks: 0 },
                CacheStats { accesses: 1, hits: 0, writebacks: 0 },
            ),
            mshr_histogram: vec![5, 4, 3],
            level_counts: [7, 2, 1, 1],
            pipe_trace: None,
            injection: Some(InjectionRecord {
                kind: FaultKind::MemDelay(25),
                cycle: 900,
                site: FaultKind::MemDelay(25).site().name(),
            }),
            telemetry: None,
        }
    }

    #[test]
    fn run_report_roundtrips_exactly() {
        let r = sample_report();
        let json = run_report_to_json(&r);
        let back = run_report_from_json(&Json::parse(&json).unwrap()).unwrap();
        // Re-serializing the decoded report must reproduce the bytes —
        // the property warm-cache byte-stability rests on.
        assert_eq!(run_report_to_json(&back), json);
        assert_eq!(back.stats.cycles, 1234);
        assert_eq!(back.stats.cpi_slots, [900, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(back.stats.branches[&4].mispredicted_by_level, [1, 2, 3, 0, 3]);
        assert_eq!(back.cache_stats.0.hits, 8);
        assert_eq!(back.level_counts, [7, 2, 1, 1]);
        let inj = back.injection.unwrap();
        assert_eq!(inj.kind, FaultKind::MemDelay(25));
        assert_eq!(inj.site, "execute.load");
    }

    #[test]
    fn run_report_without_injection_roundtrips() {
        let mut r = sample_report();
        r.injection = None;
        let json = run_report_to_json(&r);
        let back = run_report_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert!(back.injection.is_none());
        assert_eq!(run_report_to_json(&back), json);
    }

    #[test]
    fn fault_kinds_roundtrip_by_name() {
        for kind in [
            FaultKind::PredictorFlip,
            FaultKind::BqCorrupt,
            FaultKind::BqDrop,
            FaultKind::TqCorrupt,
            FaultKind::VqRemapCorrupt,
        ] {
            assert_eq!(fault_kind_by_name(kind.name(), None), Some(kind));
        }
        assert_eq!(fault_kind_by_name("mem_delay", Some(30)), Some(FaultKind::MemDelay(30)));
        assert_eq!(fault_kind_by_name("mem_delay", None), None);
        assert_eq!(fault_kind_by_name("unknown", None), None);
    }

    #[test]
    fn truncated_report_is_rejected() {
        let v = Json::parse(r#"{"stats":{"cycles":1}}"#).unwrap();
        assert!(run_report_from_json(&v).is_none());
    }
}
