//! A minimal JSON reader/writer for cache entries — no external deps.
//!
//! The repo's reports already hand-roll JSON *writing*; the result cache
//! additionally needs to *read* entries back. This parser covers exactly
//! the subset our writers emit: `null`, booleans, unsigned integers,
//! strings, arrays, and objects. Floats never appear in cached results
//! (every cached quantity is an exact counter), which is what makes
//! byte-identical warm-cache reports possible — so the parser rejects
//! them, and a rejected entry is simply treated as a cache miss.

use std::fmt;

/// A parsed JSON value (unsigned-integer numbers only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form cached results use).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or on constructs the
    /// cache never writes (floats, negative numbers, exponents).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != b.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `Option<u64>`: `null` maps to `Some(None)`, a number
    /// to `Some(Some(n))`, anything else to `None`.
    pub fn as_opt_u64(&self) -> Option<Option<u64>> {
        match self {
            Json::Null => Some(None),
            Json::Num(n) => Some(Some(*n)),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.i, what }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'0'..=b'9' => self.number(),
            b'-' | b'.' => Err(self.err("cached results contain only unsigned integers")),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("cached results contain only unsigned integers"));
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("digits are ascii");
        s.parse::<u64>().map(Json::Num).map_err(|_| self.err("integer overflow"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or_else(|| self.err("unterminated escape"))? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("short unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad unicode escape"))?;
                            // Cached strings only escape control chars, so
                            // surrogate pairs never appear.
                            out.push(char::from_u32(code).ok_or_else(|| self.err("bad unicode escape"))?);
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Appends `s` to `out` as a JSON string literal with escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cache_subset() {
        let v = Json::parse(r#"{"a": 7, "b": [1, 2], "c": null, "d": "x\ny", "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_opt_u64(), Some(None));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_floats_and_negatives() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("-3").is_err());
        assert!(Json::parse("1e9").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn u64_range_roundtrips() {
        let max = u64::MAX.to_string();
        assert_eq!(Json::parse(&max).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn write_str_escapes() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\u0001\"");
        // And parses back.
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("a\"b\\c\n\u{1}"));
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"[{"k": [[]]}, []]"#).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 2);
    }
}
