//! # cfd-exec — deterministic parallel campaign execution
//!
//! Every driver in this repo — the figure experiments, the lint sweep,
//! the fault-injection campaigns — has the same shape: enumerate a few
//! dozen to a few hundred independent simulations, run them, and fold the
//! results into a report whose bytes must be reproducible. This crate
//! factors that shape out into one engine with three guarantees:
//!
//! 1. **Determinism** — [`Engine::run_all`] returns results in submission
//!    order, filled purely by input index. A sweep at `--jobs 4` emits
//!    byte-identical reports to the same sweep at `--jobs 1` (locked by
//!    tests in this crate and in the drivers).
//! 2. **Content-addressed caching** — each job carries a 128-bit
//!    [`Fingerprint`] over everything its execution reads (program bytes,
//!    memory image, core configuration, limits). Results are cached at
//!    `target/cfd-cache/<fingerprint>.json`; re-running a sweep only
//!    simulates jobs whose inputs changed, and any input change changes
//!    the fingerprint, so the cache needs no manual invalidation. All
//!    cached values are exact integer counters, so warm-cache reports are
//!    byte-identical to cold ones.
//! 3. **Isolation** — a job that panics becomes a failed row
//!    ([`JobError::Panicked`]), not a dead campaign, and is never cached.
//!
//! Work is described by the [`CampaignJob`] trait; this crate ships the
//! common jobs ([`SimJob`], [`FuncJob`], [`ProfileJob`]) and the driver
//! crates define their own (lint rows in `cfd-bench`, fault trials in
//! `cfd-harden`). Worker count comes from `--jobs N` / `CFD_JOBS` via
//! [`ExecConfig::from_env`]; `--no-cache` / [`ExecConfig::use_cache`]
//! bypasses the cache, and [`Engine::stats_line`] reports
//! submitted/hit/executed/failed/deduped counts for the driver to print.
//!
//! Everything here is dependency-free `std` (threads, `Mutex`/`Condvar`,
//! plain files): the repo builds offline by design.

mod cache;
pub mod chaos;
mod engine;
mod fingerprint;
pub mod journal;
pub mod json;
pub mod policy;
mod pool;
mod sim;

pub use cache::{CacheEntryInfo, CacheError, CacheLoad, DiskCache, CACHE_VERSION};
pub use chaos::{InjectedIoFault, IoFaultKind, IoFaultShim};
pub use engine::{BatchProgress, CampaignJob, Engine, ExecConfig, ExecStats, JobError, ProgressFn};
pub use fingerprint::{campaign_fingerprint, Fingerprint, Hasher};
pub use journal::{Journal, JournalRecord, Replay};
pub use json::Json;
pub use policy::RetryPolicy;
pub use pool::{run_indexed, BoundedQueue};
pub use sim::{fault_kind_by_name, run_report_from_json, run_report_to_json, FuncJob, ProfileJob, SimJob};

// The cancellation token jobs thread into the sim loop, re-exported so
// drivers can build budgets without depending on cfd-core directly.
pub use cfd_core::CancelToken;
