//! Per-job robustness policy: retries, cycle-budget timeouts, quarantine.
//!
//! The engine's failure model distinguishes three escalating responses to
//! a misbehaving job, all configured through [`RetryPolicy`]:
//!
//! * **Timeout** — a job carries a deterministic *cycle budget*. The
//!   budget rides a [`CancelToken`](cfd_core::CancelToken) into the sim
//!   loop, which checks it once per simulated cycle; a runaway simulation
//!   is killed cooperatively at exactly the first cycle past the budget,
//!   so a timeout is the same event at `--jobs 1` and `--jobs 32`, on a
//!   fast machine or a slow one. No wall clock is ever consulted.
//! * **Retry** — failed jobs (panic or timeout) get up to
//!   [`max_retries`](RetryPolicy::max_retries) further attempts. Retries
//!   run in *waves* after the main pass, ordered by job fingerprint —
//!   never by completion time — so the retry schedule, and therefore
//!   every downstream byte, is independent of thread interleaving.
//! * **Quarantine** — a job whose total strike count (failed attempts,
//!   accumulated across resumed sessions via the journal) reaches
//!   [`quarantine_after`](RetryPolicy::quarantine_after) is poisoned: it
//!   is recorded in the journal's quarantine ledger and skipped on
//!   subsequent resumes instead of wasting budget re-crashing.
//!
//! Everything defaults *off* ([`RetryPolicy::default`]), preserving the
//! engine's original semantics: panics fail their row once, nothing
//! retries, nothing is poisoned.
//!
//! # Timeout signalling
//!
//! [`CampaignJob::execute`](crate::CampaignJob::execute) returns the
//! output directly and uses panics for failure isolation, so a
//! cancellation has to travel the same channel: a job that observes
//! budget exhaustion panics with a marker payload built by
//! [`timeout_panic`], and the engine's panic handler recognises the
//! marker ([`parse_timeout_panic`]) and classifies the attempt as
//! [`JobError::Timeout`](crate::JobError::Timeout) rather than
//! [`JobError::Panicked`](crate::JobError::Panicked).

/// Prefix of the panic payload a cancelled job raises; the remainder of
/// the payload is the decimal cycle budget.
const TIMEOUT_PANIC_MARKER: &str = "__cfd_exec_timeout__:";

/// Panics with the marker payload the engine classifies as a timeout.
/// Jobs call this when their [`CancelToken`](cfd_core::CancelToken)
/// budget expires.
pub fn timeout_panic(budget_cycles: u64) -> ! {
    panic!("{TIMEOUT_PANIC_MARKER}{budget_cycles}")
}

/// Recognises a [`timeout_panic`] payload, returning the cycle budget.
pub fn parse_timeout_panic(msg: &str) -> Option<u64> {
    msg.strip_prefix(TIMEOUT_PANIC_MARKER)?.trim().parse().ok()
}

/// Retry/timeout/quarantine policy for one campaign. The default is
/// everything off — identical to the engine's historical behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u64,
    /// Deterministic per-job cycle budget (0 = unlimited). Enforced by
    /// the sim loop through a cancellation token, so jobs that do not
    /// simulate a core simply ignore it.
    pub timeout_cycles: u64,
    /// Total strikes (across resumed sessions) before a job is poisoned
    /// and skipped on resume (0 = never quarantine).
    pub quarantine_after: u64,
}

impl RetryPolicy {
    /// The policy the `--retries N` / `--timeout-cycles C` CLI flags
    /// build: N extra attempts, quarantine once every attempt of a run
    /// has failed (N + 1 strikes), and an optional cycle budget.
    pub fn bounded(max_retries: u64, timeout_cycles: u64) -> RetryPolicy {
        RetryPolicy { max_retries, timeout_cycles, quarantine_after: max_retries + 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_marker_roundtrips() {
        let caught = std::panic::catch_unwind(|| timeout_panic(123_456)).unwrap_err();
        let msg = caught.downcast_ref::<String>().expect("string payload");
        assert_eq!(parse_timeout_panic(msg), Some(123_456));
    }

    #[test]
    fn ordinary_panics_are_not_timeouts() {
        assert_eq!(parse_timeout_panic("index out of bounds"), None);
        assert_eq!(parse_timeout_panic(""), None);
    }

    #[test]
    fn default_policy_is_fully_off() {
        let p = RetryPolicy::default();
        assert_eq!((p.max_retries, p.timeout_cycles, p.quarantine_after), (0, 0, 0));
    }

    #[test]
    fn bounded_policy_quarantines_after_all_attempts() {
        let p = RetryPolicy::bounded(2, 1_000);
        assert_eq!(p.quarantine_after, 3);
        assert_eq!(p.timeout_cycles, 1_000);
    }
}
