//! Sharded worker pool: scoped `std::thread` workers fed by a bounded
//! queue of job indices.
//!
//! The pool is deliberately minimal — the engine hands it a closed set of
//! indices and a function, and gets back one result per index, in index
//! order. All ordering decisions (cache probing, dedup, merge) stay in the
//! engine, which is what makes the N-thread output byte-identical to the
//! 1-thread output: the pool only affects *when* a job runs, never where
//! its result lands.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-consumer queue (indices in, workers out).
///
/// The producer blocks when the queue is full, workers block when it is
/// empty, and [`close`](BoundedQueue::close) wakes everyone for shutdown.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if called after [`close`](BoundedQueue::close).
    pub fn push(&self, item: T) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        while s.items.len() >= self.cap && !s.closed {
            s = self.not_full.wait(s).expect("queue lock poisoned");
        }
        assert!(!s.closed, "push after close");
        s.items.push_back(item);
        self.not_empty.notify_one();
    }

    /// Dequeues an item, blocking while the queue is empty; `None` once
    /// the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: producers may push no more, and workers drain
    /// what remains then see `None`.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Runs `f(0..n_tasks)` on up to `n_workers` threads and returns the
/// results in task-index order.
///
/// With one worker (or one task) everything runs on the calling thread —
/// the serial path and the parallel path share `f`, so `--jobs 1` is the
/// reference behaviour, not a separate code path.
pub fn run_indexed<T, F>(n_workers: usize, n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_workers = n_workers.max(1).min(n_tasks.max(1));
    if n_workers <= 1 {
        return (0..n_tasks).map(f).collect();
    }

    let queue: BoundedQueue<usize> = BoundedQueue::new(2 * n_workers);
    let out: Mutex<Vec<Option<T>>> = Mutex::new((0..n_tasks).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                while let Some(i) = queue.pop() {
                    let r = f(i);
                    out.lock().expect("result lock poisoned")[i] = Some(r);
                }
            });
        }
        for i in 0..n_tasks {
            queue.push(i);
        }
        queue.close();
    });

    out.into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|r| r.expect("worker completed every queued task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_path_preserves_order() {
        let got = run_indexed(1, 5, |i| i * 10);
        assert_eq!(got, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_results_land_in_index_order() {
        // Uneven work so completion order scrambles; results must not.
        let got = run_indexed(4, 64, |i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i * i
        });
        let want: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn worker_count_is_clamped_to_tasks() {
        // 16 workers for 2 tasks must not hang or drop work.
        let got = run_indexed(16, 2, |i| i + 1);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let got = run_indexed(8, 100, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(got.len(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn queue_close_wakes_blocked_workers() {
        let q: BoundedQueue<usize> = BoundedQueue::new(2);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.pop());
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // Capacity-1 queue: the producer can only advance as the consumer
        // drains, yet all items arrive in order.
        let q: BoundedQueue<usize> = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            });
            for i in 0..50 {
                q.push(i);
            }
            q.close();
            assert_eq!(consumer.join().unwrap(), (0..50).collect::<Vec<_>>());
        });
    }
}
