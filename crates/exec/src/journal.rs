//! Durable write-ahead job journal for crash-safe campaigns.
//!
//! The result cache makes *completed* jobs durable; the journal makes the
//! *campaign* durable. Before a campaign executes anything, the engine
//! opens `<cache>/journal/<campaign-fingerprint>.wal` and appends one
//! record per lifecycle event — `campaign` (header), `submitted`,
//! `started`, `done`, `failed`, `quarantined` — each fsync'd before the
//! engine proceeds. A process killed mid-campaign (SIGKILL, power loss)
//! can then be resumed with `--resume`: the journal's valid prefix is
//! replayed, quarantine verdicts and completion bookkeeping are restored,
//! and only jobs that never completed re-execute (their results come out
//! of the content-addressed cache otherwise, so the resumed report is
//! byte-identical to an uninterrupted run).
//!
//! # On-disk format
//!
//! The file is a sequence of length-prefixed, checksummed binary records:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes of compact JSON] [digest: 16 bytes]
//! ```
//!
//! The digest is the repo's 128-bit content fingerprint of the payload
//! (two u64 words, little-endian). Appends are a single `write_all`
//! followed by `sync_data`, so a crash leaves at most one torn record at
//! the tail. On resume the reader walks records from the start, stops at
//! the first malformed or digest-failing one, **truncates the torn tail**
//! and reopens for append — the journal self-heals exactly like the
//! cache, and a torn tail is always *detected*, never replayed.
//!
//! Replay is a per-fingerprint fold ([`Replay`]), insensitive to record
//! interleaving: worker threads append completion records in whatever
//! order jobs finish, and that order never influences campaign output
//! (the engine's determinism contract covers report bytes, not WAL
//! bytes).

use crate::chaos::IoFaultShim;
use crate::fingerprint::{Fingerprint, Hasher};
use crate::json::{write_str, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Bytes of checksum trailing every record payload.
const DIGEST_LEN: usize = 16;

/// One journal record. Payloads are compact JSON for debuggability
/// (`strings file.wal` shows the campaign history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Header: identifies the campaign this journal belongs to.
    Campaign {
        /// Hex campaign fingerprint (folded over all job fingerprints).
        fingerprint: String,
        /// Number of jobs submitted.
        jobs: u64,
    },
    /// A job was submitted at `index` with content fingerprint `fp`.
    Submitted {
        /// Submission index.
        index: u64,
        /// Hex job fingerprint.
        fp: String,
    },
    /// A worker picked the job up (present but unfinished ⇒ interrupted).
    Started {
        /// Submission index.
        index: u64,
    },
    /// The job completed and its result is durable in the cache.
    Done {
        /// Submission index.
        index: u64,
        /// Hex job fingerprint (the cache slot holding the result).
        fp: String,
    },
    /// The job failed (`class` is `"panic"` or `"timeout"`).
    Failed {
        /// Submission index.
        index: u64,
        /// Failure class.
        class: String,
        /// Attempt number (1-based) that produced this failure.
        attempt: u64,
    },
    /// The job exhausted its retries and was poisoned.
    Quarantined {
        /// Hex job fingerprint.
        fp: String,
        /// Number of failed attempts on record.
        strikes: u64,
    },
}

impl JournalRecord {
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            JournalRecord::Campaign { fingerprint, jobs } => {
                s.push_str("{\"rec\":\"campaign\",\"fingerprint\":");
                write_str(&mut s, fingerprint);
                s.push_str(&format!(",\"jobs\":{jobs}}}"));
            }
            JournalRecord::Submitted { index, fp } => {
                s.push_str(&format!("{{\"rec\":\"submitted\",\"index\":{index},\"fp\":"));
                write_str(&mut s, fp);
                s.push('}');
            }
            JournalRecord::Started { index } => {
                s.push_str(&format!("{{\"rec\":\"started\",\"index\":{index}}}"));
            }
            JournalRecord::Done { index, fp } => {
                s.push_str(&format!("{{\"rec\":\"done\",\"index\":{index},\"fp\":"));
                write_str(&mut s, fp);
                s.push('}');
            }
            JournalRecord::Failed { index, class, attempt } => {
                s.push_str(&format!("{{\"rec\":\"failed\",\"index\":{index},\"class\":"));
                write_str(&mut s, class);
                s.push_str(&format!(",\"attempt\":{attempt}}}"));
            }
            JournalRecord::Quarantined { fp, strikes } => {
                s.push_str("{\"rec\":\"quarantined\",\"fp\":");
                write_str(&mut s, fp);
                s.push_str(&format!(",\"strikes\":{strikes}}}"));
            }
        }
        s
    }

    fn from_json(v: &Json) -> Option<JournalRecord> {
        let rec = v.get("rec")?.as_str()?;
        let u = |key: &str| v.get(key).and_then(Json::as_u64);
        let st = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        Some(match rec {
            "campaign" => JournalRecord::Campaign { fingerprint: st("fingerprint")?, jobs: u("jobs")? },
            "submitted" => JournalRecord::Submitted { index: u("index")?, fp: st("fp")? },
            "started" => JournalRecord::Started { index: u("index")? },
            "done" => JournalRecord::Done { index: u("index")?, fp: st("fp")? },
            "failed" => JournalRecord::Failed { index: u("index")?, class: st("class")?, attempt: u("attempt")? },
            "quarantined" => JournalRecord::Quarantined { fp: st("fp")?, strikes: u("strikes")? },
            _ => return None,
        })
    }
}

fn payload_digest(payload: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Hasher::new();
    h.update(payload);
    let Fingerprint(a, b) = h.finish();
    let mut out = [0u8; DIGEST_LEN];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

/// The fold of a replayed journal: everything a resumed campaign needs.
#[derive(Debug, Default)]
pub struct Replay {
    /// Header, if the journal had a valid one.
    pub campaign: Option<(String, u64)>,
    /// Fingerprints with a `done` record (results durable in the cache).
    pub completed: BTreeSet<String>,
    /// Poisoned fingerprints and their strike counts.
    pub quarantined: BTreeMap<String, u64>,
    /// Failed-attempt counts per fingerprint (panics and timeouts).
    pub strikes: BTreeMap<String, u64>,
    /// Jobs that were `started` but never reached `done`/`failed` — they
    /// were in flight when the process died.
    pub interrupted: u64,
    /// Number of valid records replayed.
    pub records: u64,
    /// Bytes of torn tail truncated during recovery (0 = clean).
    pub torn_bytes: u64,
}

impl Replay {
    fn fold(records: &[JournalRecord]) -> Replay {
        let mut r = Replay::default();
        let mut started: BTreeSet<u64> = BTreeSet::new();
        let mut finished: BTreeSet<u64> = BTreeSet::new();
        let mut fp_of: BTreeMap<u64, String> = BTreeMap::new();
        for rec in records {
            match rec {
                JournalRecord::Campaign { fingerprint, jobs } => {
                    r.campaign = Some((fingerprint.clone(), *jobs));
                }
                JournalRecord::Submitted { index, fp } => {
                    fp_of.insert(*index, fp.clone());
                }
                JournalRecord::Started { index } => {
                    started.insert(*index);
                }
                JournalRecord::Done { index, fp } => {
                    finished.insert(*index);
                    r.completed.insert(fp.clone());
                }
                JournalRecord::Failed { index, .. } => {
                    finished.insert(*index);
                    if let Some(fp) = fp_of.get(index) {
                        *r.strikes.entry(fp.clone()).or_insert(0) += 1;
                    }
                }
                JournalRecord::Quarantined { fp, strikes } => {
                    r.quarantined.insert(fp.clone(), *strikes);
                }
            }
        }
        r.interrupted = started.difference(&finished).count() as u64;
        r.records = records.len() as u64;
        r
    }
}

/// An append-only, checksummed, fsync'd journal file. Appends are
/// serialized internally, so worker threads share one handle.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<fs::File>,
    path: PathBuf,
    io_faults: Option<IoFaultShim>,
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any previous one
    /// (non-resume campaigns always start clean).
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(Journal { file: Mutex::new(file), path: path.to_path_buf(), io_faults: None })
    }

    /// Opens `path` for resumption: reads the valid record prefix,
    /// truncates any torn tail, and reopens for append. A missing file
    /// yields an empty replay (resume of a never-started campaign).
    pub fn open_resume(path: &Path) -> std::io::Result<(Journal, Replay)> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let (records, valid_len) = scan_records(&bytes);
        let torn = bytes.len() as u64 - valid_len;
        if torn > 0 {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        file.seek(std::io::SeekFrom::End(0))?;

        let mut replay = Replay::fold(&records);
        replay.torn_bytes = torn;
        Ok((Journal { file: Mutex::new(file), path: path.to_path_buf(), io_faults: None }, replay))
    }

    /// Routes every subsequent append through `shim`, which may tear or
    /// corrupt the written bytes. Chaos harness use only.
    pub fn with_io_faults(mut self, shim: IoFaultShim) -> Journal {
        self.io_faults = Some(shim);
        self
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: a single `write_all` of the framed
    /// record followed by `sync_data`, under the internal lock.
    pub fn append(&self, rec: &JournalRecord) -> std::io::Result<()> {
        let payload = rec.to_json().into_bytes();
        let mut framed = Vec::with_capacity(payload.len() + 4 + DIGEST_LEN);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&payload_digest(&payload));
        if let Some(shim) = &self.io_faults {
            shim.mangle("journal.append", &mut framed);
        }
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(&framed)?;
        file.sync_data()
    }
}

/// Walks the record stream, returning the decoded valid prefix and the
/// byte length it spans. Stops at the first torn/corrupt record.
fn scan_records(bytes: &[u8]) -> (Vec<JournalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
        let Some(payload) = bytes.get(at + 4..at + 4 + len) else { break };
        let Some(digest) = bytes.get(at + 4 + len..at + 4 + len + DIGEST_LEN) else { break };
        if digest != payload_digest(payload) {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        let Ok(value) = Json::parse(text) else { break };
        let Some(rec) = JournalRecord::from_json(&value) else { break };
        records.push(rec);
        at += 4 + len + DIGEST_LEN;
    }
    (records, at as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{IoFaultKind, IoFaultShim};

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-exec-journal-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{tag}.wal"));
        let _ = fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Campaign { fingerprint: "abc123".to_string(), jobs: 3 },
            JournalRecord::Submitted { index: 0, fp: "f0".to_string() },
            JournalRecord::Submitted { index: 1, fp: "f1".to_string() },
            JournalRecord::Started { index: 0 },
            JournalRecord::Done { index: 0, fp: "f0".to_string() },
            JournalRecord::Started { index: 1 },
            JournalRecord::Failed { index: 1, class: "panic".to_string(), attempt: 1 },
            JournalRecord::Quarantined { fp: "f1".to_string(), strikes: 2 },
        ]
    }

    #[test]
    fn append_then_resume_replays_every_record() {
        let path = temp_wal("roundtrip");
        let journal = Journal::create(&path).unwrap();
        for rec in sample_records() {
            journal.append(&rec).unwrap();
        }
        drop(journal);
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 8);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.campaign, Some(("abc123".to_string(), 3)));
        assert!(replay.completed.contains("f0"));
        assert_eq!(replay.quarantined.get("f1"), Some(&2));
        assert_eq!(replay.strikes.get("f1"), Some(&1));
        assert_eq!(replay.interrupted, 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn started_without_completion_counts_as_interrupted() {
        let path = temp_wal("interrupted");
        let journal = Journal::create(&path).unwrap();
        journal.append(&JournalRecord::Submitted { index: 0, fp: "f0".to_string() }).unwrap();
        journal.append(&JournalRecord::Started { index: 0 }).unwrap();
        drop(journal);
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.interrupted, 1);
        assert!(replay.completed.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let path = temp_wal("torn");
        let journal = Journal::create(&path).unwrap();
        journal.append(&JournalRecord::Submitted { index: 0, fp: "f0".to_string() }).unwrap();
        journal.append(&JournalRecord::Done { index: 0, fp: "f0".to_string() }).unwrap();
        drop(journal);
        // Simulate a crash mid-append: chop bytes off the tail.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 1, "only the intact first record survives");
        assert_eq!(
            replay.torn_bytes as usize,
            bytes.len() - 7 - (fs::metadata(journal.path()).unwrap().len() as usize)
        );
        assert!(replay.completed.is_empty());
        // The healed journal accepts new appends and replays cleanly.
        journal.append(&JournalRecord::Done { index: 0, fp: "f0".to_string() }).unwrap();
        drop(journal);
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.torn_bytes, 0);
        assert!(replay.completed.contains("f0"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_body_stops_the_replay() {
        let path = temp_wal("flip");
        let journal = Journal::create(&path).unwrap();
        journal.append(&JournalRecord::Submitted { index: 0, fp: "f0".to_string() }).unwrap();
        journal.append(&JournalRecord::Done { index: 0, fp: "f0".to_string() }).unwrap();
        drop(journal);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit in the second record's payload.
        let second_start = {
            let first_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            4 + first_len + DIGEST_LEN
        };
        bytes[second_start + 10] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.torn_bytes > 0);
        assert!(replay.completed.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn shim_torn_append_is_detected_on_resume() {
        let path = temp_wal("shim");
        let shim = IoFaultShim::new(5, IoFaultKind::TornWrite, 1);
        let journal = Journal::create(&path).unwrap().with_io_faults(shim.clone());
        journal.append(&JournalRecord::Submitted { index: 0, fp: "f0".to_string() }).unwrap();
        assert_eq!(shim.injected_count(), 1);
        drop(journal);
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 0, "torn record never replays");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_journal_is_empty() {
        let path = temp_wal("missing");
        let (_journal, replay) = Journal::open_resume(&path).unwrap();
        assert_eq!(replay.records, 0);
        assert_eq!(replay.interrupted, 0);
        let _ = fs::remove_file(&path);
    }
}
