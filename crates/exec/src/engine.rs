//! The campaign engine: fingerprint, dedup, cache-probe, execute in
//! parallel, merge in input order — with crash-safe journaling and a
//! retry/timeout/quarantine failure policy.

use crate::cache::{CacheError, CacheLoad, DiskCache};
use crate::chaos::IoFaultShim;
use crate::fingerprint::{campaign_fingerprint, Fingerprint};
use crate::journal::{Journal, JournalRecord, Replay};
use crate::json::Json;
use crate::policy::{parse_timeout_panic, RetryPolicy};
use crate::pool;
use cfd_core::CancelToken;
use cfd_obs::{ArgValue, EventLog, Level, MetricsRegistry, TraceLog};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A unit of work a campaign submits to the [`Engine`].
///
/// Implementors live in the crates that own the domain types: the bench
/// crate defines lint jobs, the harden crate defines fault-trial jobs,
/// and this crate ships the common simulation/profiling jobs
/// ([`SimJob`](crate::SimJob), [`ProfileJob`](crate::ProfileJob),
/// [`FuncJob`](crate::FuncJob)).
///
/// The contract that makes parallel sweeps deterministic and cacheable:
///
/// * [`execute`](CampaignJob::execute) must be a pure function of the
///   job's content — no ambient state, no randomness beyond seeds carried
///   in the job itself;
/// * [`fingerprint`](CampaignJob::fingerprint) must cover everything
///   `execute` reads (two jobs with equal fingerprints are required to
///   produce identical outputs, because the engine deduplicates them);
/// * the JSON codec must round-trip exactly:
///   `result_from_json(parse(result_to_json(out)))` reproduces `out`.
///   All repo results are integer counters, so exact round-tripping is a
///   matter of not inventing floats.
pub trait CampaignJob: Send + Sync {
    /// What the job produces.
    type Output: Clone + Send;

    /// Cache namespace (e.g. `"sim"`), checked on cache load so two job
    /// types can never mis-decode each other's entries.
    fn kind(&self) -> &'static str;

    /// Content fingerprint covering every input `execute` depends on.
    fn fingerprint(&self) -> Fingerprint;

    /// Human-readable label, stored in cache entries for debuggability.
    fn describe(&self) -> String;

    /// Runs the job. May panic; the engine isolates panics into
    /// [`JobError::Panicked`] without killing the sweep.
    fn execute(&self) -> Self::Output;

    /// Runs the job under a cancellation token carrying the campaign's
    /// deterministic cycle budget. Jobs that drive a simulated core
    /// should thread `cancel` into the sim loop and raise
    /// [`timeout_panic`](crate::policy::timeout_panic) on budget
    /// exhaustion; the default ignores the token (jobs with no cycle
    /// notion cannot time out).
    fn execute_cancellable(&self, cancel: &CancelToken) -> Self::Output {
        let _ = cancel;
        self.execute()
    }

    /// Serializes a result as a complete JSON document.
    fn result_to_json(out: &Self::Output) -> String;

    /// Rebuilds a result from a parsed cache entry. Takes `&self` so
    /// fields that cannot live in the cache (e.g. `&'static str` names)
    /// are reconstructed from the job itself. `None` rejects the entry
    /// (treated as a cache miss).
    fn result_from_json(&self, v: &Json) -> Option<Self::Output>;
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message. The sweep
    /// continues — a poisoned simulation is a failed row, not a dead
    /// campaign.
    Panicked(String),
    /// The job exhausted its deterministic cycle budget and was killed
    /// cooperatively by the sim loop.
    Timeout {
        /// The budget that was exceeded, in simulated cycles.
        budget_cycles: u64,
    },
    /// The job is in the poisoned-job ledger (it failed every attempt of
    /// an earlier session) and was skipped instead of re-executed.
    Quarantined {
        /// Failed attempts on record when it was poisoned.
        strikes: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Timeout { budget_cycles } => {
                write!(f, "job exceeded its cycle budget of {budget_cycles}")
            }
            JobError::Quarantined { strikes } => {
                write!(f, "job quarantined after {strikes} failed attempts")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Whether to consult/populate the on-disk result cache.
    pub use_cache: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Retry/timeout/quarantine policy (default: everything off).
    pub policy: RetryPolicy,
    /// Resume an interrupted campaign: replay the journal instead of
    /// truncating it, honour its quarantine ledger, and re-execute only
    /// jobs whose results are not already durable in the cache.
    pub resume: bool,
    /// Whether to keep the write-ahead job journal (requires the cache;
    /// `--resume` needs a journal from the interrupted run).
    pub journal: bool,
    /// Chaos-harness hook: routes cache and journal writes through a
    /// seeded fault injector. Production configs leave this `None`.
    pub io_faults: Option<IoFaultShim>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: 1,
            use_cache: true,
            cache_dir: PathBuf::from("target/cfd-cache"),
            policy: RetryPolicy::default(),
            resume: false,
            journal: true,
            io_faults: None,
        }
    }
}

impl ExecConfig {
    /// Default config overridden by the environment: `CFD_JOBS` sets the
    /// worker count, `CFD_CACHE_DIR` relocates the cache. Malformed
    /// values are ignored.
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Ok(v) = std::env::var("CFD_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    cfg.jobs = n;
                }
            }
        }
        if let Ok(dir) = std::env::var("CFD_CACHE_DIR") {
            if !dir.trim().is_empty() {
                cfg.cache_dir = PathBuf::from(dir);
            }
        }
        cfg
    }
}

/// Counters the engine accumulates across [`Engine::run_all`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Results served from the disk cache.
    pub cache_hits: u64,
    /// Successful executions (any attempt).
    pub executed: u64,
    /// Jobs whose final attempt failed (panic or timeout).
    pub failed: u64,
    /// Duplicate submissions folded onto another job's result.
    pub deduped: u64,
    /// Corrupt cache entries detected, quarantined, and re-executed.
    pub corrupt: u64,
    /// Retry attempts (executions beyond each job's first attempt).
    pub retried: u64,
    /// Attempts killed by the deterministic cycle budget.
    pub timeout: u64,
    /// Jobs skipped via the poisoned-job ledger plus jobs newly poisoned
    /// this run.
    pub quarantined: u64,
}

/// A monotonic snapshot of one [`Engine::run_all`] batch in flight,
/// delivered through the callback installed with
/// [`Engine::set_progress`].
///
/// `done` counts jobs whose slot result is final: cache hits and
/// ledger-quarantined skips at probe time, successes as workers finish,
/// failures once their last retry is spent, and folded duplicates at
/// the end (so the last snapshot always reports `done == total`).
/// Within one batch, consecutive snapshots observed through the
/// callback never decrease any counter — the callback is invoked under
/// the progress lock, so observers see a strictly ordered sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchProgress {
    /// Jobs submitted to this batch (including duplicates).
    pub total: u64,
    /// Jobs whose result is final.
    pub done: u64,
    /// Successful executions so far.
    pub executed: u64,
    /// Results served from the cache at probe time.
    pub cache_hits: u64,
    /// Jobs finally failed (panic/timeout past the last retry, or
    /// skipped via the quarantine ledger).
    pub failed: u64,
    /// Current retry wave (0 = first attempts).
    pub wave: u64,
}

/// Callback type for [`Engine::set_progress`]. Invoked from worker
/// threads and the engine's serial sections; must not call back into
/// the engine.
pub type ProgressFn = dyn Fn(BatchProgress) + Send + Sync;

/// Applies `f` to the shared progress snapshot and reports it while
/// still holding the lock, so observers see monotonic snapshots.
fn advance(progress: &Mutex<BatchProgress>, cb: &Option<Arc<ProgressFn>>, f: impl FnOnce(&mut BatchProgress)) {
    let mut p = progress.lock().expect("progress lock poisoned");
    f(&mut p);
    if let Some(cb) = cb {
        cb(*p);
    }
}

/// How a job's slot was filled, for the trace.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobOutcome {
    CacheHit,
    Executed,
    Panicked,
    Timeout,
    Quarantined,
    Deduped,
}

impl JobOutcome {
    fn name(self) -> &'static str {
        match self {
            JobOutcome::CacheHit => "cache_hit",
            JobOutcome::Executed => "executed",
            JobOutcome::Panicked => "panicked",
            JobOutcome::Timeout => "timeout",
            JobOutcome::Quarantined => "quarantined",
            JobOutcome::Deduped => "deduped",
        }
    }
}

/// Engine telemetry: the counters behind [`Engine::stats`] and the job
/// trace, both guarded by one lock so a batch lands atomically.
struct EngineTelemetry {
    registry: MetricsRegistry,
    trace: TraceLog,
    /// Logical clock for job spans. Trace timestamps must be
    /// byte-deterministic across worker counts, so they cannot come from
    /// wall time or completion order: the clock ticks once per job in
    /// *submission* order during the single-threaded merge phase.
    clock: u64,
}

/// The campaign engine. One engine is shared per sweep; its stats
/// accumulate over every `run_all` call so the driver can print a single
/// summary line at exit.
pub struct Engine {
    cfg: ExecConfig,
    cache: Option<DiskCache>,
    telemetry: Mutex<EngineTelemetry>,
    progress: Mutex<Option<Arc<ProgressFn>>>,
    log: Mutex<Option<Arc<EventLog>>>,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(cfg: ExecConfig) -> Engine {
        let cache = if cfg.use_cache {
            let cache = DiskCache::new(&cfg.cache_dir);
            Some(match &cfg.io_faults {
                Some(shim) => cache.with_io_faults(shim.clone()),
                None => cache,
            })
        } else {
            None
        };
        Engine {
            cfg,
            cache,
            telemetry: Mutex::new(EngineTelemetry {
                registry: MetricsRegistry::enabled(),
                trace: TraceLog::enabled(),
                clock: 0,
            }),
            progress: Mutex::new(None),
            log: Mutex::new(None),
        }
    }

    /// Installs (or clears) the batch progress callback. The callback is
    /// read once at the start of each [`Engine::run_all`] batch and then
    /// invoked from worker threads as slots finalize; see
    /// [`BatchProgress`] for the monotonicity contract.
    pub fn set_progress(&self, cb: Option<Arc<ProgressFn>>) {
        *self.progress.lock().expect("progress lock poisoned") = cb;
    }

    /// Attaches (or detaches) a structured event log. The engine emits
    /// batch-level records (`batch_start`, `cache_probe`, `retry_wave`,
    /// `batch_done`) only from its single-threaded sections, so for a
    /// given submission the emitted stream — modulo the wall-clock field
    /// [`strip_wall`](cfd_obs::strip_wall) removes — is byte-identical
    /// across worker counts.
    pub fn set_log(&self, log: Option<Arc<EventLog>>) {
        *self.log.lock().expect("log lock poisoned") = log;
    }

    /// The attached event log, if any (drivers reuse it for their own
    /// records so sequence numbers stay globally ordered).
    pub fn log(&self) -> Option<Arc<EventLog>> {
        self.log.lock().expect("log lock poisoned").clone()
    }

    /// A single-threaded, cache-less engine: the reference behaviour.
    /// Library entry points that predate the engine delegate here, so
    /// their results are identical to what they always produced.
    pub fn serial() -> Engine {
        Engine::new(ExecConfig { jobs: 1, use_cache: false, ..ExecConfig::default() })
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.cfg.jobs
    }

    /// Snapshot of the accumulated counters (read back out of the metrics
    /// registry, which is their system of record).
    pub fn stats(&self) -> ExecStats {
        let t = self.telemetry.lock().expect("telemetry lock poisoned");
        ExecStats {
            submitted: t.registry.counter("exec.submitted"),
            cache_hits: t.registry.counter("exec.cache_hits"),
            executed: t.registry.counter("exec.executed"),
            failed: t.registry.counter("exec.failed"),
            deduped: t.registry.counter("exec.deduped"),
            corrupt: t.registry.counter("exec.corrupt"),
            retried: t.registry.counter("exec.retried"),
            timeout: t.registry.counter("exec.timeout"),
            quarantined: t.registry.counter("exec.quarantined"),
        }
    }

    /// Deterministic rendering of the full metrics registry (counters in
    /// name order).
    pub fn metrics(&self) -> String {
        self.telemetry.lock().expect("telemetry lock poisoned").registry.render()
    }

    /// The job trace so far as Perfetto/Chrome trace-event JSON.
    /// Timestamps are the engine's logical job clock (submission order),
    /// never wall time: N-worker runs serialize byte-identically to
    /// 1-worker runs.
    pub fn trace_json(&self) -> String {
        self.telemetry.lock().expect("telemetry lock poisoned").trace.to_json()
    }

    /// The machine-greppable summary line the drivers print to stderr:
    /// `[cfd-exec] jobs=4 submitted=86 cache_hits=80 executed=6 failed=0
    /// deduped=0 corrupt=0 retried=0 timeout=0 quarantined=0`.
    /// Byte-deterministic across worker counts.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "[cfd-exec] jobs={} submitted={} cache_hits={} executed={} failed={} deduped={} corrupt={} retried={} timeout={} quarantined={}",
            self.cfg.jobs,
            s.submitted,
            s.cache_hits,
            s.executed,
            s.failed,
            s.deduped,
            s.corrupt,
            s.retried,
            s.timeout,
            s.quarantined
        )
    }

    /// Runs one job through the same fingerprint/cache/isolate path as a
    /// batch of one.
    pub fn run_one<J: CampaignJob>(&self, job: &J) -> Result<J::Output, JobError> {
        self.run_all(std::slice::from_ref(job)).pop().expect("one job in, one result out")
    }

    /// Opens (or resumes) the campaign's write-ahead journal. The file
    /// lives under `<cache>/journal/` and is named by the campaign
    /// fingerprint — a fold over every submitted job fingerprint — so a
    /// resumed invocation with identical inputs finds its own journal and
    /// a changed campaign never replays a stale one. Journal IO is
    /// best-effort: failure to open degrades to journal-less execution.
    fn open_journal(&self, fps: &[Fingerprint]) -> (Option<Journal>, Replay) {
        let Some(cache) = &self.cache else { return (None, Replay::default()) };
        if !self.cfg.journal {
            return (None, Replay::default());
        }
        let campaign = campaign_fingerprint(fps).hex();
        let path = cache.dir().join("journal").join(format!("{campaign}.wal"));
        let opened = if self.cfg.resume {
            Journal::open_resume(&path)
        } else {
            Journal::create(&path).map(|j| (j, Replay::default()))
        };
        let Ok((journal, replay)) = opened else { return (None, Replay::default()) };
        let journal = match &self.cfg.io_faults {
            Some(shim) => journal.with_io_faults(shim.clone()),
            None => journal,
        };
        if replay.campaign.is_none() {
            let _ = journal.append(&JournalRecord::Campaign { fingerprint: campaign, jobs: fps.len() as u64 });
        }
        (Some(journal), replay)
    }

    /// Runs a batch: results come back in submission order, one per job,
    /// regardless of worker count, cache state, retries, or duplicate
    /// folding.
    ///
    /// Pipeline per unique fingerprint: consult the poisoned-job ledger
    /// (resume only), probe the cache — quarantining corrupt entries for
    /// re-execution — then execute the misses under `catch_unwind` on the
    /// worker pool. Completion is made durable *inside the worker* (cache
    /// store, then journal `done`/`failed` record), so a process killed
    /// mid-batch keeps every finished job. Failed jobs re-run in retry
    /// waves ordered by fingerprint (never by completion time); jobs that
    /// fail every attempt can be promoted into the quarantine ledger.
    /// Because each slot is filled purely by its input index, an N-thread
    /// run is byte-identical to a 1-thread run — the determinism contract
    /// the report formats rely on.
    pub fn run_all<J: CampaignJob>(&self, jobs: &[J]) -> Vec<Result<J::Output, JobError>> {
        let n = jobs.len();
        let policy = self.cfg.policy;
        let mut batch = ExecStats { submitted: n as u64, ..ExecStats::default() };
        let progress_cb = self.progress.lock().expect("progress lock poisoned").clone();
        let log = self.log.lock().expect("log lock poisoned").clone();
        let progress = Mutex::new(BatchProgress { total: n as u64, ..BatchProgress::default() });

        let fps: Vec<Fingerprint> = jobs.iter().map(|j| j.fingerprint()).collect();
        let (journal, replay) = self.open_journal(&fps);

        // First submission of each fingerprint owns the execution;
        // later duplicates fold onto it.
        let mut owner: HashMap<Fingerprint, usize> = HashMap::new();
        for (i, &fp) in fps.iter().enumerate() {
            match owner.entry(fp) {
                std::collections::hash_map::Entry::Occupied(_) => batch.deduped += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }

        // Log events come only from the engine's serial sections, so the
        // stream (modulo wall clock) never depends on the worker count.
        if let Some(l) = &log {
            l.info(
                "cfd-exec",
                "batch_start",
                &[("submitted", (n as u64).into()), ("unique", (owner.len() as u64).into())],
            );
        }

        let mut results: Vec<Option<Result<J::Output, JobError>>> = (0..n).map(|_| None).collect();
        let mut slot: Vec<JobOutcome> = vec![JobOutcome::Deduped; n];
        let mut attempts: Vec<u64> = vec![0; n];

        // Poisoned-job ledger and cache probe (owners only), serial:
        // entry IO is trivial next to simulation time and keeps the
        // accounting deterministic.
        let mut to_run: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            if owner.get(&fps[i]) != Some(&i) {
                continue;
            }
            if let Some(&strikes) = replay.quarantined.get(&fps[i].hex()) {
                batch.quarantined += 1;
                slot[i] = JobOutcome::Quarantined;
                results[i] = Some(Err(JobError::Quarantined { strikes }));
                continue;
            }
            let probe = match &self.cache {
                Some(c) => c.load_checked(job.kind(), fps[i]),
                None => CacheLoad::Miss,
            };
            let hit = match probe {
                CacheLoad::Hit(v) => job.result_from_json(&v),
                CacheLoad::Miss => None,
                CacheLoad::Corrupt(_) => {
                    batch.corrupt += 1;
                    None
                }
            };
            match hit {
                Some(out) => {
                    batch.cache_hits += 1;
                    slot[i] = JobOutcome::CacheHit;
                    results[i] = Some(Ok(out));
                }
                None => to_run.push(i),
            }
        }

        if let Some(l) = &log {
            l.event(
                Level::Debug,
                "cfd-exec",
                "cache_probe",
                &[
                    ("hits", batch.cache_hits.into()),
                    ("misses", (to_run.len() as u64).into()),
                    ("corrupt", batch.corrupt.into()),
                    ("quarantined", batch.quarantined.into()),
                ],
            );
        }
        advance(&progress, &progress_cb, |p| {
            p.done = (owner.len() - to_run.len()) as u64;
            p.cache_hits = batch.cache_hits;
            p.failed = batch.quarantined;
        });

        if let Some(j) = &journal {
            for &i in &to_run {
                let _ = j.append(&JournalRecord::Submitted { index: i as u64, fp: fps[i].hex() });
            }
        }

        // Strike counts carry over from resumed sessions, so a job that
        // crashed the previous run and crashes again accumulates toward
        // the quarantine threshold.
        let mut strikes: HashMap<usize, u64> =
            to_run.iter().map(|&i| (i, replay.strikes.get(&fps[i].hex()).copied().unwrap_or(0))).collect();

        // Execute the misses on the pool, then retry failures in waves
        // ordered by fingerprint. Each worker writes only its own index,
        // so placement is independent of completion order; durability
        // (cache store + journal record) happens in the worker so a
        // mid-batch kill keeps every completed job.
        let store_error: Mutex<Option<CacheError>> = Mutex::new(None);
        let mut wave: Vec<usize> = to_run.clone();
        let mut wave_no: u64 = 0;
        let final_failed: Vec<usize> = loop {
            let attempt = wave_no + 1;
            let last_attempt = wave_no >= policy.max_retries;
            let outcomes = pool::run_indexed(self.cfg.jobs, wave.len(), |k| {
                let i = wave[k];
                if let Some(j) = &journal {
                    let _ = j.append(&JournalRecord::Started { index: i as u64 });
                }
                let run = catch_unwind(AssertUnwindSafe(|| {
                    let cancel = match policy.timeout_cycles {
                        0 => CancelToken::new(),
                        budget => CancelToken::with_budget(budget),
                    };
                    jobs[i].execute_cancellable(&cancel)
                }))
                .map_err(|payload| panic_message(payload.as_ref()));
                match run {
                    Ok(out) => {
                        if let Some(c) = &self.cache {
                            // Panicked jobs are never cached: a panic is a
                            // bug signal, and bugs should reproduce on
                            // re-run.
                            if let Err(e) =
                                c.store(jobs[i].kind(), fps[i], &jobs[i].describe(), &J::result_to_json(&out))
                            {
                                let mut first = store_error.lock().expect("store-error lock poisoned");
                                first.get_or_insert(e);
                            }
                        }
                        if let Some(j) = &journal {
                            let _ = j.append(&JournalRecord::Done { index: i as u64, fp: fps[i].hex() });
                        }
                        advance(&progress, &progress_cb, |p| {
                            p.done += 1;
                            p.executed += 1;
                        });
                        Ok(out)
                    }
                    Err(msg) => {
                        if let Some(j) = &journal {
                            let class = if parse_timeout_panic(&msg).is_some() { "timeout" } else { "panic" };
                            let _ =
                                j.append(&JournalRecord::Failed { index: i as u64, class: class.to_string(), attempt });
                        }
                        // A failure only finalizes the slot when no retry
                        // wave can still rescue it.
                        if last_attempt {
                            advance(&progress, &progress_cb, |p| {
                                p.done += 1;
                                p.failed += 1;
                            });
                        }
                        Err(msg)
                    }
                }
            });

            let mut failed_wave: Vec<usize> = Vec::new();
            for (k, outcome) in outcomes.into_iter().enumerate() {
                let i = wave[k];
                attempts[i] += 1;
                if wave_no > 0 {
                    batch.retried += 1;
                }
                match outcome {
                    Ok(out) => {
                        batch.executed += 1;
                        slot[i] = JobOutcome::Executed;
                        results[i] = Some(Ok(out));
                    }
                    Err(msg) => {
                        *strikes.entry(i).or_insert(0) += 1;
                        match parse_timeout_panic(&msg) {
                            Some(budget_cycles) => {
                                batch.timeout += 1;
                                slot[i] = JobOutcome::Timeout;
                                results[i] = Some(Err(JobError::Timeout { budget_cycles }));
                            }
                            None => {
                                slot[i] = JobOutcome::Panicked;
                                results[i] = Some(Err(JobError::Panicked(msg)));
                            }
                        }
                        failed_wave.push(i);
                    }
                }
            }
            if failed_wave.is_empty() {
                break Vec::new();
            }
            if wave_no >= policy.max_retries {
                break failed_wave;
            }
            // Deterministic backoff: the next wave's order comes from the
            // job fingerprints, never from completion timing.
            failed_wave.sort_by_key(|&i| fps[i].hex());
            wave = failed_wave;
            wave_no += 1;
            if let Some(l) = &log {
                l.info("cfd-exec", "retry_wave", &[("wave", wave_no.into()), ("jobs", (wave.len() as u64).into())]);
            }
            advance(&progress, &progress_cb, |p| p.wave = wave_no);
        };

        for &i in &final_failed {
            batch.failed += 1;
            let total_strikes = strikes.get(&i).copied().unwrap_or(0);
            if policy.quarantine_after > 0 && total_strikes >= policy.quarantine_after {
                batch.quarantined += 1;
                if let Some(j) = &journal {
                    let _ = j.append(&JournalRecord::Quarantined { fp: fps[i].hex(), strikes: total_strikes });
                }
            }
        }

        // A failing store disabled the cache for the rest of the run;
        // say so once, with the cause, and keep going.
        if let Some(e) = store_error.lock().expect("store-error lock poisoned").take() {
            match &log {
                Some(l) => l.warn("cfd-exec", "cache_disabled", &[("error", format!("{e}").into())]),
                None => eprintln!("[cfd-exec] warning: result cache disabled: {e}"),
            }
        }

        // Fold duplicates onto their owner's result.
        for i in 0..n {
            if results[i].is_none() {
                let o = owner[&fps[i]];
                results[i] = results[o].clone();
            }
        }

        if let Some(l) = &log {
            l.info(
                "cfd-exec",
                "batch_done",
                &[
                    ("executed", batch.executed.into()),
                    ("cache_hits", batch.cache_hits.into()),
                    ("failed", batch.failed.into()),
                    ("deduped", batch.deduped.into()),
                    ("corrupt", batch.corrupt.into()),
                    ("retried", batch.retried.into()),
                    ("timeout", batch.timeout.into()),
                    ("quarantined", batch.quarantined.into()),
                ],
            );
        }
        // Final snapshot: duplicates are folded, so every slot is final.
        advance(&progress, &progress_cb, |p| {
            p.done = n as u64;
            p.executed = batch.executed;
            p.cache_hits = batch.cache_hits;
        });

        // Land the batch in one locked section: counters first, then one
        // trace record per job in *submission* order on the logical
        // clock, so the serialized trace is independent of worker count
        // and completion order.
        let mut t = self.telemetry.lock().expect("telemetry lock poisoned");
        t.registry.counter_add("exec.submitted", batch.submitted);
        t.registry.counter_add("exec.cache_hits", batch.cache_hits);
        t.registry.counter_add("exec.executed", batch.executed);
        t.registry.counter_add("exec.failed", batch.failed);
        t.registry.counter_add("exec.deduped", batch.deduped);
        t.registry.counter_add("exec.corrupt", batch.corrupt);
        t.registry.counter_add("exec.retried", batch.retried);
        t.registry.counter_add("exec.timeout", batch.timeout);
        t.registry.counter_add("exec.quarantined", batch.quarantined);
        // Fixed lane count for the tid field: a display aid only. It must
        // NOT derive from cfg.jobs, or the trace bytes would change with
        // the worker count.
        const TRACE_LANES: u64 = 4;
        for (i, job) in jobs.iter().enumerate() {
            let tid = i as u64 % TRACE_LANES;
            let mut args = vec![
                ("kind", ArgValue::from(job.kind())),
                ("fingerprint", ArgValue::from(fps[i].hex())),
                ("outcome", ArgValue::from(slot[i].name())),
            ];
            if attempts[i] > 1 {
                args.push(("attempts", ArgValue::from(attempts[i])));
            }
            match slot[i] {
                JobOutcome::Executed | JobOutcome::Panicked | JobOutcome::Timeout => {
                    let ts = t.clock;
                    t.trace.span("queue_wait", "exec", ts, 1, 0, tid, vec![("outcome", slot[i].name().into())]);
                    t.trace.span(job.describe(), "exec", ts + 1, 1, 0, tid, args);
                    t.clock += 2;
                }
                JobOutcome::CacheHit | JobOutcome::Deduped | JobOutcome::Quarantined => {
                    let ts = t.clock;
                    t.trace.instant(job.describe(), "exec", ts, 0, tid, args);
                    t.clock += 1;
                }
            }
        }
        drop(t);
        results.into_iter().map(|r| r.expect("every slot filled")).collect()
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hasher;

    /// A toy job for engine unit tests: squares a number, panics on a
    /// poison value.
    struct SquareJob {
        x: u64,
        salt: u64,
    }

    impl CampaignJob for SquareJob {
        type Output = u64;

        fn kind(&self) -> &'static str {
            "test-square"
        }

        fn fingerprint(&self) -> Fingerprint {
            let mut h = Hasher::new();
            h.section("x", &self.x.to_le_bytes());
            h.section("salt", &self.salt.to_le_bytes());
            h.finish()
        }

        fn describe(&self) -> String {
            format!("square {}", self.x)
        }

        fn execute(&self) -> u64 {
            assert!(self.x != 13, "poison value 13");
            self.x * self.x
        }

        fn result_to_json(out: &u64) -> String {
            format!("{{\"v\":{out}}}")
        }

        fn result_from_json(&self, v: &Json) -> Option<u64> {
            v.get("v")?.as_u64()
        }
    }

    fn squares(xs: &[u64], salt: u64) -> Vec<SquareJob> {
        xs.iter().map(|&x| SquareJob { x, salt }).collect()
    }

    #[test]
    fn serial_engine_runs_in_order() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[1, 2, 3], 0));
        assert_eq!(got, vec![Ok(1), Ok(4), Ok(9)]);
        let s = eng.stats();
        assert_eq!((s.submitted, s.executed, s.cache_hits), (3, 3, 0));
    }

    #[test]
    fn panic_is_isolated_to_its_job() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[2, 13, 4], 0));
        assert_eq!(got[0], Ok(4));
        match &got[1] {
            Err(JobError::Panicked(m)) => assert!(m.contains("poison value 13"), "actual message: {m:?}"),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(got[2], Ok(16));
        assert_eq!(eng.stats().failed, 1);
    }

    #[test]
    fn duplicates_fold_within_a_batch() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[5, 5, 5, 6], 0));
        assert_eq!(got, vec![Ok(25), Ok(25), Ok(25), Ok(36)]);
        let s = eng.stats();
        assert_eq!((s.submitted, s.executed, s.deduped), (4, 2, 2));
    }

    #[test]
    fn stats_line_shape() {
        let eng = Engine::serial();
        let _ = eng.run_all(&squares(&[1], 0));
        assert_eq!(
            eng.stats_line(),
            "[cfd-exec] jobs=1 submitted=1 cache_hits=0 executed=1 failed=0 deduped=0 corrupt=0 retried=0 timeout=0 quarantined=0"
        );
    }

    #[test]
    fn stats_line_renders_every_failure_counter() {
        let eng = Engine::serial();
        let line = eng.stats_line();
        for field in [
            "corrupt=",
            "retried=",
            "timeout=",
            "quarantined=",
            "submitted=",
            "cache_hits=",
            "executed=",
            "failed=",
            "deduped=",
        ] {
            assert!(line.contains(field), "stats line missing {field:?}: {line}");
        }
    }

    #[test]
    fn stats_accumulate_across_batches() {
        // The daemon keeps one engine alive across many sweeps; its
        // counters are the store-lifetime record and must accumulate, not
        // reset, between run_all calls.
        let eng = Engine::serial();
        let _ = eng.run_all(&squares(&[1, 2], 7));
        let _ = eng.run_all(&squares(&[3, 3, 13], 7));
        let s = eng.stats();
        assert_eq!(s.submitted, 5, "submissions sum over both batches");
        assert_eq!(s.executed, 3, "1,2 then 3 (13 panics)");
        assert_eq!(s.deduped, 1);
        assert_eq!(s.failed, 1);
        let line = eng.stats_line();
        assert!(line.contains("submitted=5"), "line reflects the accumulated totals: {line}");
    }

    #[test]
    fn retries_rerun_failures_and_are_counted() {
        let eng = Engine::new(ExecConfig {
            use_cache: false,
            policy: RetryPolicy { max_retries: 2, timeout_cycles: 0, quarantine_after: 0 },
            ..ExecConfig::default()
        });
        // The poison job fails deterministically every attempt; the rest
        // succeed on the first.
        let got = eng.run_all(&squares(&[2, 13, 4], 0));
        assert!(matches!(&got[1], Err(JobError::Panicked(_))));
        let s = eng.stats();
        assert_eq!(s.executed, 2, "successes execute once each");
        assert_eq!(s.retried, 2, "the failing job burns both retries");
        assert_eq!(s.failed, 1, "failed counts jobs, not attempts");
    }

    #[test]
    fn trace_and_metrics_are_byte_identical_across_worker_counts() {
        let run = |jobs: usize| {
            let eng = Engine::new(ExecConfig { jobs, use_cache: false, ..ExecConfig::default() });
            let _ = eng.run_all(&squares(&[1, 2, 3, 3, 4, 5, 6, 7], 99));
            (eng.trace_json(), eng.metrics())
        };
        let (t1, m1) = run(1);
        let (t4, m4) = run(4);
        assert_eq!(t1, t4, "trace must not depend on worker count");
        assert_eq!(m1, m4, "metrics must not depend on worker count");
        assert!(t1.contains("\"name\":\"queue_wait\""));
        assert!(t1.contains("\"outcome\":\"deduped\""));
    }

    #[test]
    fn progress_snapshots_are_monotonic_and_final_matches_stats() {
        for jobs in [1usize, 4] {
            let eng = Engine::new(ExecConfig { jobs, use_cache: false, ..ExecConfig::default() });
            let seen: Arc<Mutex<Vec<BatchProgress>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            eng.set_progress(Some(Arc::new(move |p: BatchProgress| {
                sink.lock().unwrap().push(p);
            })));
            let _ = eng.run_all(&squares(&[1, 2, 3, 3, 13, 5], 31));
            let snaps = seen.lock().unwrap();
            assert!(!snaps.is_empty());
            for w in snaps.windows(2) {
                assert!(w[1].done >= w[0].done, "done regressed: {:?} -> {:?}", w[0], w[1]);
                assert!(w[1].executed >= w[0].executed, "executed regressed");
                assert!(w[1].failed >= w[0].failed, "failed regressed");
            }
            let last = *snaps.last().unwrap();
            let s = eng.stats();
            assert_eq!(last.total, 6);
            assert_eq!(last.done, last.total, "final snapshot covers every slot");
            assert_eq!(last.executed, s.executed);
            assert_eq!(last.cache_hits, s.cache_hits);
            assert_eq!(last.failed, s.failed, "13 panics with no retries");
        }
    }

    #[test]
    fn event_log_is_byte_identical_across_worker_counts() {
        let run = |jobs: usize| {
            let eng = Engine::new(ExecConfig {
                jobs,
                use_cache: false,
                policy: RetryPolicy { max_retries: 1, timeout_cycles: 0, quarantine_after: 0 },
                ..ExecConfig::default()
            });
            let log = Arc::new(cfd_obs::EventLog::memory(cfd_obs::Level::Debug));
            eng.set_log(Some(Arc::clone(&log)));
            let _ = eng.run_all(&squares(&[1, 2, 3, 3, 13, 5, 6, 7], 77));
            cfd_obs::strip_wall(&log.contents())
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "engine log events must come only from serial sections");
        assert!(one.contains("\"event\":\"batch_start\""), "{one}");
        assert!(one.contains("\"event\":\"retry_wave\""), "13 fails and retries: {one}");
        assert!(one.contains("\"event\":\"batch_done\""), "{one}");
    }

    #[test]
    fn from_env_defaults_without_vars() {
        // Can't mutate the environment safely in a threaded test binary;
        // just check the default shape.
        let cfg = ExecConfig::default();
        assert_eq!(cfg.jobs, 1);
        assert!(cfg.use_cache);
        assert!(cfg.journal);
        assert!(!cfg.resume);
        assert_eq!(cfg.policy, RetryPolicy::default());
    }
}
