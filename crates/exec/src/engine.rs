//! The campaign engine: fingerprint, dedup, cache-probe, execute in
//! parallel, merge in input order.

use crate::cache::DiskCache;
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::pool;
use cfd_obs::{ArgValue, MetricsRegistry, TraceLog};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// A unit of work a campaign submits to the [`Engine`].
///
/// Implementors live in the crates that own the domain types: the bench
/// crate defines lint jobs, the harden crate defines fault-trial jobs,
/// and this crate ships the common simulation/profiling jobs
/// ([`SimJob`](crate::SimJob), [`ProfileJob`](crate::ProfileJob),
/// [`FuncJob`](crate::FuncJob)).
///
/// The contract that makes parallel sweeps deterministic and cacheable:
///
/// * [`execute`](CampaignJob::execute) must be a pure function of the
///   job's content — no ambient state, no randomness beyond seeds carried
///   in the job itself;
/// * [`fingerprint`](CampaignJob::fingerprint) must cover everything
///   `execute` reads (two jobs with equal fingerprints are required to
///   produce identical outputs, because the engine deduplicates them);
/// * the JSON codec must round-trip exactly:
///   `result_from_json(parse(result_to_json(out)))` reproduces `out`.
///   All repo results are integer counters, so exact round-tripping is a
///   matter of not inventing floats.
pub trait CampaignJob: Send + Sync {
    /// What the job produces.
    type Output: Clone + Send;

    /// Cache namespace (e.g. `"sim"`), checked on cache load so two job
    /// types can never mis-decode each other's entries.
    fn kind(&self) -> &'static str;

    /// Content fingerprint covering every input `execute` depends on.
    fn fingerprint(&self) -> Fingerprint;

    /// Human-readable label, stored in cache entries for debuggability.
    fn describe(&self) -> String;

    /// Runs the job. May panic; the engine isolates panics into
    /// [`JobError::Panicked`] without killing the sweep.
    fn execute(&self) -> Self::Output;

    /// Serializes a result as a complete JSON document.
    fn result_to_json(out: &Self::Output) -> String;

    /// Rebuilds a result from a parsed cache entry. Takes `&self` so
    /// fields that cannot live in the cache (e.g. `&'static str` names)
    /// are reconstructed from the job itself. `None` rejects the entry
    /// (treated as a cache miss).
    fn result_from_json(&self, v: &Json) -> Option<Self::Output>;
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload is the panic message. The sweep
    /// continues — a poisoned simulation is a failed row, not a dead
    /// campaign.
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (1 = serial).
    pub jobs: usize,
    /// Whether to consult/populate the on-disk result cache.
    pub use_cache: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { jobs: 1, use_cache: true, cache_dir: PathBuf::from("target/cfd-cache") }
    }
}

impl ExecConfig {
    /// Default config overridden by the environment: `CFD_JOBS` sets the
    /// worker count, `CFD_CACHE_DIR` relocates the cache. Malformed
    /// values are ignored.
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Ok(v) = std::env::var("CFD_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    cfg.jobs = n;
                }
            }
        }
        if let Ok(dir) = std::env::var("CFD_CACHE_DIR") {
            if !dir.trim().is_empty() {
                cfg.cache_dir = PathBuf::from(dir);
            }
        }
        cfg
    }
}

/// Counters the engine accumulates across [`Engine::run_all`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Results served from the disk cache.
    pub cache_hits: u64,
    /// Jobs actually simulated.
    pub executed: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Duplicate submissions folded onto another job's result.
    pub deduped: u64,
}

/// How a job's slot was filled, for the trace.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobOutcome {
    CacheHit,
    Executed,
    Panicked,
    Deduped,
}

impl JobOutcome {
    fn name(self) -> &'static str {
        match self {
            JobOutcome::CacheHit => "cache_hit",
            JobOutcome::Executed => "executed",
            JobOutcome::Panicked => "panicked",
            JobOutcome::Deduped => "deduped",
        }
    }
}

/// Engine telemetry: the counters behind [`Engine::stats`] and the job
/// trace, both guarded by one lock so a batch lands atomically.
struct EngineTelemetry {
    registry: MetricsRegistry,
    trace: TraceLog,
    /// Logical clock for job spans. Trace timestamps must be
    /// byte-deterministic across worker counts, so they cannot come from
    /// wall time or completion order: the clock ticks once per job in
    /// *submission* order during the single-threaded merge phase.
    clock: u64,
}

/// The campaign engine. One engine is shared per sweep; its stats
/// accumulate over every `run_all` call so the driver can print a single
/// summary line at exit.
pub struct Engine {
    cfg: ExecConfig,
    cache: Option<DiskCache>,
    telemetry: Mutex<EngineTelemetry>,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(cfg: ExecConfig) -> Engine {
        let cache = if cfg.use_cache { Some(DiskCache::new(&cfg.cache_dir)) } else { None };
        Engine {
            cfg,
            cache,
            telemetry: Mutex::new(EngineTelemetry {
                registry: MetricsRegistry::enabled(),
                trace: TraceLog::enabled(),
                clock: 0,
            }),
        }
    }

    /// A single-threaded, cache-less engine: the reference behaviour.
    /// Library entry points that predate the engine delegate here, so
    /// their results are identical to what they always produced.
    pub fn serial() -> Engine {
        Engine::new(ExecConfig { jobs: 1, use_cache: false, ..ExecConfig::default() })
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.cfg.jobs
    }

    /// Snapshot of the accumulated counters (read back out of the metrics
    /// registry, which is their system of record).
    pub fn stats(&self) -> ExecStats {
        let t = self.telemetry.lock().expect("telemetry lock poisoned");
        ExecStats {
            submitted: t.registry.counter("exec.submitted"),
            cache_hits: t.registry.counter("exec.cache_hits"),
            executed: t.registry.counter("exec.executed"),
            failed: t.registry.counter("exec.failed"),
            deduped: t.registry.counter("exec.deduped"),
        }
    }

    /// Deterministic rendering of the full metrics registry (counters in
    /// name order).
    pub fn metrics(&self) -> String {
        self.telemetry.lock().expect("telemetry lock poisoned").registry.render()
    }

    /// The job trace so far as Perfetto/Chrome trace-event JSON.
    /// Timestamps are the engine's logical job clock (submission order),
    /// never wall time: N-worker runs serialize byte-identically to
    /// 1-worker runs.
    pub fn trace_json(&self) -> String {
        self.telemetry.lock().expect("telemetry lock poisoned").trace.to_json()
    }

    /// The machine-greppable summary line the drivers print to stderr:
    /// `[cfd-exec] jobs=4 submitted=86 cache_hits=80 executed=6 failed=0 deduped=0`.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        format!(
            "[cfd-exec] jobs={} submitted={} cache_hits={} executed={} failed={} deduped={}",
            self.cfg.jobs, s.submitted, s.cache_hits, s.executed, s.failed, s.deduped
        )
    }

    /// Runs one job through the same fingerprint/cache/isolate path as a
    /// batch of one.
    pub fn run_one<J: CampaignJob>(&self, job: &J) -> Result<J::Output, JobError> {
        self.run_all(std::slice::from_ref(job)).pop().expect("one job in, one result out")
    }

    /// Runs a batch: results come back in submission order, one per job,
    /// regardless of worker count, cache state, or duplicate folding.
    ///
    /// Pipeline per unique fingerprint: probe the cache (when enabled);
    /// on a miss, execute under `catch_unwind` on the worker pool and
    /// store the result. Duplicates within the batch clone the first
    /// submission's result. Because each slot is filled purely by its
    /// input index, an N-thread run is byte-identical to a 1-thread run —
    /// the determinism contract the report formats rely on.
    pub fn run_all<J: CampaignJob>(&self, jobs: &[J]) -> Vec<Result<J::Output, JobError>> {
        let n = jobs.len();
        let mut batch = ExecStats { submitted: n as u64, ..ExecStats::default() };

        let fps: Vec<Fingerprint> = jobs.iter().map(|j| j.fingerprint()).collect();

        // First submission of each fingerprint owns the execution;
        // later duplicates fold onto it.
        let mut owner: HashMap<Fingerprint, usize> = HashMap::new();
        for (i, &fp) in fps.iter().enumerate() {
            match owner.entry(fp) {
                std::collections::hash_map::Entry::Occupied(_) => batch.deduped += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }

        let mut results: Vec<Option<Result<J::Output, JobError>>> = (0..n).map(|_| None).collect();
        let mut slot: Vec<JobOutcome> = vec![JobOutcome::Deduped; n];

        // Cache probe (owners only), serial: entry IO is trivial next to
        // simulation time and keeps hit accounting deterministic.
        let mut to_run: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            if owner.get(&fps[i]) != Some(&i) {
                continue;
            }
            let hit =
                self.cache.as_ref().and_then(|c| c.load(job.kind(), fps[i])).and_then(|v| job.result_from_json(&v));
            match hit {
                Some(out) => {
                    batch.cache_hits += 1;
                    slot[i] = JobOutcome::CacheHit;
                    results[i] = Some(Ok(out));
                }
                None => to_run.push(i),
            }
        }

        // Execute the misses on the pool; each worker writes only its own
        // index, so placement is independent of completion order.
        let outcomes = pool::run_indexed(self.cfg.jobs, to_run.len(), |k| {
            let i = to_run[k];
            catch_unwind(AssertUnwindSafe(|| jobs[i].execute())).map_err(|payload| panic_message(payload.as_ref()))
        });
        for (k, outcome) in outcomes.into_iter().enumerate() {
            let i = to_run[k];
            match outcome {
                Ok(out) => {
                    batch.executed += 1;
                    slot[i] = JobOutcome::Executed;
                    if let Some(c) = &self.cache {
                        // Panicked jobs are never cached: a panic is a bug
                        // signal, and bugs should reproduce on re-run.
                        c.store(jobs[i].kind(), fps[i], &jobs[i].describe(), &J::result_to_json(&out));
                    }
                    results[i] = Some(Ok(out));
                }
                Err(msg) => {
                    batch.failed += 1;
                    slot[i] = JobOutcome::Panicked;
                    results[i] = Some(Err(JobError::Panicked(msg)));
                }
            }
        }

        // Fold duplicates onto their owner's result.
        for i in 0..n {
            if results[i].is_none() {
                let o = owner[&fps[i]];
                results[i] = results[o].clone();
            }
        }

        // Land the batch in one locked section: counters first, then one
        // trace record per job in *submission* order on the logical
        // clock, so the serialized trace is independent of worker count
        // and completion order.
        let mut t = self.telemetry.lock().expect("telemetry lock poisoned");
        t.registry.counter_add("exec.submitted", batch.submitted);
        t.registry.counter_add("exec.cache_hits", batch.cache_hits);
        t.registry.counter_add("exec.executed", batch.executed);
        t.registry.counter_add("exec.failed", batch.failed);
        t.registry.counter_add("exec.deduped", batch.deduped);
        // Fixed lane count for the tid field: a display aid only. It must
        // NOT derive from cfg.jobs, or the trace bytes would change with
        // the worker count.
        const TRACE_LANES: u64 = 4;
        for (i, job) in jobs.iter().enumerate() {
            let tid = i as u64 % TRACE_LANES;
            let args = vec![
                ("kind", ArgValue::from(job.kind())),
                ("fingerprint", ArgValue::from(fps[i].hex())),
                ("outcome", ArgValue::from(slot[i].name())),
            ];
            match slot[i] {
                JobOutcome::Executed | JobOutcome::Panicked => {
                    let ts = t.clock;
                    t.trace.span("queue_wait", "exec", ts, 1, 0, tid, vec![("outcome", slot[i].name().into())]);
                    t.trace.span(job.describe(), "exec", ts + 1, 1, 0, tid, args);
                    t.clock += 2;
                }
                JobOutcome::CacheHit | JobOutcome::Deduped => {
                    let ts = t.clock;
                    t.trace.instant(job.describe(), "exec", ts, 0, tid, args);
                    t.clock += 1;
                }
            }
        }
        drop(t);
        results.into_iter().map(|r| r.expect("every slot filled")).collect()
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hasher;

    /// A toy job for engine unit tests: squares a number, panics on a
    /// poison value.
    struct SquareJob {
        x: u64,
        salt: u64,
    }

    impl CampaignJob for SquareJob {
        type Output = u64;

        fn kind(&self) -> &'static str {
            "test-square"
        }

        fn fingerprint(&self) -> Fingerprint {
            let mut h = Hasher::new();
            h.section("x", &self.x.to_le_bytes());
            h.section("salt", &self.salt.to_le_bytes());
            h.finish()
        }

        fn describe(&self) -> String {
            format!("square {}", self.x)
        }

        fn execute(&self) -> u64 {
            assert!(self.x != 13, "poison value 13");
            self.x * self.x
        }

        fn result_to_json(out: &u64) -> String {
            format!("{{\"v\":{out}}}")
        }

        fn result_from_json(&self, v: &Json) -> Option<u64> {
            v.get("v")?.as_u64()
        }
    }

    fn squares(xs: &[u64], salt: u64) -> Vec<SquareJob> {
        xs.iter().map(|&x| SquareJob { x, salt }).collect()
    }

    #[test]
    fn serial_engine_runs_in_order() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[1, 2, 3], 0));
        assert_eq!(got, vec![Ok(1), Ok(4), Ok(9)]);
        let s = eng.stats();
        assert_eq!((s.submitted, s.executed, s.cache_hits), (3, 3, 0));
    }

    #[test]
    fn panic_is_isolated_to_its_job() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[2, 13, 4], 0));
        assert_eq!(got[0], Ok(4));
        match &got[1] {
            Err(JobError::Panicked(m)) => assert!(m.contains("poison value 13"), "actual message: {m:?}"),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(got[2], Ok(16));
        assert_eq!(eng.stats().failed, 1);
    }

    #[test]
    fn duplicates_fold_within_a_batch() {
        let eng = Engine::serial();
        let got = eng.run_all(&squares(&[5, 5, 5, 6], 0));
        assert_eq!(got, vec![Ok(25), Ok(25), Ok(25), Ok(36)]);
        let s = eng.stats();
        assert_eq!((s.submitted, s.executed, s.deduped), (4, 2, 2));
    }

    #[test]
    fn stats_line_shape() {
        let eng = Engine::serial();
        let _ = eng.run_all(&squares(&[1], 0));
        assert_eq!(eng.stats_line(), "[cfd-exec] jobs=1 submitted=1 cache_hits=0 executed=1 failed=0 deduped=0");
    }

    #[test]
    fn trace_and_metrics_are_byte_identical_across_worker_counts() {
        let run = |jobs: usize| {
            let eng = Engine::new(ExecConfig { jobs, use_cache: false, ..ExecConfig::default() });
            let _ = eng.run_all(&squares(&[1, 2, 3, 3, 4, 5, 6, 7], 99));
            (eng.trace_json(), eng.metrics())
        };
        let (t1, m1) = run(1);
        let (t4, m4) = run(4);
        assert_eq!(t1, t4, "trace must not depend on worker count");
        assert_eq!(m1, m4, "metrics must not depend on worker count");
        assert!(t1.contains("\"name\":\"queue_wait\""));
        assert!(t1.contains("\"outcome\":\"deduped\""));
    }

    #[test]
    fn from_env_defaults_without_vars() {
        // Can't mutate the environment safely in a threaded test binary;
        // just check the default shape.
        let cfg = ExecConfig::default();
        assert_eq!(cfg.jobs, 1);
        assert!(cfg.use_cache);
    }
}
