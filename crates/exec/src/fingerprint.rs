//! Content fingerprinting: a hand-rolled 128-bit hash over job content.
//!
//! The repo builds fully offline (PR 1's rule), so no hashing crate is
//! available; this module provides a dependency-free fingerprint that is
//! stable across runs, platforms, and thread counts. Two independent
//! 64-bit lanes are combined:
//!
//! * lane A — FNV-1a with the standard 64-bit offset basis and prime, the
//!   same construction the workload checksums already use;
//! * lane B — a multiply–rotate mix in the xxhash/wyhash family, seeded
//!   differently so the lanes fail independently.
//!
//! A single 64-bit hash would already make collisions vanishingly rare at
//! our catalog sizes (hundreds of jobs); the second lane makes a silent
//! cache collision effectively impossible while keeping the hasher a few
//! lines of obvious code.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const MIX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const MIX_MULT: u64 = 0xff51_afd7_ed55_8ccd;

/// A 128-bit content fingerprint, rendered as 32 hex digits.
///
/// Fingerprints name cache entries (`target/cfd-cache/<hex>.json`) and
/// deduplicate identical jobs within a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// The fingerprint as a fixed-width lowercase hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Streaming two-lane hasher producing a [`Fingerprint`].
///
/// # Examples
///
/// ```
/// use cfd_exec::Hasher;
/// let mut h = Hasher::new();
/// h.update(b"job content");
/// let fp = h.finish();
/// assert_eq!(fp.hex().len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    fnv: u64,
    mix: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Hasher {
        Hasher { fnv: FNV_OFFSET, mix: MIX_SEED }
    }

    /// Feeds bytes into both lanes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fnv = (self.fnv ^ b as u64).wrapping_mul(FNV_PRIME);
            self.mix = (self.mix ^ b as u64).wrapping_mul(MIX_MULT).rotate_left(29);
        }
    }

    /// Feeds a length-prefixed section, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn section(&mut self, tag: &str, body: &[u8]) {
        self.update(tag.as_bytes());
        self.update(&(body.len() as u64).to_le_bytes());
        self.update(body);
    }

    /// Finalizes into a fingerprint (the hasher may keep being fed; this
    /// snapshots the current state through an avalanche step).
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(avalanche(self.fnv), avalanche(self.mix ^ self.fnv.rotate_left(31)))
    }
}

/// The campaign fingerprint: a fold over every job fingerprint in
/// submission order.
///
/// This names the write-ahead journal (`<cache>/journal/<hex>.wal`) and
/// identifies a sweep to the `cfd-serve` daemon, so a re-submitted
/// campaign with identical inputs maps onto the same journal/sweep and a
/// changed campaign never collides with a stale one. The fold is
/// order-sensitive on purpose: result slots are positional.
pub fn campaign_fingerprint(fps: &[Fingerprint]) -> Fingerprint {
    let mut h = Hasher::new();
    for fp in fps {
        h.update(&fp.0.to_le_bytes());
        h.update(&fp.1.to_le_bytes());
    }
    h.finish()
}

/// xxhash-style finalization: spreads low-entropy state across all bits.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(sections: &[(&str, &[u8])]) -> Fingerprint {
        let mut h = Hasher::new();
        for (tag, body) in sections {
            h.section(tag, body);
        }
        h.finish()
    }

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = fp(&[("p", b"abc"), ("c", b"xyz")]);
        assert_eq!(a, fp(&[("p", b"abc"), ("c", b"xyz")]));
        assert_ne!(a, fp(&[("p", b"abd"), ("c", b"xyz")]));
        assert_ne!(a, fp(&[("p", b"abc"), ("c", b"xyw")]));
    }

    #[test]
    fn section_boundaries_matter() {
        assert_ne!(fp(&[("p", b"ab"), ("c", b"c")]), fp(&[("p", b"a"), ("c", b"bc")]));
    }

    #[test]
    fn hex_is_32_digits_and_stable() {
        let a = fp(&[("k", b"v")]);
        assert_eq!(a.hex().len(), 32);
        assert_eq!(a.hex(), a.hex());
        assert_eq!(format!("{a}"), a.hex());
    }

    #[test]
    fn empty_input_has_a_fingerprint() {
        let e = Hasher::new().finish();
        assert_ne!(e, fp(&[("k", b"")]));
    }

    #[test]
    fn lanes_differ() {
        let a = fp(&[("p", b"hello world")]);
        assert_ne!(a.0, a.1);
    }

    #[test]
    fn campaign_fingerprint_is_order_sensitive_and_stable() {
        let a = fp(&[("k", b"a")]);
        let b = fp(&[("k", b"b")]);
        let ab = campaign_fingerprint(&[a, b]);
        assert_eq!(ab, campaign_fingerprint(&[a, b]));
        assert_ne!(ab, campaign_fingerprint(&[b, a]));
        assert_ne!(ab, campaign_fingerprint(&[a]));
        assert_ne!(campaign_fingerprint(&[]), campaign_fingerprint(&[a]));
    }
}
