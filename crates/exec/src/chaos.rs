//! Seeded IO-fault injection for the persistence layer.
//!
//! PR 1 established the repo's fault-injection discipline for the
//! *simulated* machine: every fault is seeded, every outcome is classified
//! against a detection contract. This module turns the same discipline on
//! the campaign engine's own storage — the content-addressed result cache
//! and the write-ahead job journal. An [`IoFaultShim`] sits between those
//! writers and the filesystem and, driven by the repo's deterministic
//! xorshift RNG, tears or corrupts a seeded subset of writes:
//!
//! * [`IoFaultKind::TornWrite`] — the buffer is truncated at a seeded
//!   offset before it reaches the disk, modelling a crash (or a
//!   non-atomic filesystem) mid-write;
//! * [`IoFaultKind::BitFlip`] — one seeded bit is flipped, modelling
//!   silent media corruption.
//!
//! The shim records every fault it injects, so a chaos harness
//! (`cfd_harden::run_exec_chaos`) can demand an accounting: each injected
//! fault must end up *masked* (e.g. a torn temp file whose rename never
//! happened) or *detected* (checksum/parse failure, quarantined entry,
//! torn journal tail) — never a silent divergence of campaign results.
//!
//! Production engines never construct a shim; the hook is a cold
//! `Option` that costs one branch per store.

use cfd_isa::check::Rng;
use std::sync::{Arc, Mutex};

/// What the shim does to an intercepted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Truncate the buffer at a seeded offset (a torn write).
    TornWrite,
    /// Flip one seeded bit (silent media corruption).
    BitFlip,
}

impl IoFaultKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::TornWrite => "torn_write",
            IoFaultKind::BitFlip => "bit_flip",
        }
    }
}

/// One injected fault, for the harness's bookkeeping.
#[derive(Debug, Clone)]
pub struct InjectedIoFault {
    /// Which writer was hit (`"cache.store"`, `"journal.append"`).
    pub site: &'static str,
    /// What was done to the buffer.
    pub kind: IoFaultKind,
    /// Byte offset the fault landed at (truncation point or flipped byte).
    pub offset: usize,
    /// Length of the buffer before mangling.
    pub original_len: usize,
}

#[derive(Debug)]
struct ShimState {
    kind: IoFaultKind,
    /// Inject roughly once per `period` eligible writes (1 = every write).
    period: u64,
    rng_and_log: Mutex<(Rng, Vec<InjectedIoFault>)>,
}

/// A seeded IO-fault injector shared (via [`Clone`]) by the cache and the
/// journal of one engine. All decisions come from the embedded
/// deterministic RNG: the same seed over the same write sequence injects
/// the same faults.
#[derive(Debug, Clone)]
pub struct IoFaultShim {
    inner: Arc<ShimState>,
}

impl IoFaultShim {
    /// A shim injecting `kind` roughly once per `period` writes (minimum
    /// 1, i.e. every write), drawing decisions from `seed`.
    pub fn new(seed: u64, kind: IoFaultKind, period: u64) -> IoFaultShim {
        IoFaultShim {
            inner: Arc::new(ShimState {
                kind,
                period: period.max(1),
                rng_and_log: Mutex::new((Rng::new(seed), Vec::new())),
            }),
        }
    }

    /// Possibly corrupts `bytes` in place; returns whether a fault was
    /// injected. Empty buffers are never touched.
    pub fn mangle(&self, site: &'static str, bytes: &mut Vec<u8>) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let mut g = self.inner.rng_and_log.lock().expect("io-fault shim lock poisoned");
        let (rng, log) = &mut *g;
        if self.inner.period > 1 && rng.below(self.inner.period) != 0 {
            return false;
        }
        let original_len = bytes.len();
        let offset = match self.inner.kind {
            IoFaultKind::TornWrite => {
                // Keep a strict prefix so the write is genuinely torn.
                let keep = rng.below(original_len as u64) as usize;
                bytes.truncate(keep);
                keep
            }
            IoFaultKind::BitFlip => {
                let off = rng.below(original_len as u64) as usize;
                let bit = rng.below(8) as u8;
                bytes[off] ^= 1 << bit;
                off
            }
        };
        log.push(InjectedIoFault { site, kind: self.inner.kind, offset, original_len });
        true
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> Vec<InjectedIoFault> {
        self.inner.rng_and_log.lock().expect("io-fault shim lock poisoned").1.clone()
    }

    /// Number of faults injected so far.
    pub fn injected_count(&self) -> usize {
        self.inner.rng_and_log.lock().expect("io-fault shim lock poisoned").1.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_write_truncates_to_a_strict_prefix() {
        let shim = IoFaultShim::new(7, IoFaultKind::TornWrite, 1);
        let original: Vec<u8> = (0..100).collect();
        let mut buf = original.clone();
        assert!(shim.mangle("cache.store", &mut buf));
        assert!(buf.len() < original.len());
        assert_eq!(buf[..], original[..buf.len()]);
        let log = shim.injected();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].original_len, 100);
        assert_eq!(log[0].offset, buf.len());
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let shim = IoFaultShim::new(11, IoFaultKind::BitFlip, 1);
        let original: Vec<u8> = vec![0xAA; 64];
        let mut buf = original.clone();
        assert!(shim.mangle("journal.append", &mut buf));
        assert_eq!(buf.len(), original.len());
        let diff_bits: u32 = buf.iter().zip(&original).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff_bits, 1);
    }

    #[test]
    fn same_seed_injects_identically() {
        let run = || {
            let shim = IoFaultShim::new(42, IoFaultKind::TornWrite, 3);
            let mut lens = Vec::new();
            for i in 0..20u8 {
                let mut buf = vec![i; 50];
                shim.mangle("cache.store", &mut buf);
                lens.push(buf.len());
            }
            (lens, shim.injected_count())
        };
        assert_eq!(run(), run());
        let (_, n) = run();
        assert!(n >= 1, "period 3 over 20 writes should inject at least once");
    }

    #[test]
    fn empty_buffers_are_never_touched() {
        let shim = IoFaultShim::new(1, IoFaultKind::BitFlip, 1);
        let mut buf: Vec<u8> = Vec::new();
        assert!(!shim.mangle("cache.store", &mut buf));
        assert_eq!(shim.injected_count(), 0);
    }
}
