//! Content-addressed on-disk result cache with self-healing.
//!
//! Entries live at `<dir>/<fingerprint>.json`; the fingerprint covers the
//! full job content (program bytes, memory image, core configuration,
//! limits), so a cache file never has to be invalidated by hand — any
//! input change produces a different file name, and stale entries are
//! simply never read again. Each entry wraps the job's result JSON with a
//! version, the job kind, and a trailing integrity digest over everything
//! that precedes it:
//!
//! ```json
//! {"cache_version": 3, "kind": "sim", "job": "soplex_like [base]", "result": {...}, "check": "9f2c..."}
//! ```
//!
//! The `check` field is the hex of the repo's 128-bit content fingerprint
//! computed over the entry bytes up to (not including) the `,"check":`
//! suffix. Because the digest is the *last* thing written, a torn write
//! (crash mid-store, non-atomic filesystem) leaves a file whose suffix is
//! malformed, and a bit flip anywhere in the payload fails verification.
//!
//! Cache degradation is graded, never fatal:
//!
//! * an absent entry, stale `cache_version`, or `kind` mismatch is a
//!   plain **miss** — the job re-executes, nothing else happens;
//! * an unparseable or digest-failing entry is **corrupt** — the file is
//!   moved into `<dir>/quarantine/` for post-mortem inspection, the
//!   engine counts it (`corrupt=` in the stats line), and the job
//!   transparently re-executes, overwriting the slot with a good entry
//!   (self-healing);
//! * a failing **store** (disk full, permissions) flips the cache into
//!   degraded mode: the engine warns once and finishes the campaign
//!   cache-off instead of panicking.
//!
//! The cache can therefore never make a sweep fail — only make it faster.

use crate::chaos::IoFaultShim;
use crate::fingerprint::{Fingerprint, Hasher};
use crate::json::{write_str, Json};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Entry-format version; bump when a result codec changes shape so stale
/// entries from older builds read as misses instead of mis-decoding.
/// v2: `RunReport` stats gained the `cpi_slots` CPI-stack array.
/// v3: entries carry a trailing `check` integrity digest.
pub const CACHE_VERSION: u64 = 3;

/// Byte length of the fixed `,"check":"<32 hex>"}\n` suffix that closes
/// every v3 entry. The digest covers everything before this suffix.
const CHECK_SUFFIX_LEN: usize = 10 + 32 + 3;

/// A cache IO failure with enough context to act on. `Io` failures flip
/// the cache into degraded (cache-off) mode; `Corrupt` entries are
/// quarantined and re-executed.
#[derive(Debug)]
pub enum CacheError {
    /// A filesystem operation failed (disk full, permissions, ...).
    Io {
        /// What the cache was doing (`"write"`, `"rename"`, ...).
        op: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// An entry failed integrity verification.
    Corrupt {
        /// The (pre-quarantine) entry path.
        path: PathBuf,
        /// Human-readable reason (`"unparseable"`, `"digest mismatch"`, ...).
        why: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { op, path, error } => {
                write!(f, "cache {op} failed for {}: {error}", path.display())
            }
            CacheError::Corrupt { path, why } => {
                write!(f, "corrupt cache entry {}: {why}", path.display())
            }
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io { error, .. } => Some(error),
            CacheError::Corrupt { .. } => None,
        }
    }
}

/// Outcome of a checked cache probe.
#[derive(Debug)]
pub enum CacheLoad {
    /// A verified entry; the parsed `result` field.
    Hit(Json),
    /// No usable entry (absent, stale version, other kind). Benign.
    Miss,
    /// The entry existed but failed verification; it has been moved to
    /// the quarantine directory (or deleted if the move failed) so the
    /// re-executed result can heal the slot.
    Corrupt(CacheError),
}

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    degraded: Arc<AtomicBool>,
    io_faults: Option<IoFaultShim>,
}

/// Summary of one live cache entry, produced by [`DiskCache::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntryInfo {
    /// The entry's fingerprint (its file stem), 32 hex digits.
    pub fingerprint: String,
    /// The job kind recorded in the entry (`"sim"`, `"lint"`, ...), or
    /// `"?"` if the entry is unreadable/unparseable.
    pub kind: String,
    /// On-disk size of the entry in bytes.
    pub bytes: u64,
}

/// Digest over the entry bytes that precede the `,"check":` suffix.
fn entry_digest(core: &str) -> Fingerprint {
    let mut h = Hasher::new();
    h.update(core.as_bytes());
    h.finish()
}

impl DiskCache {
    /// Opens (creating if needed) the cache at `dir`. Creation failures
    /// are deferred: the handle still works, and the first failing store
    /// flips it into degraded mode.
    pub fn new(dir: &Path) -> DiskCache {
        let _ = fs::create_dir_all(dir);
        DiskCache { dir: dir.to_path_buf(), degraded: Arc::new(AtomicBool::new(false)), io_faults: None }
    }

    /// Routes every subsequent store through `shim`, which may tear or
    /// corrupt the written bytes. Chaos harness use only.
    pub fn with_io_faults(mut self, shim: IoFaultShim) -> DiskCache {
        self.io_faults = Some(shim);
        self
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where corrupt entries are moved for post-mortem inspection.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Whether a store has failed and disabled the cache for this handle
    /// (and all clones of it).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.hex()))
    }

    /// Moves a corrupt entry aside (deleting it if the move fails) so the
    /// slot can be healed by a fresh store.
    fn quarantine(&self, path: &Path, why: String) -> CacheLoad {
        let qdir = self.quarantine_dir();
        let _ = fs::create_dir_all(&qdir);
        let moved = path.file_name().map(|name| fs::rename(path, qdir.join(name)).is_ok()).unwrap_or(false);
        if !moved {
            let _ = fs::remove_file(path);
        }
        CacheLoad::Corrupt(CacheError::Corrupt { path: path.to_path_buf(), why })
    }

    /// Looks up the result for `fp`, distinguishing verified hits, benign
    /// misses, and corrupt entries (which are quarantined as a side
    /// effect).
    pub fn load_checked(&self, kind: &str, fp: Fingerprint) -> CacheLoad {
        let path = self.entry_path(fp);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLoad::Miss,
            // Unreadable but present: treat as corrupt so it is moved
            // aside and the slot can heal.
            Err(e) => return self.quarantine(&path, format!("unreadable: {e}")),
        };
        let entry = match Json::parse(&text) {
            Ok(entry) => entry,
            Err(e) => return self.quarantine(&path, format!("unparseable: {e}")),
        };
        match entry.get("cache_version").and_then(Json::as_u64) {
            Some(v) if v == CACHE_VERSION => {}
            // Stale but well-formed entries from older builds are benign.
            Some(_) => return CacheLoad::Miss,
            None => return self.quarantine(&path, "missing cache_version".to_string()),
        }
        match entry.get("kind").and_then(Json::as_str) {
            Some(k) if k == kind => {}
            Some(_) => return CacheLoad::Miss,
            None => return self.quarantine(&path, "missing kind".to_string()),
        }
        // Verify the trailing digest over the raw bytes that precede it.
        if text.len() < CHECK_SUFFIX_LEN {
            return self.quarantine(&path, "truncated entry".to_string());
        }
        let (core, suffix) = text.split_at(text.len() - CHECK_SUFFIX_LEN);
        if !suffix.starts_with(",\"check\":\"") || !suffix.ends_with("\"}\n") {
            return self.quarantine(&path, "torn check suffix".to_string());
        }
        let recorded = &suffix[10..42];
        let computed = entry_digest(core).hex();
        if recorded != computed {
            return self.quarantine(&path, format!("digest mismatch: recorded {recorded}, computed {computed}"));
        }
        match entry.get("result") {
            Some(result) => CacheLoad::Hit(result.clone()),
            None => self.quarantine(&path, "missing result".to_string()),
        }
    }

    /// Compatibility probe collapsing [`CacheLoad`] to an `Option`:
    /// `None` on any kind of miss, including quarantined corruption.
    pub fn load(&self, kind: &str, fp: Fingerprint) -> Option<Json> {
        match self.load_checked(kind, fp) {
            CacheLoad::Hit(result) => Some(result),
            CacheLoad::Miss | CacheLoad::Corrupt(_) => None,
        }
    }

    /// Stores `result_json` (a complete JSON document) for `fp`. Atomic:
    /// the entry is written to a temp file and renamed into place, so
    /// concurrent writers of the same entry (two sweeps racing) leave a
    /// complete entry, never a torn one. A filesystem failure flips this
    /// handle into degraded mode and is reported so the engine can warn
    /// once and carry on cache-off.
    pub fn store(&self, kind: &str, fp: Fingerprint, describe: &str, result_json: &str) -> Result<(), CacheError> {
        if self.is_degraded() {
            return Ok(());
        }
        let mut entry = String::with_capacity(result_json.len() + 192);
        entry.push_str("{\"cache_version\":");
        entry.push_str(&CACHE_VERSION.to_string());
        entry.push_str(",\"kind\":");
        write_str(&mut entry, kind);
        entry.push_str(",\"job\":");
        write_str(&mut entry, describe);
        entry.push_str(",\"result\":");
        entry.push_str(result_json);
        let digest = entry_digest(&entry).hex();
        entry.push_str(",\"check\":\"");
        entry.push_str(&digest);
        entry.push_str("\"}\n");

        let mut bytes = entry.into_bytes();
        if let Some(shim) = &self.io_faults {
            shim.mangle("cache.store", &mut bytes);
        }

        let path = self.entry_path(fp);
        let tmp = self.dir.join(format!("{}.json.tmp.{}", fp.hex(), std::process::id()));
        if let Err(error) = fs::write(&tmp, bytes) {
            self.degraded.store(true, Ordering::Relaxed);
            return Err(CacheError::Io { op: "write", path: tmp, error });
        }
        if let Err(error) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            self.degraded.store(true, Ordering::Relaxed);
            return Err(CacheError::Io { op: "rename", path, error });
        }
        Ok(())
    }

    /// Enumerates the live entries (`<dir>/<32 hex>.json`), sorted by
    /// fingerprint so the listing is deterministic. Each entry's recorded
    /// `kind` is read back for per-kind accounting; unreadable entries
    /// report kind `"?"` rather than failing the scan. Non-entry files
    /// (temp files, the journal and quarantine subdirectories) are
    /// skipped.
    pub fn scan(&self) -> Vec<CacheEntryInfo> {
        let mut out = Vec::new();
        let Ok(rd) = fs::read_dir(&self.dir) else { return out };
        for de in rd.flatten() {
            let path = de.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
            let is_entry = path.extension().and_then(|e| e.to_str()) == Some("json")
                && stem.len() == 32
                && stem.chars().all(|c| c.is_ascii_hexdigit());
            if !is_entry || !path.is_file() {
                continue;
            }
            let bytes = de.metadata().map(|m| m.len()).unwrap_or(0);
            let kind = fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|v| v.get("kind").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_else(|| "?".to_string());
            out.push(CacheEntryInfo { fingerprint: stem.to_string(), kind, bytes });
        }
        out.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        out
    }

    /// Counts quarantined entries: `(files, total bytes)`.
    pub fn quarantine_usage(&self) -> (u64, u64) {
        let (mut files, mut bytes) = (0u64, 0u64);
        if let Ok(rd) = fs::read_dir(self.quarantine_dir()) {
            for de in rd.flatten() {
                if de.path().is_file() {
                    files += 1;
                    bytes += de.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        (files, bytes)
    }

    /// Deletes every quarantined entry (they exist only for post-mortem
    /// inspection; the live slots they came from have already re-executed
    /// and healed). Returns `(files removed, bytes freed)`.
    pub fn gc_quarantine(&self) -> (u64, u64) {
        let (mut files, mut bytes) = (0u64, 0u64);
        if let Ok(rd) = fs::read_dir(self.quarantine_dir()) {
            for de in rd.flatten() {
                let path = de.path();
                if path.is_file() {
                    let len = de.metadata().map(|m| m.len()).unwrap_or(0);
                    if fs::remove_file(&path).is_ok() {
                        files += 1;
                        bytes += len;
                    }
                }
            }
        }
        (files, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::IoFaultKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-exec-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(1, 2);
        cache.store("sim", fp, "kernel [base]", r#"{"cycles":42}"#).unwrap();
        let got = cache.load("sim", fp).expect("entry present");
        assert_eq!(got.get("cycles").unwrap().as_u64(), Some(42));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_is_a_miss() {
        let dir = temp_dir("kind");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(3, 4);
        cache.store("sim", fp, "j", "{}").unwrap();
        assert!(matches!(cache.load_checked("profile", fp), CacheLoad::Miss));
        assert!(cache.load("sim", fp).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_entries_are_plain_misses() {
        let dir = temp_dir("absent");
        let cache = DiskCache::new(&dir);
        assert!(matches!(cache.load_checked("sim", Fingerprint(5, 6)), CacheLoad::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_entries_are_quarantined() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(5, 6);
        let path = dir.join(format!("{}.json", fp.hex()));
        fs::write(&path, "not json").unwrap();
        assert!(matches!(cache.load_checked("sim", fp), CacheLoad::Corrupt(_)));
        assert!(!path.exists(), "corrupt entry moved out of the way");
        assert!(
            cache.quarantine_dir().join(format!("{}.json", fp.hex())).exists(),
            "corrupt entry preserved in quarantine"
        );
        // The slot heals: a fresh store overwrites and verifies.
        cache.store("sim", fp, "j", r#"{"v":9}"#).unwrap();
        assert!(matches!(cache.load_checked("sim", fp), CacheLoad::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_a_miss_not_corruption() {
        let dir = temp_dir("version");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(7, 8);
        let path = dir.join(format!("{}.json", fp.hex()));
        fs::write(&path, r#"{"cache_version":999,"kind":"sim","job":"j","result":{}}"#).unwrap();
        assert!(matches!(cache.load_checked("sim", fp), CacheLoad::Miss));
        assert!(path.exists(), "stale entries are left alone, not quarantined");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_fails_the_digest() {
        let dir = temp_dir("bitflip");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(9, 10);
        cache.store("sim", fp, "j", r#"{"cycles":1234}"#).unwrap();
        let path = dir.join(format!("{}.json", fp.hex()));
        let mut text = fs::read_to_string(&path).unwrap();
        // Corrupt the result payload without breaking JSON syntax.
        let flipped = text.replace("1234", "1235");
        assert_ne!(text, flipped);
        text = flipped;
        fs::write(&path, text).unwrap();
        match cache.load_checked("sim", fp) {
            CacheLoad::Corrupt(CacheError::Corrupt { why, .. }) => {
                assert!(why.contains("digest mismatch"), "unexpected reason: {why}");
            }
            other => panic!("expected digest corruption, got {other:?}"),
        }
        assert!(cache.load("sim", fp).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_detected_as_torn() {
        let dir = temp_dir("torn");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(11, 12);
        cache.store("sim", fp, "j", r#"{"cycles":7}"#).unwrap();
        let path = dir.join(format!("{}.json", fp.hex()));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 10]).unwrap();
        assert!(matches!(cache.load_checked("sim", fp), CacheLoad::Corrupt(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_store_via_shim_is_caught_on_load() {
        let dir = temp_dir("shim");
        let shim = IoFaultShim::new(3, IoFaultKind::TornWrite, 1);
        let cache = DiskCache::new(&dir).with_io_faults(shim.clone());
        let fp = Fingerprint(13, 14);
        cache.store("sim", fp, "j", r#"{"cycles":77}"#).unwrap();
        assert_eq!(shim.injected_count(), 1);
        // The torn entry must never read back as a hit.
        assert!(!matches!(cache.load_checked("sim", fp), CacheLoad::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_store_degrades_to_cache_off() {
        let dir = temp_dir("degrade");
        let cache = DiskCache::new(&dir);
        // Remove the directory out from under the cache so writes fail.
        fs::remove_dir_all(&dir).unwrap();
        let fp = Fingerprint(15, 16);
        let err = cache.store("sim", fp, "j", "{}").unwrap_err();
        assert!(matches!(err, CacheError::Io { op: "write", .. }));
        assert!(cache.is_degraded());
        // Subsequent stores are silent no-ops.
        cache.store("sim", fp, "j", "{}").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_lists_live_entries_and_gc_clears_quarantine() {
        let dir = temp_dir("scan");
        let cache = DiskCache::new(&dir);
        cache.store("sim", Fingerprint(1, 2), "a", r#"{"v":1}"#).unwrap();
        cache.store("lint", Fingerprint(3, 4), "b", r#"{"v":2}"#).unwrap();
        // A corrupt entry lands in quarantine, not the live listing.
        let bad = Fingerprint(5, 6);
        fs::write(dir.join(format!("{}.json", bad.hex())), "not json").unwrap();
        assert!(matches!(cache.load_checked("sim", bad), CacheLoad::Corrupt(_)));

        let entries = cache.scan();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0].fingerprint < w[1].fingerprint), "scan is sorted");
        let kinds: Vec<&str> = entries.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"sim") && kinds.contains(&"lint"));
        assert!(entries.iter().all(|e| e.bytes > 0));

        let (qfiles, qbytes) = cache.quarantine_usage();
        assert_eq!(qfiles, 1);
        assert!(qbytes > 0);
        let (removed, freed) = cache.gc_quarantine();
        assert_eq!((removed, freed), (qfiles, qbytes));
        assert_eq!(cache.quarantine_usage(), (0, 0));
        // Live entries survive the GC.
        assert_eq!(cache.scan().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let dir = temp_dir("distinct");
        let cache = DiskCache::new(&dir);
        cache.store("sim", Fingerprint(1, 1), "a", r#"{"v":1}"#).unwrap();
        cache.store("sim", Fingerprint(1, 2), "b", r#"{"v":2}"#).unwrap();
        assert_eq!(cache.load("sim", Fingerprint(1, 1)).unwrap().get("v").unwrap().as_u64(), Some(1));
        assert_eq!(cache.load("sim", Fingerprint(1, 2)).unwrap().get("v").unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }
}
