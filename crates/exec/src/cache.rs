//! Content-addressed on-disk result cache.
//!
//! Entries live at `<dir>/<fingerprint>.json`; the fingerprint covers the
//! full job content (program bytes, memory image, core configuration,
//! limits), so a cache file never has to be invalidated by hand — any
//! input change produces a different file name, and stale entries are
//! simply never read again. Each entry wraps the job's result JSON with a
//! version and the job kind:
//!
//! ```json
//! {"cache_version": 1, "kind": "sim", "job": "soplex_like [base]", "result": {...}}
//! ```
//!
//! All cache IO is best-effort: a missing, unreadable, or malformed entry
//! is a miss (the job re-executes), and a failed store is ignored. The
//! cache can therefore never make a sweep fail — only make it faster.

use crate::fingerprint::Fingerprint;
use crate::json::{write_str, Json};
use std::fs;
use std::path::{Path, PathBuf};

/// Entry-format version; bump when a result codec changes shape so stale
/// entries from older builds read as misses instead of mis-decoding.
/// v2: `RunReport` stats gained the `cpi_slots` CPI-stack array.
pub const CACHE_VERSION: u64 = 2;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) the cache at `dir`. Creation failures
    /// are deferred: the handle still works, and stores become no-ops.
    pub fn new(dir: &Path) -> DiskCache {
        let _ = fs::create_dir_all(dir);
        DiskCache { dir: dir.to_path_buf() }
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.hex()))
    }

    /// Looks up the result for `fp`, returning the parsed `result` field
    /// of the entry. `None` on any kind of miss: absent file, parse
    /// failure, version or kind mismatch.
    pub fn load(&self, kind: &str, fp: Fingerprint) -> Option<Json> {
        let text = fs::read_to_string(self.entry_path(fp)).ok()?;
        let entry = Json::parse(&text).ok()?;
        if entry.get("cache_version")?.as_u64()? != CACHE_VERSION {
            return None;
        }
        if entry.get("kind")?.as_str()? != kind {
            return None;
        }
        entry.get("result").cloned()
    }

    /// Stores `result_json` (a complete JSON document) for `fp`.
    /// Best-effort and atomic: the entry is written to a temp file and
    /// renamed into place, so concurrent writers of the same entry (two
    /// sweeps racing) leave a complete entry, never a torn one.
    pub fn store(&self, kind: &str, fp: Fingerprint, describe: &str, result_json: &str) {
        let mut entry = String::with_capacity(result_json.len() + 128);
        entry.push_str("{\"cache_version\":");
        entry.push_str(&CACHE_VERSION.to_string());
        entry.push_str(",\"kind\":");
        write_str(&mut entry, kind);
        entry.push_str(",\"job\":");
        write_str(&mut entry, describe);
        entry.push_str(",\"result\":");
        entry.push_str(result_json);
        entry.push_str("}\n");

        let path = self.entry_path(fp);
        let tmp = self.dir.join(format!("{}.json.tmp.{}", fp.hex(), std::process::id()));
        if fs::write(&tmp, entry).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfd-exec-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(1, 2);
        cache.store("sim", fp, "kernel [base]", r#"{"cycles":42}"#);
        let got = cache.load("sim", fp).expect("entry present");
        assert_eq!(got.get("cycles").unwrap().as_u64(), Some(42));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_is_a_miss() {
        let dir = temp_dir("kind");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(3, 4);
        cache.store("sim", fp, "j", "{}");
        assert!(cache.load("profile", fp).is_none());
        assert!(cache.load("sim", fp).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_and_corrupt_entries_are_misses() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(5, 6);
        assert!(cache.load("sim", fp).is_none());
        fs::write(dir.join(format!("{}.json", fp.hex())), "not json").unwrap();
        assert!(cache.load("sim", fp).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let dir = temp_dir("version");
        let cache = DiskCache::new(&dir);
        let fp = Fingerprint(7, 8);
        fs::write(
            dir.join(format!("{}.json", fp.hex())),
            r#"{"cache_version":999,"kind":"sim","job":"j","result":{}}"#,
        )
        .unwrap();
        assert!(cache.load("sim", fp).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let dir = temp_dir("distinct");
        let cache = DiskCache::new(&dir);
        cache.store("sim", Fingerprint(1, 1), "a", r#"{"v":1}"#);
        cache.store("sim", Fingerprint(1, 2), "b", r#"{"v":2}"#);
        assert_eq!(cache.load("sim", Fingerprint(1, 1)).unwrap().get("v").unwrap().as_u64(), Some(1));
        assert_eq!(cache.load("sim", Fingerprint(1, 2)).unwrap().get("v").unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }
}
