//! Integration tests for the campaign engine's three contracts:
//! determinism (worker count never changes results), content-addressed
//! caching (fingerprints track inputs; warm runs execute nothing), and
//! panic isolation (one poisoned job cannot kill the batch).

use cfd_core::CoreConfig;
use cfd_exec::{CampaignJob, DiskCache, Engine, ExecConfig, Fingerprint, Hasher, JobError, Json, RetryPolicy, SimJob};
use cfd_workloads::{by_name, Scale, Variant};
use std::path::PathBuf;

/// A fresh cache directory under the target dir, unique per test.
fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfd-exec-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(jobs: usize, cache_dir: Option<PathBuf>) -> Engine {
    match cache_dir {
        Some(dir) => Engine::new(ExecConfig { jobs, use_cache: true, cache_dir: dir, ..ExecConfig::default() }),
        None => Engine::new(ExecConfig { jobs, use_cache: false, ..ExecConfig::default() }),
    }
}

fn sim_jobs(scale: Scale) -> Vec<SimJob> {
    let cfg = CoreConfig::default();
    let mut jobs = Vec::new();
    for name in ["soplex_ref_like", "astar_r1_like", "bzip2_like"] {
        let entry = by_name(name).expect("in catalog");
        for v in [Variant::Base, Variant::Cfd] {
            jobs.push(SimJob { workload: entry.build(v, scale), cfg: cfg.clone(), cycle_limit: 4_000_000 });
        }
    }
    jobs
}

fn small_scale() -> Scale {
    Scale { n: 60, ..Scale::small() }
}

/// Serializes every result of a batch, preserving order — the byte
/// string the determinism contract quantifies over.
fn transcript(engine: &Engine, jobs: &[SimJob]) -> String {
    engine
        .run_all(jobs)
        .into_iter()
        .map(|r| SimJob::result_to_json(&r.expect("catalog sims succeed")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn four_workers_match_one_worker_byte_for_byte() {
    let jobs = sim_jobs(small_scale());
    let serial = transcript(&engine(1, None), &jobs);
    let parallel = transcript(&engine(4, None), &jobs);
    assert_eq!(serial, parallel);
    assert!(serial.contains("\"cycles\":"));
}

#[test]
fn fingerprint_tracks_config_and_scale() {
    let entry = by_name("soplex_ref_like").expect("in catalog");
    let base = SimJob {
        workload: entry.build(Variant::Base, small_scale()),
        cfg: CoreConfig::default(),
        cycle_limit: 4_000_000,
    };
    let fp = base.fingerprint();

    // Identical inputs — identical fingerprint.
    let again = SimJob {
        workload: entry.build(Variant::Base, small_scale()),
        cfg: CoreConfig::default(),
        cycle_limit: 4_000_000,
    };
    assert_eq!(fp, again.fingerprint());

    // A different core configuration changes it.
    let other_cfg = SimJob {
        cfg: CoreConfig { bq_size: 32, ..CoreConfig::default() },
        workload: entry.build(Variant::Base, small_scale()),
        cycle_limit: 4_000_000,
    };
    assert_ne!(fp, other_cfg.fingerprint());

    // A different scale changes the program, so it changes too.
    let other_scale = SimJob {
        workload: entry.build(Variant::Base, Scale { n: 61, ..Scale::small() }),
        cfg: CoreConfig::default(),
        cycle_limit: 4_000_000,
    };
    assert_ne!(fp, other_scale.fingerprint());

    // So does the cycle limit.
    let other_limit = SimJob {
        workload: entry.build(Variant::Base, small_scale()),
        cfg: CoreConfig::default(),
        cycle_limit: 8_000_000,
    };
    assert_ne!(fp, other_limit.fingerprint());
}

#[test]
fn warm_cache_executes_nothing_and_is_byte_identical() {
    let dir = temp_cache("warm");
    let jobs = sim_jobs(small_scale());

    let cold_engine = engine(2, Some(dir.clone()));
    let cold = transcript(&cold_engine, &jobs);
    let cold_stats = cold_engine.stats();
    assert_eq!(cold_stats.cache_hits, 0);
    assert_eq!(cold_stats.executed, jobs.len() as u64);

    let warm_engine = engine(2, Some(dir.clone()));
    let warm = transcript(&warm_engine, &jobs);
    let warm_stats = warm_engine.stats();
    assert_eq!(warm_stats.executed, 0, "warm cache must run zero simulations");
    assert_eq!(warm_stats.cache_hits, jobs.len() as u64);
    assert_eq!(cold, warm, "cached results must round-trip byte-identically");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_degrade_to_misses() {
    let dir = temp_cache("corrupt");
    let jobs = sim_jobs(Scale { n: 40, ..Scale::small() });

    let first = engine(1, Some(dir.clone()));
    let expected = transcript(&first, &jobs);

    // Truncate every cached entry (skipping the journal/quarantine
    // subdirectories); the engine must silently re-execute.
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            std::fs::write(path, "{\"cache_version\":1,").unwrap();
        }
    }
    let second = engine(1, Some(dir.clone()));
    let again = transcript(&second, &jobs);
    assert_eq!(expected, again);
    assert_eq!(second.stats().cache_hits, 0);
    assert_eq!(second.stats().executed, jobs.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A job that panics on demand, to prove isolation.
struct Poisoned {
    id: u64,
    poison: bool,
}

impl CampaignJob for Poisoned {
    type Output = u64;

    fn kind(&self) -> &'static str {
        "poison-test"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("id", &self.id.to_le_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("poison-test {}", self.id)
    }

    fn execute(&self) -> u64 {
        assert!(!self.poison, "poisoned job {} exploded", self.id);
        self.id * 10
    }

    fn result_to_json(out: &u64) -> String {
        format!("{{\"value\":{out}}}")
    }

    fn result_from_json(&self, v: &Json) -> Option<u64> {
        v.get("value")?.as_u64()
    }
}

#[test]
fn one_poisoned_job_does_not_kill_the_pool() {
    let jobs: Vec<Poisoned> = (0..8).map(|id| Poisoned { id, poison: id == 3 }).collect();
    let results = engine(4, None).run_all(&jobs);
    for (id, r) in results.iter().enumerate() {
        if id == 3 {
            match r {
                Err(JobError::Panicked(m)) => assert!(m.contains("poisoned job 3 exploded"), "got {m:?}"),
                other => panic!("expected a panic verdict, got {other:?}"),
            }
        } else {
            assert_eq!(*r, Ok(id as u64 * 10));
        }
    }
}

#[test]
fn panicked_jobs_are_never_cached() {
    let dir = temp_cache("no-cache-panic");
    let jobs = vec![Poisoned { id: 7, poison: true }];
    let e = engine(1, Some(dir.clone()));
    assert!(e.run_all(&jobs)[0].is_err());
    // The failure left nothing behind: a retry still executes (and fails).
    let e2 = engine(1, Some(dir.clone()));
    assert!(e2.run_all(&jobs)[0].is_err());
    assert_eq!(e2.stats().cache_hits, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_jobs_within_a_batch_run_once() {
    let dir = temp_cache("dedup");
    let entry = by_name("bzip2_like").expect("in catalog");
    let job = || SimJob {
        workload: entry.build(Variant::Base, Scale { n: 40, ..Scale::small() }),
        cfg: CoreConfig::default(),
        cycle_limit: 4_000_000,
    };
    let jobs = vec![job(), job(), job()];
    let e = engine(2, Some(dir.clone()));
    let results = e.run_all(&jobs);
    let a = SimJob::result_to_json(results[0].as_ref().expect("runs"));
    let b = SimJob::result_to_json(results[2].as_ref().expect("runs"));
    assert_eq!(a, b);
    assert_eq!(e.stats().executed, 1);
    assert_eq!(e.stats().deduped, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cycle_budget_times_out_simulations_deterministically() {
    let jobs = sim_jobs(small_scale());
    let e = Engine::new(ExecConfig {
        use_cache: false,
        policy: RetryPolicy { timeout_cycles: 100, ..RetryPolicy::default() },
        ..ExecConfig::default()
    });
    for r in e.run_all(&jobs) {
        match r {
            Err(JobError::Timeout { budget_cycles }) => assert_eq!(budget_cycles, 100),
            other => panic!("expected a timeout verdict, got {other:?}"),
        }
    }
    assert_eq!(e.stats().timeout, jobs.len() as u64);
    assert_eq!(e.stats().failed, jobs.len() as u64);

    // A roomy budget changes nothing: results match the unbudgeted run.
    let roomy = Engine::new(ExecConfig {
        use_cache: false,
        policy: RetryPolicy { timeout_cycles: 100_000_000, ..RetryPolicy::default() },
        ..ExecConfig::default()
    });
    let unbudgeted = engine(1, None);
    assert_eq!(transcript(&roomy, &jobs), transcript(&unbudgeted, &jobs));
}

#[test]
fn cache_files_live_under_the_fingerprint_name() {
    let dir = temp_cache("layout");
    let entry = by_name("bzip2_like").expect("in catalog");
    let job = SimJob {
        workload: entry.build(Variant::Base, Scale { n: 40, ..Scale::small() }),
        cfg: CoreConfig::default(),
        cycle_limit: 4_000_000,
    };
    let e = engine(1, Some(dir.clone()));
    e.run_all(std::slice::from_ref(&job))[0].as_ref().expect("runs");
    let path = dir.join(format!("{}.json", job.fingerprint().hex()));
    assert!(path.is_file(), "missing {}", path.display());

    // And the entry is loadable through the public cache API.
    let cache = DiskCache::new(&dir);
    assert!(cache.load("sim", job.fingerprint()).is_some());
    assert!(cache.load("other-kind", job.fingerprint()).is_none(), "kind mismatch must miss");
    let _ = std::fs::remove_dir_all(&dir);
}
