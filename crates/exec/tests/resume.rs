//! Crash-safety contracts of the journalled engine: a resumed campaign
//! replays durable results instead of re-executing, resuming twice is
//! idempotent, a partially-complete cache heals by re-running only the
//! missing jobs (byte-identically, at any worker count), and the
//! quarantine ledger keeps poisoning jobs out of resumed campaigns.

use cfd_core::CoreConfig;
use cfd_exec::{CampaignJob, Engine, ExecConfig, Fingerprint, Hasher, JobError, Json, RetryPolicy, SimJob};
use cfd_workloads::{by_name, Scale, Variant};
use std::path::{Path, PathBuf};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfd-resume-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(jobs: usize, dir: &Path, resume: bool) -> Engine {
    Engine::new(ExecConfig { jobs, use_cache: true, cache_dir: dir.to_path_buf(), resume, ..ExecConfig::default() })
}

fn sim_jobs() -> Vec<SimJob> {
    let cfg = CoreConfig::default();
    let mut jobs = Vec::new();
    for name in ["soplex_ref_like", "astar_r1_like", "bzip2_like"] {
        let entry = by_name(name).expect("in catalog");
        for v in [Variant::Base, Variant::Cfd] {
            jobs.push(SimJob {
                workload: entry.build(v, Scale { n: 40, ..Scale::small() }),
                cfg: cfg.clone(),
                cycle_limit: 4_000_000,
            });
        }
    }
    jobs
}

fn transcript(engine: &Engine, jobs: &[SimJob]) -> String {
    engine
        .run_all(jobs)
        .into_iter()
        .map(|r| SimJob::result_to_json(&r.expect("catalog sims succeed")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn resuming_a_complete_campaign_executes_nothing_twice() {
    let dir = temp_cache("idempotent");
    let jobs = sim_jobs();
    let first = engine(1, &dir, false);
    let expected = transcript(&first, &jobs);
    assert_eq!(first.stats().executed, jobs.len() as u64);

    // First resume: everything is durable, nothing runs.
    let resumed = engine(1, &dir, true);
    assert_eq!(transcript(&resumed, &jobs), expected);
    assert_eq!(resumed.stats().executed, 0, "resume must replay, not re-run");
    assert_eq!(resumed.stats().cache_hits, jobs.len() as u64);

    // Second resume: idempotent — still nothing to do.
    let again = engine(1, &dir, true);
    assert_eq!(transcript(&again, &jobs), expected);
    assert_eq!(again.stats().executed, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_campaign_resumes_byte_identically_across_worker_counts() {
    let jobs = sim_jobs();

    // The uninterrupted serial reference.
    let ref_dir = temp_cache("uninterrupted");
    let expected = transcript(&engine(1, &ref_dir, false), &jobs);

    // "Crash" after the first half: only those results are durable.
    let dir = temp_cache("interrupted");
    let half = jobs.len() / 2;
    let killed = engine(1, &dir, false);
    let _ = killed.run_all(&jobs[..half]);
    assert_eq!(killed.stats().executed, half as u64);

    // Resume the full campaign on four workers: the durable half replays
    // from the cache, the rest executes, and the bytes match the serial
    // uninterrupted run exactly.
    let resumed = engine(4, &dir, true);
    assert_eq!(transcript(&resumed, &jobs), expected);
    assert_eq!(resumed.stats().cache_hits, half as u64);
    assert_eq!(resumed.stats().executed, (jobs.len() - half) as u64);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_lives_under_the_cache_journal_dir() {
    let dir = temp_cache("wal-layout");
    let jobs = sim_jobs();
    let e = engine(1, &dir, false);
    let _ = e.run_all(&jobs);
    let wals: Vec<_> = std::fs::read_dir(dir.join("journal"))
        .expect("journal dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("wal"))
        .collect();
    assert_eq!(wals.len(), 1, "one campaign, one WAL: {wals:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job that always panics, to exercise strikes and quarantine.
struct AlwaysPanics {
    id: u64,
}

impl CampaignJob for AlwaysPanics {
    type Output = u64;

    fn kind(&self) -> &'static str {
        "always-panics"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("id", &self.id.to_le_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("always-panics {}", self.id)
    }

    fn execute(&self) -> u64 {
        panic!("job {} always explodes", self.id)
    }

    fn result_to_json(out: &u64) -> String {
        format!("{{\"value\":{out}}}")
    }

    fn result_from_json(&self, v: &Json) -> Option<u64> {
        v.get("value")?.as_u64()
    }
}

#[test]
fn quarantine_ledger_skips_poisoned_jobs_on_resume() {
    let dir = temp_cache("quarantine");
    let jobs = vec![AlwaysPanics { id: 9 }];
    let policy = RetryPolicy::bounded(1, 0);

    // First run: initial attempt + one retry both fail, which promotes
    // the job into the journal's quarantine ledger.
    let first = Engine::new(ExecConfig { use_cache: true, cache_dir: dir.clone(), policy, ..ExecConfig::default() });
    assert!(matches!(first.run_all(&jobs)[0], Err(JobError::Panicked(_))));
    assert_eq!(first.stats().retried, 1);
    assert_eq!(first.stats().failed, 1);

    // Resume: the ledger is consulted and the job never runs again.
    let resumed = Engine::new(ExecConfig {
        use_cache: true,
        cache_dir: dir.clone(),
        policy,
        resume: true,
        ..ExecConfig::default()
    });
    match &resumed.run_all(&jobs)[0] {
        Err(JobError::Quarantined { strikes }) => assert!(*strikes >= 2, "got {strikes} strikes"),
        other => panic!("expected a quarantine verdict, got {other:?}"),
    }
    assert_eq!(resumed.stats().executed, 0, "quarantined jobs must not execute");
    assert_eq!(resumed.stats().quarantined, 1);

    let _ = std::fs::remove_dir_all(&dir);
}
