//! Pure instruction semantics shared by the functional and timing simulators.
//!
//! Both simulators must compute identical values — the timing simulator is
//! execute-at-execute — so the arithmetic lives here in one place.

use crate::instr::{AluOp, BranchCond};

/// Evaluates an ALU operation on two 64-bit operands.
///
/// Division and remainder by zero yield 0 (the ISA is exception-free).
/// Shift amounts are masked to 6 bits.
///
/// # Examples
///
/// ```
/// use cfd_isa::{eval_alu, AluOp};
/// assert_eq!(eval_alu(AluOp::Add, 2, 3), 5);
/// assert_eq!(eval_alu(AluOp::Div, 7, 0), 0);
/// assert_eq!(eval_alu(AluOp::Slt, -1, 0), 1);
/// ```
pub fn eval_alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => (a < b) as i64,
        AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
        AluOp::Seq => (a == b) as i64,
        AluOp::Sne => (a != b) as i64,
        AluOp::Sge => (a >= b) as i64,
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

/// Evaluates a branch condition on two 64-bit operands.
///
/// # Examples
///
/// ```
/// use cfd_isa::{eval_branch, BranchCond};
/// assert!(eval_branch(BranchCond::Lt, -5, 0));
/// assert!(!eval_branch(BranchCond::Ltu, -5, 0)); // unsigned: huge value
/// ```
pub fn eval_branch(cond: BranchCond, a: i64, b: i64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => a < b,
        BranchCond::Ge => a >= b,
        BranchCond::Ltu => (a as u64) < (b as u64),
        BranchCond::Geu => (a as u64) >= (b as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(eval_alu(AluOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(eval_alu(AluOp::Mul, i64::MAX, 2), -2);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_alu(AluOp::Div, 42, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, 42, 0), 0);
        // i64::MIN / -1 must not trap either.
        assert_eq!(eval_alu(AluOp::Div, i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(eval_alu(AluOp::Sll, 1, 64), 1); // 64 & 63 == 0
        assert_eq!(eval_alu(AluOp::Srl, -1, 63), 1);
        assert_eq!(eval_alu(AluOp::Sra, -8, 2), -2);
    }

    #[test]
    fn set_ops_produce_zero_one() {
        assert_eq!(eval_alu(AluOp::Seq, 3, 3), 1);
        assert_eq!(eval_alu(AluOp::Sne, 3, 3), 0);
        assert_eq!(eval_alu(AluOp::Sge, 3, 4), 0);
        assert_eq!(eval_alu(AluOp::Sltu, -1, 1), 0);
    }

    #[test]
    fn min_max() {
        assert_eq!(eval_alu(AluOp::Min, -3, 7), -3);
        assert_eq!(eval_alu(AluOp::Max, -3, 7), 7);
    }

    #[test]
    fn branch_conditions() {
        assert!(eval_branch(BranchCond::Eq, 1, 1));
        assert!(eval_branch(BranchCond::Ne, 1, 2));
        assert!(eval_branch(BranchCond::Ge, 2, 2));
        assert!(eval_branch(BranchCond::Geu, -1, 1));
    }
}
