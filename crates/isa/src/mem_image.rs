//! Sparse byte-addressable data memory image.
//!
//! The machine's data memory is a 64-bit byte-addressable space backed by
//! 4 KiB pages allocated on first write. Reads of unmapped memory return
//! zero without allocating, which keeps wrong-path execution in the timing
//! simulator exception-free (the paper's substrate likewise never faults in
//! the simulated regions).

use crate::instr::MemWidth;
use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse, paged data memory.
///
/// # Examples
///
/// ```
/// use cfd_isa::{MemImage, MemWidth};
/// let mut m = MemImage::new();
/// m.write(0x1000, 0x1234_5678, MemWidth::B4);
/// assert_eq!(m.read(0x1000, MemWidth::B4, false), 0x1234_5678);
/// assert_eq!(m.read(0xdead_0000, MemWidth::B8, false), 0); // unmapped
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MemImage {
    /// Creates an empty memory image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    #[inline]
    fn read_byte(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    #[inline]
    fn write_byte(&mut self, addr: u64, val: u8) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads `width` bytes, little-endian, zero- or sign-extended to `i64`.
    pub fn read(&self, addr: u64, width: MemWidth, signed: bool) -> i64 {
        let n = width.bytes();
        let mut v: u64 = 0;
        for i in 0..n {
            v |= (self.read_byte(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        if signed {
            let shift = 64 - 8 * n as u32;
            ((v << shift) as i64) >> shift
        } else {
            v as i64
        }
    }

    /// Writes the low `width` bytes of `val`, little-endian.
    pub fn write(&mut self, addr: u64, val: i64, width: MemWidth) {
        let n = width.bytes();
        let v = val as u64;
        for i in 0..n {
            self.write_byte(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Reads an unsigned 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, MemWidth::B8, false) as u64
    }

    /// Writes a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write(addr, val as i64, MemWidth::B8);
    }

    /// Reads a signed 32-bit word.
    pub fn read_i32(&self, addr: u64) -> i32 {
        self.read(addr, MemWidth::B4, true) as i32
    }

    /// Writes a 32-bit word.
    pub fn write_i32(&mut self, addr: u64, val: i32) {
        self.write(addr, val as i64, MemWidth::B4);
    }

    /// Whether the page containing `addr` has been written.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr >> PAGE_SHIFT))
    }

    /// Number of mapped 4 KiB pages (the footprint).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_byte(addr + i as u64)).collect()
    }

    /// A stable, content-complete byte serialization of the image, for
    /// content-addressed fingerprinting (`cfd-exec`).
    ///
    /// Pages are emitted in ascending page-index order (the backing
    /// `HashMap`'s iteration order never leaks), each as its little-endian
    /// index followed by its 4 KiB payload. Two images with the same
    /// mapped content serialize identically regardless of write order;
    /// note an explicitly written all-zero page *is* content (it differs
    /// from an unmapped page here even though reads cannot tell them
    /// apart).
    pub fn stable_bytes(&self) -> Vec<u8> {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        let mut out = Vec::with_capacity(indices.len() * (PAGE_SIZE + 8));
        for idx in indices {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&self.pages[&idx][..]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero_and_do_not_allocate() {
        let m = MemImage::new();
        assert_eq!(m.read(0x5000, MemWidth::B8, false), 0);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn widths_and_sign_extension() {
        let mut m = MemImage::new();
        m.write(0x100, -1, MemWidth::B1);
        assert_eq!(m.read(0x100, MemWidth::B1, false), 0xff);
        assert_eq!(m.read(0x100, MemWidth::B1, true), -1);
        m.write(0x200, -2, MemWidth::B4);
        assert_eq!(m.read(0x200, MemWidth::B4, true), -2);
        assert_eq!(m.read(0x200, MemWidth::B4, false), 0xffff_fffe);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MemImage::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles a page boundary
        m.write(addr, 0x1122_3344_5566_7788, MemWidth::B8);
        assert_eq!(m.read(addr, MemWidth::B8, false), 0x1122_3344_5566_7788);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn byte_slice_roundtrip() {
        let mut m = MemImage::new();
        m.write_bytes(0x3000, b"hello");
        assert_eq!(m.read_bytes(0x3000, 5), b"hello");
    }

    #[test]
    fn stable_bytes_independent_of_write_order() {
        let mut a = MemImage::new();
        a.write_u64(0x1000, 7);
        a.write_u64(0x9000, 9);
        let mut b = MemImage::new();
        b.write_u64(0x9000, 9);
        b.write_u64(0x1000, 7);
        assert_eq!(a.stable_bytes(), b.stable_bytes());
        b.write_u64(0x1000, 8);
        assert_ne!(a.stable_bytes(), b.stable_bytes());
        // Two pages: 2 * (8-byte index + 4 KiB payload).
        assert_eq!(a.stable_bytes().len(), 2 * (8 + 4096));
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new();
        m.write(0x10, 0x0102_0304, MemWidth::B4);
        assert_eq!(m.read(0x10, MemWidth::B1, false), 0x04);
        assert_eq!(m.read(0x13, MemWidth::B1, false), 0x01);
    }
}
