//! Text-format assembler: parses the format [`Program::disassemble`]
//! produces, closing the round trip (useful for golden files, hand-written
//! kernels, and debugging dumps).
//!
//! Grammar (one item per line; `;` starts a comment):
//!
//! ```text
//! label:                     ; defines `label` at the next instruction
//!   Add r3, r1, 4            ; ALU ops use their canonical names
//!   li r1, 5
//!   l8 r4, 0(r7)             ; loads: l{1,2,4,8}[s]; stores: s{1,2,4,8}
//!   bLt r1, r2, @7           ; targets: @<pc> or a label name
//!   branch_on_bq skip
//!   push_bq r6
//!   halt
//! ```
//!
//! Leading PC numbers (as emitted by the disassembler) are ignored.

use crate::instr::{AluOp, BranchCond, Instr, MemWidth, Src2};
use crate::program::{AsmError, Assembler, Program};
use crate::reg::{Reg, NUM_REGS};
use std::fmt;

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError { line: 0, message: e.to_string() }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let idx: usize = t
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected a register, got `{t}`")))?;
    if idx >= NUM_REGS {
        return Err(err(line, format!("register index {idx} out of range")));
    }
    Ok(Reg::new(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    t.parse().map_err(|_| err(line, format!("expected an immediate, got `{t}`")))
}

/// Register or immediate.
fn parse_src2(tok: &str, line: usize) -> Result<Src2, ParseError> {
    let t = tok.trim();
    if t.starts_with('r') && t[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Src2::Reg(parse_reg(t, line)?))
    } else {
        Ok(Src2::Imm(parse_imm(t, line)?))
    }
}

/// `offset(base)` addressing.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| err(line, format!("expected `offset(base)`, got `{t}`")))?;
    let close = t.rfind(')').ok_or_else(|| err(line, "missing `)`"))?;
    let offset = parse_imm(&t[..open], line)?;
    let base = parse_reg(&t[open + 1..close], line)?;
    Ok((offset, base))
}

fn alu_op(name: &str) -> Option<AluOp> {
    let ops = [
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("mul", AluOp::Mul),
        ("div", AluOp::Div),
        ("rem", AluOp::Rem),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
        ("sll", AluOp::Sll),
        ("srl", AluOp::Srl),
        ("sra", AluOp::Sra),
        ("slt", AluOp::Slt),
        ("sltu", AluOp::Sltu),
        ("seq", AluOp::Seq),
        ("sne", AluOp::Sne),
        ("sge", AluOp::Sge),
        ("min", AluOp::Min),
        ("max", AluOp::Max),
    ];
    let lower = name.to_ascii_lowercase();
    ops.iter().find(|(n, _)| *n == lower).map(|(_, op)| *op)
}

fn branch_cond(name: &str) -> Option<BranchCond> {
    match name.to_ascii_lowercase().as_str() {
        "beq" => Some(BranchCond::Eq),
        "bne" => Some(BranchCond::Ne),
        "blt" => Some(BranchCond::Lt),
        "bge" => Some(BranchCond::Ge),
        "bltu" => Some(BranchCond::Ltu),
        "bgeu" => Some(BranchCond::Geu),
        _ => None,
    }
}

/// A branch target: `@12` resolves immediately; anything else is a label.
enum Target {
    Absolute(u32),
    Label(String),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, ParseError> {
    let t = tok.trim();
    if let Some(n) = t.strip_prefix('@') {
        n.parse().map(Target::Absolute).map_err(|_| err(line, format!("bad absolute target `{t}`")))
    } else if !t.is_empty() {
        Ok(Target::Label(t.to_string()))
    } else {
        Err(err(line, "missing branch target"))
    }
}

/// Parses assembler text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line, or a wrapped
/// [`AsmError`] for undefined/duplicate labels.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    // Pre-scan: which instruction indices are referenced by absolute `@n`
    // targets? Synthetic labels are defined for them during the main pass.
    let mut abs_targets: Vec<u32> = Vec::new();
    for raw_line in text.lines() {
        let code = raw_line.split(';').next().unwrap_or("");
        for tok in code.split_whitespace() {
            if let Some(n) = tok.trim_matches(',').strip_prefix('@') {
                if let Ok(v) = n.parse::<u32>() {
                    abs_targets.push(v);
                }
            }
        }
    }
    abs_targets.sort_unstable();
    abs_targets.dedup();

    let mut a = Assembler::new();
    let emit_target = |t: Target| -> String {
        match t {
            Target::Label(l) => l,
            Target::Absolute(n) => format!("@abs{n}"),
        }
    };
    let define_abs = |a: &mut Assembler, abs_targets: &[u32]| {
        if abs_targets.binary_search(&a.here()).is_ok() {
            let l = format!("@abs{}", a.here());
            a.label(&l);
        }
    };

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut code = raw_line;
        if let Some(semi) = code.find(';') {
            code = &code[..semi];
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        if let Some(label) = code.strip_suffix(':') {
            if label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            a.label(label.trim());
            continue;
        }
        // This line emits exactly one instruction: define a synthetic label
        // here if an absolute target points at this index.
        define_abs(&mut a, &abs_targets);
        // Strip a leading PC number (disassembler output).
        let mut tokens: Vec<&str> = code.split_whitespace().collect();
        if tokens[0].chars().all(|c| c.is_ascii_digit()) {
            tokens.remove(0);
            if tokens.is_empty() {
                return Err(err(line, "pc number without an instruction"));
            }
        }
        let mnemonic = tokens[0];
        let rest = tokens[1..].join(" ");
        let args: Vec<&str> = if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let need = |n: usize| -> Result<(), ParseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", args.len())))
            }
        };

        if let Some(op) = alu_op(mnemonic) {
            need(3)?;
            a.alu(op, parse_reg(args[0], line)?, parse_reg(args[1], line)?, parse_src2(args[2], line)?);
        } else if let Some(cond) = branch_cond(mnemonic) {
            need(3)?;
            let (rs1, rs2) = (parse_reg(args[0], line)?, parse_reg(args[1], line)?);
            let label = emit_target(parse_target(args[2], line)?);
            a.branch(cond, rs1, rs2, &label);
        } else {
            match mnemonic.to_ascii_lowercase().as_str() {
                "li" => {
                    need(2)?;
                    a.li(parse_reg(args[0], line)?, parse_imm(args[1], line)?);
                }
                m @ ("l1" | "l2" | "l4" | "l8" | "l1s" | "l2s" | "l4s" | "l8s") => {
                    need(2)?;
                    let width = match &m[1..2] {
                        "1" => MemWidth::B1,
                        "2" => MemWidth::B2,
                        "4" => MemWidth::B4,
                        _ => MemWidth::B8,
                    };
                    let signed = m.ends_with('s');
                    let (offset, base) = parse_mem_operand(args[1], line)?;
                    a.load(parse_reg(args[0], line)?, offset, base, width, signed);
                }
                m @ ("s1" | "s2" | "s4" | "s8") => {
                    need(2)?;
                    let width = match &m[1..2] {
                        "1" => MemWidth::B1,
                        "2" => MemWidth::B2,
                        "4" => MemWidth::B4,
                        _ => MemWidth::B8,
                    };
                    let (offset, base) = parse_mem_operand(args[1], line)?;
                    let src = parse_reg(args[0], line)?;
                    a.raw(Instr::Store { src, base, offset, width });
                }
                "prefetch" => {
                    need(1)?;
                    let (offset, base) = parse_mem_operand(args[0], line)?;
                    a.prefetch(offset, base);
                }
                "j" => {
                    need(1)?;
                    let label = emit_target(parse_target(args[0], line)?);
                    a.j(&label);
                }
                "jal" => {
                    need(2)?;
                    let rd = parse_reg(args[0], line)?;
                    let label = emit_target(parse_target(args[1], line)?);
                    a.jal(rd, &label);
                }
                "jr" => {
                    need(1)?;
                    a.jr(parse_reg(args[0], line)?);
                }
                "push_bq" => {
                    need(1)?;
                    a.push_bq(parse_reg(args[0], line)?);
                }
                "branch_on_bq" => {
                    need(1)?;
                    let label = emit_target(parse_target(args[0], line)?);
                    a.branch_on_bq(&label);
                }
                "mark_bq" => {
                    need(0)?;
                    a.mark_bq();
                }
                "forward_bq" => {
                    need(0)?;
                    a.forward_bq();
                }
                "push_vq" => {
                    need(1)?;
                    a.push_vq(parse_reg(args[0], line)?);
                }
                "pop_vq" => {
                    need(1)?;
                    a.pop_vq(parse_reg(args[0], line)?);
                }
                "push_tq" => {
                    need(1)?;
                    a.push_tq(parse_reg(args[0], line)?);
                }
                "pop_tq" => {
                    need(0)?;
                    a.pop_tq();
                }
                "branch_on_tcr" => {
                    need(1)?;
                    let label = emit_target(parse_target(args[0], line)?);
                    a.branch_on_tcr(&label);
                }
                "pop_tq_brovf" => {
                    need(1)?;
                    let label = emit_target(parse_target(args[0], line)?);
                    a.pop_tq_brovf(&label);
                }
                "save_bq" | "restore_bq" | "save_vq" | "restore_vq" | "save_tq" | "restore_tq" => {
                    need(1)?;
                    let (offset, base) = parse_mem_operand(args[0], line)?;
                    match mnemonic {
                        "save_bq" => a.save_bq(offset, base),
                        "restore_bq" => a.restore_bq(offset, base),
                        "save_vq" => a.save_vq(offset, base),
                        "restore_vq" => a.restore_vq(offset, base),
                        "save_tq" => a.save_tq(offset, base),
                        _ => a.restore_tq(offset, base),
                    };
                }
                "nop" => {
                    need(0)?;
                    a.nop();
                }
                "halt" => {
                    need(0)?;
                    a.halt();
                }
                other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
            }
        }
    }
    // Absolute targets may point one past the last instruction.
    define_abs(&mut a, &abs_targets);
    Ok(a.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Machine;
    use crate::MemImage;

    #[test]
    fn parses_simple_program() {
        let p = parse_program(
            "
            ; sum 0..9
              li r2, 10
            loop:
              Add r3, r3, r1
              Add r1, r1, 1
              bLt r1, r2, loop
              halt
            ",
        )
        .unwrap();
        let mut m = Machine::new(p, MemImage::new());
        m.run_to_halt().unwrap();
        assert_eq!(m.regs.read(Reg::new(3)), 45);
    }

    #[test]
    fn parses_memory_and_cfd_ops() {
        let p = parse_program(
            "
              li r1, 4096
              li r2, 7
              s8 r2, 0(r1)
              l8 r3, 0(r1)
              push_bq r3
              branch_on_bq skip
              Add r4, r4, 1
            skip:
              halt
            ",
        )
        .unwrap();
        let mut m = Machine::new(p, MemImage::new());
        m.run_to_halt().unwrap();
        assert_eq!(m.regs.read(Reg::new(3)), 7);
        assert_eq!(m.regs.read(Reg::new(4)), 1, "predicate true -> CD executes");
    }

    #[test]
    fn roundtrips_disassembly() {
        // Build with the builder, disassemble, reparse: same instructions.
        let mut a = Assembler::new();
        let r = Reg::new;
        a.li(r(2), 50);
        a.label("top");
        a.sll(r(4), r(1), 3i64);
        a.add(r(4), r(4), r(3));
        a.ld(r(5), 0, r(4));
        a.slt(r(6), r(5), 25i64);
        a.push_bq(r(6));
        a.branch_on_bq("skip");
        a.add(r(7), r(7), r(5));
        a.label("skip");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "top");
        a.halt();
        let original = a.finish().unwrap();
        let reparsed = parse_program(&original.disassemble()).unwrap();
        assert_eq!(reparsed.instrs(), original.instrs());
    }

    #[test]
    fn roundtrips_tq_kernel() {
        let mut a = Assembler::new();
        let r = Reg::new;
        a.li(r(1), 3);
        a.push_tq(r(1));
        a.pop_tq();
        a.j("test");
        a.label("body");
        a.addi(r(2), r(2), 1);
        a.label("test");
        a.branch_on_tcr("body");
        a.halt();
        let original = a.finish().unwrap();
        let reparsed = parse_program(&original.disassemble()).unwrap();
        assert_eq!(reparsed.instrs(), original.instrs());
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = parse_program("  li r1, 1\n  frobnicate r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_bad_register() {
        let e = parse_program("  li r99, 1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn reports_operand_count() {
        let e = parse_program("  Add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn absolute_targets_with_tab_separators() {
        // The @N pre-scan must see targets regardless of the whitespace
        // style (tabs, multiple spaces, trailing commas).
        let p = parse_program("\tli r1, 5\n\tbeq\tr0, r0,\t@3\n\tli r2, 9\n\thalt\n").unwrap();
        let mut m = Machine::new(p, MemImage::new());
        m.run_to_halt().unwrap();
        // The branch at pc 1 jumps over `li r2, 9`.
        assert_eq!(m.regs.read(Reg::new(2)), 0);
        assert_eq!(m.regs.read(Reg::new(1)), 5);
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = parse_program("  j nowhere\n  halt\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn loads_and_stores_with_widths() {
        let p = parse_program(
            "
              li r1, 8192
              li r2, -1
              s1 r2, 0(r1)
              l1 r3, 0(r1)
              l1s r4, 0(r1)
              halt
            ",
        )
        .unwrap();
        let mut m = Machine::new(p, MemImage::new());
        m.run_to_halt().unwrap();
        assert_eq!(m.regs.read(Reg::new(3)), 0xff);
        assert_eq!(m.regs.read(Reg::new(4)), -1);
    }
}
