//! Instruction set definition, including the CFD extension.
//!
//! The base ISA is a small load/store RISC machine (think stripped-down
//! Alpha/RISC-V): ALU register/immediate operations, loads/stores of 1/2/4/8
//! bytes, compare-and-branch, and direct/indirect jumps.
//!
//! The **CFD extension** adds the architectural queues of the paper:
//!
//! * [`Instr::PushBq`] / [`Instr::BranchOnBq`] — the Branch Queue (§III),
//! * [`Instr::MarkBq`] / [`Instr::ForwardBq`] — bulk-pop for nested breaks (§IV-A),
//! * [`Instr::PushVq`] / [`Instr::PopVq`] — the Value Queue (§IV-B),
//! * [`Instr::PushTq`] / [`Instr::PopTq`] / [`Instr::BranchOnTcr`] — the
//!   Trip-count Queue and trip-count register (§IV-C),
//! * [`Instr::PopTqBrOvf`] — the overflow-tolerant pop (§IV-C4),
//! * save/restore instructions for context switches (§III-A).

use crate::reg::Reg;
use std::fmt;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero yields 0 (non-faulting, like Alpha's
    /// software convention — keeps the simulators exception-free).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right (shift amount masked to 6 bits).
    Srl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Sra,
    /// Set if less-than, signed: `rd = (a < b) as i64`.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    /// Set if greater-or-equal, signed.
    Sge,
    /// Signed minimum (used by kernels that clamp).
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Whether this operation uses the long-latency complex ALU
    /// (multiply/divide pipe) in the timing model.
    pub fn is_complex(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Conditions for compare-and-branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less-than, signed.
    Lt,
    /// Branch if greater-or-equal, signed.
    Ge,
    /// Branch if less-than, unsigned.
    Ltu,
    /// Branch if greater-or-equal, unsigned.
    Geu,
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// The second source operand of an ALU instruction: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src2 {
    /// A register operand.
    Reg(Reg),
    /// A sign-extended immediate operand.
    Imm(i64),
}

impl From<Reg> for Src2 {
    fn from(r: Reg) -> Src2 {
        Src2::Reg(r)
    }
}

impl From<i64> for Src2 {
    fn from(v: i64) -> Src2 {
        Src2::Imm(v)
    }
}

impl fmt::Display for Src2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src2::Reg(r) => write!(f, "{r}"),
            Src2::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A single instruction.
///
/// Branch/jump targets are absolute instruction indices into the containing
/// [`Program`](crate::Program); the assembler resolves symbolic labels into
/// these indices. "PC" throughout this crate means an instruction index, not
/// a byte address (the timing model charges I-fetch per instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = alu_op(rs1, src2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        src2: Src2,
    },
    /// `rd = imm` (load immediate).
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = zero_extend(mem[rs(base) + offset])`; `signed` sign-extends.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// `mem[rs(base) + offset] = src` (low `width` bytes).
    Store {
        /// Source register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Non-binding, non-faulting software prefetch of `mem[base + offset]`.
    Prefetch {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch: if `cond(rs1, rs2)` jump to `target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparison source.
        rs1: Reg,
        /// Second comparison source.
        rs2: Reg,
        /// Taken-target instruction index.
        target: u32,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Jump-and-link: `rd = pc + 1; pc = target`.
    Jal {
        /// Link register.
        rd: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Indirect jump: `pc = rs` (used for returns).
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// CFD: push `(rs != 0)` as a predicate onto the Branch Queue.
    PushBq {
        /// Source register; non-zero pushes predicate 1.
        rs: Reg,
    },
    /// CFD: pop a predicate from the Branch Queue; **branch to `target` when
    /// the predicate is 0** (skip-if-false idiom), fall through when it is 1.
    BranchOnBq {
        /// Taken-target instruction index (the skip label).
        target: u32,
    },
    /// CFD: mark the current Branch Queue tail (§IV-A).
    MarkBq,
    /// CFD: bulk-pop the Branch Queue through to the most recent mark (§IV-A).
    ForwardBq,
    /// CFD: push the value of `rs` onto the Value Queue.
    PushVq {
        /// Source register.
        rs: Reg,
    },
    /// CFD: pop the Value Queue head into `rd`.
    PopVq {
        /// Destination register.
        rd: Reg,
    },
    /// CFD: push a trip-count (low 32 bits of `rs`, clamped at 0) onto the
    /// Trip-count Queue. Sets the entry's overflow bit when the count does
    /// not fit in the architected trip-count width (§IV-C4).
    PushTq {
        /// Source register holding the trip-count.
        rs: Reg,
    },
    /// CFD: pop the Trip-count Queue head into the Trip-Count Register.
    PopTq,
    /// CFD: if `TCR != 0`, decrement it and branch to `target` (continue the
    /// loop); if `TCR == 0`, fall through (exit the loop).
    BranchOnTcr {
        /// Loop-top target instruction index.
        target: u32,
    },
    /// CFD: pop the Trip-count Queue head into the TCR and, when the popped
    /// entry's overflow bit is set, branch to `target` (the unmodified loop
    /// copy, §IV-C4).
    PopTqBrOvf {
        /// Overflow-handler target instruction index.
        target: u32,
    },
    /// Save the Branch Queue (length + predicates) to `mem[base + offset]`.
    SaveBq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Restore the Branch Queue from `mem[base + offset]`.
    RestoreBq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Save the Value Queue to `mem[base + offset]`.
    SaveVq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Restore the Value Queue from `mem[base + offset]`.
    RestoreVq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Save the Trip-count Queue (length + counts + overflow bits + TCR).
    SaveTq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Restore the Trip-count Queue.
    RestoreTq {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// No operation.
    Nop,
    /// Stop the machine; the program's observable state is final.
    Halt,
}

impl Instr {
    /// Whether the instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::BranchOnBq { .. }
                | Instr::BranchOnTcr { .. }
                | Instr::PopTqBrOvf { .. }
        )
    }

    /// Whether the instruction is a *conditional* control transfer whose
    /// direction the front end must know (predict or resolve) at fetch.
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::BranchOnBq { .. } | Instr::BranchOnTcr { .. } | Instr::PopTqBrOvf { .. }
        )
    }

    /// Whether this is a conventional (predictor-served) conditional branch.
    pub fn is_plain_conditional(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether the instruction belongs to the CFD ISA extension.
    pub fn is_cfd(&self) -> bool {
        matches!(
            self,
            Instr::PushBq { .. }
                | Instr::BranchOnBq { .. }
                | Instr::MarkBq
                | Instr::ForwardBq
                | Instr::PushVq { .. }
                | Instr::PopVq { .. }
                | Instr::PushTq { .. }
                | Instr::PopTq
                | Instr::BranchOnTcr { .. }
                | Instr::PopTqBrOvf { .. }
                | Instr::SaveBq { .. }
                | Instr::RestoreBq { .. }
                | Instr::SaveVq { .. }
                | Instr::RestoreVq { .. }
                | Instr::SaveTq { .. }
                | Instr::RestoreTq { .. }
        )
    }

    /// Whether the instruction reads or writes data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Prefetch { .. }
                | Instr::SaveBq { .. }
                | Instr::RestoreBq { .. }
                | Instr::SaveVq { .. }
                | Instr::RestoreVq { .. }
                | Instr::SaveTq { .. }
                | Instr::RestoreTq { .. }
        )
    }

    /// The taken-target instruction index, for direct control instructions.
    pub fn direct_target(&self) -> Option<u32> {
        match *self {
            Instr::Branch { target, .. }
            | Instr::Jump { target }
            | Instr::Jal { target, .. }
            | Instr::BranchOnBq { target }
            | Instr::BranchOnTcr { target }
            | Instr::PopTqBrOvf { target } => Some(target),
            _ => None,
        }
    }

    /// The destination architectural register written by this instruction.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::PopVq { rd } => (!rd.is_zero()).then_some(rd),
            _ => None,
        }
    }

    /// The architectural register sources read by this instruction
    /// (at most two; `r0` sources are included).
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Instr::Alu { rs1, src2, .. } => match src2 {
                Src2::Reg(rs2) => (Some(rs1), Some(rs2)),
                Src2::Imm(_) => (Some(rs1), None),
            },
            Instr::Li { .. } => (None, None),
            Instr::Load { base, .. } => (Some(base), None),
            Instr::Store { src, base, .. } => (Some(base), Some(src)),
            Instr::Prefetch { base, .. } => (Some(base), None),
            Instr::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instr::Jump { .. } | Instr::Jal { .. } => (None, None),
            Instr::Jr { rs } => (Some(rs), None),
            Instr::PushBq { rs } | Instr::PushVq { rs } | Instr::PushTq { rs } => (Some(rs), None),
            Instr::BranchOnBq { .. }
            | Instr::MarkBq
            | Instr::ForwardBq
            | Instr::PopVq { .. }
            | Instr::PopTq
            | Instr::BranchOnTcr { .. }
            | Instr::PopTqBrOvf { .. }
            | Instr::Nop
            | Instr::Halt => (None, None),
            Instr::SaveBq { base, .. }
            | Instr::RestoreBq { base, .. }
            | Instr::SaveVq { base, .. }
            | Instr::RestoreVq { base, .. }
            | Instr::SaveTq { base, .. }
            | Instr::RestoreTq { base, .. } => (Some(base), None),
        }
    }

    /// Per-instruction queue-effect metadata: which architectural CFD
    /// queue the instruction touches and how. `None` for non-CFD
    /// instructions. This is the single source of truth the static
    /// verifier (`cfd_analysis::lint_program`) keys its transfer
    /// functions on, so a new CFD instruction that forgets to declare
    /// its effect here fails the exhaustiveness check below.
    pub fn queue_op(&self) -> Option<QueueOp> {
        use QueueKind::*;
        use QueueOpKind::*;
        let (queue, op) = match self {
            Instr::PushBq { .. } => (Bq, Push),
            // `Branch_on_BQ` consumes one predicate per execution.
            Instr::BranchOnBq { .. } => (Bq, Pop),
            Instr::MarkBq => (Bq, Mark),
            Instr::ForwardBq => (Bq, Forward),
            Instr::PushVq { .. } => (Vq, Push),
            Instr::PopVq { .. } => (Vq, Pop),
            Instr::PushTq { .. } => (Tq, Push),
            // Both TQ pops load the trip-count register as a side effect.
            Instr::PopTq => (Tq, Pop),
            Instr::PopTqBrOvf { .. } => (Tq, Pop),
            // `Branch_on_TCR` reads/decrements TCR, not the queue proper.
            Instr::BranchOnTcr { .. } => (Tq, BranchTcr),
            Instr::SaveBq { .. } => (Bq, Save),
            Instr::RestoreBq { .. } => (Bq, Restore),
            Instr::SaveVq { .. } => (Vq, Save),
            Instr::RestoreVq { .. } => (Vq, Restore),
            Instr::SaveTq { .. } => (Tq, Save),
            Instr::RestoreTq { .. } => (Tq, Restore),
            _ => return None,
        };
        Some(QueueOp { queue, op })
    }
}

/// One of the three architectural CFD queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueueKind {
    /// The branch queue (predicates for `Branch_on_BQ`).
    Bq,
    /// The value queue (CFD+ communicated values).
    Vq,
    /// The trip-count queue (loop-branch trip counts).
    Tq,
}

impl QueueKind {
    /// Short lower-case name ("bq"/"vq"/"tq") for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::Bq => "bq",
            QueueKind::Vq => "vq",
            QueueKind::Tq => "tq",
        }
    }
}

/// What a CFD instruction does to its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOpKind {
    /// Appends one entry at the tail.
    Push,
    /// Consumes one entry from the head.
    Pop,
    /// Records the current tail position (BQ `Mark`).
    Mark,
    /// Bulk-pops every entry pushed before the mark (BQ `Forward`).
    Forward,
    /// Reads and decrements the trip-count register (no queue traffic).
    BranchTcr,
    /// Spills the queue contents to memory (context switch out).
    Save,
    /// Reloads the queue contents from memory (context switch in).
    Restore,
}

/// A queue-effect record: which queue, and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueOp {
    /// The queue operated on.
    pub queue: QueueKind,
    /// The operation performed.
    pub op: QueueOpKind,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, src2 } => write!(f, "{:?} {rd}, {rs1}, {src2}", op),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load { rd, base, offset, width, signed } => {
                write!(f, "l{}{} {rd}, {offset}({base})", width.bytes(), if signed { "s" } else { "" })
            }
            Instr::Store { src, base, offset, width } => write!(f, "s{} {src}, {offset}({base})", width.bytes()),
            Instr::Prefetch { base, offset } => write!(f, "prefetch {offset}({base})"),
            Instr::Branch { cond, rs1, rs2, target } => write!(f, "b{:?} {rs1}, {rs2}, @{target}", cond),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::PushBq { rs } => write!(f, "push_bq {rs}"),
            Instr::BranchOnBq { target } => write!(f, "branch_on_bq @{target}"),
            Instr::MarkBq => write!(f, "mark_bq"),
            Instr::ForwardBq => write!(f, "forward_bq"),
            Instr::PushVq { rs } => write!(f, "push_vq {rs}"),
            Instr::PopVq { rd } => write!(f, "pop_vq {rd}"),
            Instr::PushTq { rs } => write!(f, "push_tq {rs}"),
            Instr::PopTq => write!(f, "pop_tq"),
            Instr::BranchOnTcr { target } => write!(f, "branch_on_tcr @{target}"),
            Instr::PopTqBrOvf { target } => write!(f, "pop_tq_brovf @{target}"),
            Instr::SaveBq { base, offset } => write!(f, "save_bq {offset}({base})"),
            Instr::RestoreBq { base, offset } => write!(f, "restore_bq {offset}({base})"),
            Instr::SaveVq { base, offset } => write!(f, "save_vq {offset}({base})"),
            Instr::RestoreVq { base, offset } => write!(f, "restore_vq {offset}({base})"),
            Instr::SaveTq { base, offset } => write!(f, "save_tq {offset}({base})"),
            Instr::RestoreTq { base, offset } => write!(f, "restore_tq {offset}({base})"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_flags() {
        let b = Instr::Branch { cond: BranchCond::Eq, rs1: Reg::new(1), rs2: Reg::new(2), target: 7 };
        assert!(b.is_control() && b.is_conditional() && b.is_plain_conditional() && !b.is_cfd());

        let pop = Instr::BranchOnBq { target: 3 };
        assert!(pop.is_control() && pop.is_conditional() && !pop.is_plain_conditional() && pop.is_cfd());

        let push = Instr::PushBq { rs: Reg::new(4) };
        assert!(!push.is_control() && push.is_cfd());

        assert!(
            Instr::Load { rd: Reg::new(1), base: Reg::new(2), offset: 0, width: MemWidth::B8, signed: false }.is_mem()
        );
        assert!(Instr::SaveBq { base: Reg::new(2), offset: 0 }.is_mem());
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Alu { op: AluOp::Add, rd: Reg::new(3), rs1: Reg::new(1), src2: Src2::Reg(Reg::new(2)) };
        assert_eq!(i.dest(), Some(Reg::new(3)));
        assert_eq!(i.sources(), (Some(Reg::new(1)), Some(Reg::new(2))));

        // Writes to r0 are architectural no-ops and report no destination.
        let z = Instr::Li { rd: Reg::ZERO, imm: 5 };
        assert_eq!(z.dest(), None);

        let st = Instr::Store { src: Reg::new(5), base: Reg::new(6), offset: 8, width: MemWidth::B4 };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), (Some(Reg::new(6)), Some(Reg::new(5))));
    }

    #[test]
    fn direct_targets() {
        assert_eq!(Instr::Jump { target: 9 }.direct_target(), Some(9));
        assert_eq!(Instr::BranchOnTcr { target: 2 }.direct_target(), Some(2));
        assert_eq!(Instr::Jr { rs: Reg::new(1) }.direct_target(), None);
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Alu { op: AluOp::Add, rd: Reg::new(3), rs1: Reg::new(1), src2: Src2::Imm(4) };
        assert_eq!(i.to_string(), "Add r3, r1, 4");
        assert_eq!(Instr::BranchOnBq { target: 12 }.to_string(), "branch_on_bq @12");
    }

    #[test]
    fn queue_op_covers_exactly_the_cfd_extension() {
        let r = Reg::new(4);
        let samples = [
            Instr::Nop,
            Instr::Halt,
            Instr::Li { rd: r, imm: 1 },
            Instr::Branch { cond: BranchCond::Lt, rs1: r, rs2: r, target: 0 },
            Instr::Jump { target: 0 },
            Instr::Jr { rs: r },
            Instr::Load { rd: r, base: r, offset: 0, width: MemWidth::B8, signed: false },
            Instr::Store { src: r, base: r, offset: 0, width: MemWidth::B8 },
            Instr::PushBq { rs: r },
            Instr::BranchOnBq { target: 0 },
            Instr::MarkBq,
            Instr::ForwardBq,
            Instr::PushVq { rs: r },
            Instr::PopVq { rd: r },
            Instr::PushTq { rs: r },
            Instr::PopTq,
            Instr::BranchOnTcr { target: 0 },
            Instr::PopTqBrOvf { target: 0 },
            Instr::SaveBq { base: r, offset: 0 },
            Instr::RestoreBq { base: r, offset: 0 },
            Instr::SaveVq { base: r, offset: 0 },
            Instr::RestoreVq { base: r, offset: 0 },
            Instr::SaveTq { base: r, offset: 0 },
            Instr::RestoreTq { base: r, offset: 0 },
        ];
        for i in &samples {
            assert_eq!(i.queue_op().is_some(), i.is_cfd(), "queue_op/is_cfd disagree on {i}");
        }
        let pop = Instr::BranchOnBq { target: 0 }.queue_op().unwrap();
        assert_eq!((pop.queue, pop.op), (QueueKind::Bq, QueueOpKind::Pop));
        let ovf = Instr::PopTqBrOvf { target: 0 }.queue_op().unwrap();
        assert_eq!((ovf.queue, ovf.op), (QueueKind::Tq, QueueOpKind::Pop));
        assert_eq!(QueueKind::Tq.name(), "tq");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn complex_alu_ops() {
        assert!(AluOp::Mul.is_complex());
        assert!(AluOp::Div.is_complex());
        assert!(!AluOp::Add.is_complex());
    }
}
