//! Architectural queues of the CFD ISA extension.
//!
//! These types define the *ISA-visible* semantics of the Branch Queue (BQ),
//! Value Queue (VQ) and Trip-count Queue (TQ): FIFO contents, a length
//! register, and the push/pop ordering rules of §III-A. The functional
//! simulator executes directly on them; the timing simulator's fetch-resident
//! structures (`cfd-core`) implement the same contract and are property-tested
//! against these as the reference model.
//!
//! Per the paper, only the *length register* and entry contents are
//! architectural; head/tail indices are microarchitectural. We implement the
//! queues as circular buffers with absolute (monotonic) head/tail counters,
//! which also gives recovery snapshots a trivial representation.

use std::fmt;

/// Ordering-rule violations raised by queue operations.
///
/// A correct CFD program never triggers these: the ISA requires that N
/// consecutive pushes are followed by exactly N pops and that N never
/// exceeds the queue size (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// Push onto a full queue.
    Overflow,
    /// Pop from an empty queue.
    Underflow,
    /// `Forward` executed with no prior `Mark`.
    ForwardWithoutMark,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Overflow => write!(f, "queue overflow: push onto a full queue"),
            QueueError::Underflow => write!(f, "queue underflow: pop from an empty queue"),
            QueueError::ForwardWithoutMark => write!(f, "forward without a preceding mark"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A generic architectural FIFO with absolute head/tail counters.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ArchFifo<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Absolute index of the head entry (total pops so far).
    head: u64,
    /// Absolute index one past the tail entry (total pushes so far).
    tail: u64,
}

impl<T: Copy + Default> ArchFifo<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ArchFifo { buf: vec![T::default(); capacity], capacity, head: 0, tail: 0 }
    }

    fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    fn push(&mut self, v: T) -> Result<(), QueueError> {
        if self.len() == self.capacity {
            return Err(QueueError::Overflow);
        }
        let idx = (self.tail % self.capacity as u64) as usize;
        self.buf[idx] = v;
        self.tail += 1;
        Ok(())
    }

    fn pop(&mut self) -> Result<T, QueueError> {
        if self.len() == 0 {
            return Err(QueueError::Underflow);
        }
        let idx = (self.head % self.capacity as u64) as usize;
        self.head += 1;
        Ok(self.buf[idx])
    }

    fn peek(&self, n: usize) -> Option<T> {
        if n < self.len() {
            let idx = ((self.head + n as u64) % self.capacity as u64) as usize;
            Some(self.buf[idx])
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.head = 0;
        self.tail = 0;
    }

    fn contents(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.peek(i).unwrap()).collect()
    }
}

/// The architectural Branch Queue: a FIFO of taken/not-taken predicates with
/// a mark pointer for bulk pops (§III-A, §IV-A).
///
/// # Examples
///
/// ```
/// use cfd_isa::ArchBq;
/// let mut bq = ArchBq::new(128);
/// bq.push(true)?;
/// bq.push(false)?;
/// assert_eq!(bq.len(), 2);
/// assert_eq!(bq.pop()?, true);
/// # Ok::<(), cfd_isa::QueueError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchBq {
    fifo: ArchFifo<bool>,
    mark: Option<u64>,
}

impl ArchBq {
    /// Creates a BQ of the given capacity (the ISA's `size` parameter;
    /// 128 in the paper's evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ArchBq {
        ArchBq { fifo: ArchFifo::new(capacity), mark: None }
    }

    /// Capacity (`size` in the ISA specification).
    pub fn capacity(&self) -> usize {
        self.fifo.capacity
    }

    /// The length register: current occupancy.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a predicate at the tail.
    ///
    /// # Errors
    ///
    /// [`QueueError::Overflow`] when the queue is full.
    pub fn push(&mut self, predicate: bool) -> Result<(), QueueError> {
        self.fifo.push(predicate)
    }

    /// Pops the head predicate.
    ///
    /// # Errors
    ///
    /// [`QueueError::Underflow`] when the queue is empty.
    pub fn pop(&mut self) -> Result<bool, QueueError> {
        let v = self.fifo.pop()?;
        // A mark between old head and new head can no longer be forwarded to;
        // it stays valid only while at or ahead of the head.
        if let Some(m) = self.mark {
            if m < self.fifo.head {
                self.mark = Some(self.fifo.head);
            }
        }
        Ok(v)
    }

    /// Peeks the `n`-th predicate from the head without popping.
    pub fn peek(&self, n: usize) -> Option<bool> {
        self.fifo.peek(n)
    }

    /// `Mark`: records the current tail (the entry *following* the last
    /// pushed predicate). Consecutive marks simply overwrite.
    pub fn mark(&mut self) {
        self.mark = Some(self.fifo.tail);
    }

    /// `Forward`: bulk-pops through to the most recent mark, decrementing
    /// the length register by the number of discarded entries. Returns how
    /// many entries were popped.
    ///
    /// # Errors
    ///
    /// [`QueueError::ForwardWithoutMark`] when no mark has been set.
    pub fn forward(&mut self) -> Result<usize, QueueError> {
        let m = self.mark.ok_or(QueueError::ForwardWithoutMark)?;
        let skipped = m.saturating_sub(self.fifo.head) as usize;
        self.fifo.head = self.fifo.head.max(m);
        Ok(skipped)
    }

    /// The predicates currently in the queue, head first. Used by
    /// `Save_BQ` and by test oracles.
    pub fn contents(&self) -> Vec<bool> {
        self.fifo.contents()
    }

    /// Replaces the contents (head first), e.g. for `Restore_BQ`.
    ///
    /// # Panics
    ///
    /// Panics if `predicates.len()` exceeds the capacity.
    pub fn restore(&mut self, predicates: &[bool]) {
        assert!(predicates.len() <= self.capacity(), "restored BQ longer than its capacity");
        self.fifo.clear();
        self.mark = None;
        for &p in predicates {
            self.fifo.push(p).expect("capacity checked above");
        }
    }
}

/// The architectural Value Queue: a FIFO of register-width values (§IV-B).
///
/// The paper specifies 32-bit entries for its 32-bit substrate; our machine
/// has 64-bit registers so VQ entries are 64-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchVq {
    fifo: ArchFifo<i64>,
}

impl ArchVq {
    /// Creates a VQ of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ArchVq {
        ArchVq { fifo: ArchFifo::new(capacity) }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.fifo.capacity
    }

    /// The length register.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value at the tail.
    ///
    /// # Errors
    ///
    /// [`QueueError::Overflow`] when the queue is full.
    pub fn push(&mut self, value: i64) -> Result<(), QueueError> {
        self.fifo.push(value)
    }

    /// Pops the head value.
    ///
    /// # Errors
    ///
    /// [`QueueError::Underflow`] when the queue is empty.
    pub fn pop(&mut self) -> Result<i64, QueueError> {
        self.fifo.pop()
    }

    /// The values currently in the queue, head first.
    pub fn contents(&self) -> Vec<i64> {
        self.fifo.contents()
    }

    /// Replaces the contents (head first), e.g. for `Restore_VQ`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` exceeds the capacity.
    pub fn restore(&mut self, values: &[i64]) {
        assert!(values.len() <= self.capacity(), "restored VQ longer than its capacity");
        self.fifo.clear();
        for &v in values {
            self.fifo.push(v).expect("capacity checked above");
        }
    }
}

/// One Trip-count Queue entry: an N-bit trip-count plus the software-visible
/// overflow bit of §IV-C4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TqEntry {
    /// The trip-count (valid only when `overflow` is false).
    pub trip_count: u32,
    /// Set when the pushed count exceeded the architected maximum.
    pub overflow: bool,
}

/// The architectural Trip-count Queue and Trip-Count Register (§IV-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchTq {
    fifo: ArchFifo<TqEntry>,
    tcr: u32,
    trip_bits: u32,
}

impl ArchTq {
    /// Default architected trip-count width, in bits.
    pub const DEFAULT_TRIP_BITS: u32 = 16;

    /// Creates a TQ of the given capacity with [`Self::DEFAULT_TRIP_BITS`]
    /// trip-count entries (256 entries in the paper's evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ArchTq {
        ArchTq::with_trip_bits(capacity, Self::DEFAULT_TRIP_BITS)
    }

    /// Creates a TQ with an explicit trip-count width `N` (1..=32 bits);
    /// counts `>= 2^N` set the overflow bit instead of being stored.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `trip_bits` is not in `1..=32`.
    pub fn with_trip_bits(capacity: usize, trip_bits: u32) -> ArchTq {
        assert!((1..=32).contains(&trip_bits), "trip_bits must be in 1..=32");
        ArchTq { fifo: ArchFifo::new(capacity), tcr: 0, trip_bits }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.fifo.capacity
    }

    /// The length register.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum representable trip-count, `2^N - 1`.
    pub fn max_trip_count(&self) -> u32 {
        if self.trip_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.trip_bits) - 1
        }
    }

    /// The current Trip-Count Register value.
    pub fn tcr(&self) -> u32 {
        self.tcr
    }

    /// Sets the TCR (used by recovery and `Restore_TQ`).
    pub fn set_tcr(&mut self, v: u32) {
        self.tcr = v;
    }

    /// `Push_TQ`: pushes `count`, setting the entry's overflow bit when it
    /// exceeds the architected maximum (§IV-C4). Negative inputs clamp to 0.
    ///
    /// # Errors
    ///
    /// [`QueueError::Overflow`] when the queue is full.
    pub fn push(&mut self, count: i64) -> Result<(), QueueError> {
        let clamped = count.max(0) as u64;
        let entry = if clamped > self.max_trip_count() as u64 {
            TqEntry { trip_count: 0, overflow: true }
        } else {
            TqEntry { trip_count: clamped as u32, overflow: false }
        };
        self.fifo.push(entry)
    }

    /// `Pop_TQ`: pops the head entry and loads the TCR. Returns the entry
    /// (so `Pop_TQ_and_Branch_on_Overflow` can test the overflow bit).
    ///
    /// # Errors
    ///
    /// [`QueueError::Underflow`] when the queue is empty.
    pub fn pop(&mut self) -> Result<TqEntry, QueueError> {
        let e = self.fifo.pop()?;
        self.tcr = e.trip_count;
        Ok(e)
    }

    /// Peeks the `n`-th entry from the head.
    pub fn peek(&self, n: usize) -> Option<TqEntry> {
        self.fifo.peek(n)
    }

    /// `Branch_on_TCR`: if the TCR is non-zero, decrements it and reports
    /// `true` (continue the loop); otherwise reports `false` (exit).
    pub fn branch_on_tcr(&mut self) -> bool {
        if self.tcr != 0 {
            self.tcr -= 1;
            true
        } else {
            false
        }
    }

    /// The entries currently in the queue, head first.
    pub fn contents(&self) -> Vec<TqEntry> {
        self.fifo.contents()
    }

    /// Replaces the contents, e.g. for `Restore_TQ`.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len()` exceeds the capacity.
    pub fn restore(&mut self, entries: &[TqEntry]) {
        assert!(entries.len() <= self.capacity(), "restored TQ longer than its capacity");
        self.fifo.clear();
        for &e in entries {
            self.fifo.push(e).expect("capacity checked above");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bq_fifo_order() {
        let mut bq = ArchBq::new(4);
        for p in [true, false, true] {
            bq.push(p).unwrap();
        }
        assert_eq!(bq.pop(), Ok(true));
        assert_eq!(bq.pop(), Ok(false));
        assert_eq!(bq.pop(), Ok(true));
        assert_eq!(bq.pop(), Err(QueueError::Underflow));
    }

    #[test]
    fn bq_overflow() {
        let mut bq = ArchBq::new(2);
        bq.push(true).unwrap();
        bq.push(true).unwrap();
        assert_eq!(bq.push(false), Err(QueueError::Overflow));
    }

    #[test]
    fn bq_wraparound() {
        let mut bq = ArchBq::new(2);
        for i in 0..10 {
            bq.push(i % 3 == 0).unwrap();
            assert_eq!(bq.pop(), Ok(i % 3 == 0));
        }
    }

    #[test]
    fn mark_forward_drops_excess() {
        let mut bq = ArchBq::new(8);
        for _ in 0..5 {
            bq.push(true).unwrap();
        }
        bq.mark(); // marks the tail after 5 pushes
                   // Consumer pops only 2, then forwards.
        bq.pop().unwrap();
        bq.pop().unwrap();
        assert_eq!(bq.forward(), Ok(3));
        assert!(bq.is_empty());
    }

    #[test]
    fn forward_without_mark_errors() {
        let mut bq = ArchBq::new(4);
        assert_eq!(bq.forward(), Err(QueueError::ForwardWithoutMark));
    }

    #[test]
    fn consecutive_marks_use_last() {
        let mut bq = ArchBq::new(8);
        bq.push(true).unwrap();
        bq.mark();
        bq.push(false).unwrap();
        bq.mark();
        assert_eq!(bq.forward(), Ok(2));
        assert!(bq.is_empty());
    }

    #[test]
    fn bq_restore_roundtrip() {
        let mut bq = ArchBq::new(8);
        bq.restore(&[true, false, false, true]);
        assert_eq!(bq.len(), 4);
        assert_eq!(bq.contents(), vec![true, false, false, true]);
    }

    #[test]
    fn vq_fifo_values() {
        let mut vq = ArchVq::new(3);
        vq.push(10).unwrap();
        vq.push(-20).unwrap();
        assert_eq!(vq.pop(), Ok(10));
        assert_eq!(vq.pop(), Ok(-20));
        assert_eq!(vq.pop(), Err(QueueError::Underflow));
    }

    #[test]
    fn tq_pop_loads_tcr_and_branch_decrements() {
        let mut tq = ArchTq::new(4);
        tq.push(3).unwrap();
        tq.pop().unwrap();
        assert_eq!(tq.tcr(), 3);
        assert!(tq.branch_on_tcr());
        assert!(tq.branch_on_tcr());
        assert!(tq.branch_on_tcr());
        assert!(!tq.branch_on_tcr()); // exits
        assert_eq!(tq.tcr(), 0);
    }

    #[test]
    fn tq_overflow_bit() {
        let mut tq = ArchTq::with_trip_bits(4, 4); // max 15
        tq.push(15).unwrap();
        tq.push(16).unwrap();
        assert_eq!(tq.pop().unwrap(), TqEntry { trip_count: 15, overflow: false });
        assert_eq!(tq.pop().unwrap(), TqEntry { trip_count: 0, overflow: true });
    }

    #[test]
    fn tq_negative_counts_clamp() {
        let mut tq = ArchTq::new(4);
        tq.push(-5).unwrap();
        assert_eq!(tq.pop().unwrap().trip_count, 0);
    }

    #[test]
    fn tq_max_trip_count_widths() {
        assert_eq!(ArchTq::with_trip_bits(1, 16).max_trip_count(), 65535);
        assert_eq!(ArchTq::with_trip_bits(1, 32).max_trip_count(), u32::MAX);
        assert_eq!(ArchTq::with_trip_bits(1, 1).max_trip_count(), 1);
    }

    #[test]
    fn pop_invalidates_stale_mark() {
        let mut bq = ArchBq::new(8);
        bq.push(true).unwrap();
        bq.mark(); // mark at abs 1
        bq.push(false).unwrap();
        bq.pop().unwrap();
        bq.pop().unwrap(); // head (2) passes the mark (1)
                           // Forward must not move the head backwards.
        assert_eq!(bq.forward(), Ok(0));
    }
}
