//! # cfd-isa — the machine's instruction set, with the CFD extension
//!
//! This crate defines the ISA shared by every layer of the Control-Flow
//! Decoupling (CFD) reproduction:
//!
//! * a small load/store RISC base ISA ([`Instr`], [`Reg`], [`AluOp`] …),
//! * the **CFD extension** of Sheikh, Tuck & Rotenberg (MICRO 2012):
//!   the architectural Branch Queue ([`ArchBq`]), Value Queue ([`ArchVq`]),
//!   Trip-count Queue ([`ArchTq`]) and the instructions that manage them
//!   (`Push_BQ`, `Branch_on_BQ`, `Mark`/`Forward`, `Push_VQ`/`Pop_VQ`,
//!   `Push_TQ`/`Pop_TQ`/`Branch_on_TCR`, save/restore),
//! * a label-resolving [`Assembler`] producing [`Program`]s,
//! * a sparse data-memory image ([`MemImage`]),
//! * a functional reference simulator ([`Machine`]) with a retirement-trace
//!   hook ([`TraceSink`]) used by the profiler and by verification oracles.
//!
//! # Example
//!
//! The canonical CFD transformation (paper Fig. 3): a first loop pushes
//! predicates, a second loop consumes them with `Branch_on_BQ`.
//!
//! ```
//! use cfd_isa::{Assembler, MemImage, Machine, Reg};
//!
//! let (i, n, p, acc, base, tmp) =
//!     (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5), Reg::new(6));
//! let mut a = Assembler::new();
//! a.li(base, 0x1000);
//! a.li(n, 4);
//! // Loop 1: compute predicates a[i] != 0 and push them.
//! a.li(i, 0);
//! a.label("gen");
//! a.sll(tmp, i, 3i64);
//! a.add(tmp, tmp, base);
//! a.ld(p, 0, tmp);
//! a.push_bq(p);
//! a.addi(i, i, 1);
//! a.blt(i, n, "gen");
//! // Loop 2: pop predicates; count the true ones.
//! a.li(i, 0);
//! a.label("use");
//! a.branch_on_bq("skip");
//! a.addi(acc, acc, 1);
//! a.label("skip");
//! a.addi(i, i, 1);
//! a.blt(i, n, "use");
//! a.halt();
//!
//! let mut mem = MemImage::new();
//! for (k, v) in [1u64, 0, 1, 1].iter().enumerate() {
//!     mem.write_u64(0x1000 + 8 * k as u64, *v);
//! }
//! let mut m = Machine::new(a.finish()?, mem);
//! m.run_to_halt()?;
//! assert_eq!(m.regs.read(acc), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod check;
mod instr;
mod mem_image;
mod parse;
mod program;
mod queues;
mod reg;
mod semantics;
mod sim;

pub use check::Rng;
pub use instr::{AluOp, BranchCond, Instr, MemWidth, QueueKind, QueueOp, QueueOpKind, Src2};
pub use mem_image::MemImage;
pub use parse::{parse_program, ParseError};
pub use program::{AsmError, Assembler, Program};
pub use queues::{ArchBq, ArchTq, ArchVq, QueueError, TqEntry};
pub use reg::{Reg, RegFile, NUM_REGS};
pub use semantics::{eval_alu, eval_branch};
pub use sim::{run_and_read, Machine, MemAccess, NullSink, QueueConfig, RetireEvent, RunStats, SimError, TraceSink};
