//! Functional (architectural) simulator.
//!
//! Executes one instruction per [`Machine::step`], maintaining the
//! architectural state only: register file, data memory, PC, and the three
//! CFD queues. This simulator is the reference model: workload variants are
//! verified against it, the profiler replays its retirement trace through
//! branch predictors, and the timing simulator's retired stream is checked
//! against it in integration tests.

use crate::instr::{Instr, MemWidth};
use crate::mem_image::MemImage;
use crate::program::Program;
use crate::queues::{ArchBq, ArchTq, ArchVq, QueueError, TqEntry};
use crate::reg::{Reg, RegFile};
use crate::semantics::{eval_alu, eval_branch};
use std::fmt;

/// Sizes of the architectural queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Branch Queue capacity (paper: 128).
    pub bq_size: usize,
    /// Value Queue capacity (paper: 128, matching the BQ).
    pub vq_size: usize,
    /// Trip-count Queue capacity (paper: 256).
    pub tq_size: usize,
    /// Architected trip-count width in bits.
    pub tq_trip_bits: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { bq_size: 128, vq_size: 128, tq_size: 256, tq_trip_bits: ArchTq::DEFAULT_TRIP_BITS }
    }
}

/// A data-memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access width.
    pub width: MemWidth,
    /// True for stores, false for loads/prefetches.
    pub is_store: bool,
}

/// One retired instruction, as observed by a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Retirement sequence number (0-based).
    pub seq: u64,
    /// The instruction's PC.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// For conditional control instructions: whether it was taken.
    pub taken: Option<bool>,
    /// The next PC after this instruction.
    pub next_pc: u32,
    /// The first data-memory access, if any.
    pub mem: Option<MemAccess>,
}

/// Observer of the retirement stream.
///
/// Implemented by the profiler (predictor replay), trace collectors, and
/// test oracles. All methods have empty defaults, so sinks implement only
/// what they need.
pub trait TraceSink {
    /// Called once per retired instruction.
    fn retire(&mut self, ev: &RetireEvent) {
        let _ = ev;
    }
}

/// A sink that discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

impl<F: FnMut(&RetireEvent)> TraceSink for F {
    fn retire(&mut self, ev: &RetireEvent) {
        self(ev)
    }
}

/// Functional-simulation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A CFD queue ordering rule was violated.
    Queue {
        /// PC of the offending instruction.
        pc: u32,
        /// The violation.
        err: QueueError,
    },
    /// The PC ran off the end of the program without a `Halt`.
    PcOutOfRange {
        /// The out-of-range PC.
        pc: u32,
    },
    /// Retired-instruction limit exceeded (runaway program guard).
    InstructionLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Queue { pc, err } => write!(f, "queue violation at pc {pc}: {err}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range (missing halt?)"),
            SimError::InstructionLimit { limit } => write!(f, "instruction limit of {limit} exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate counts from a [`Machine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub retired: u64,
    /// Conditional control instructions retired (plain + CFD pops).
    pub conditional_branches: u64,
    /// Of those, how many were taken.
    pub taken_branches: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
}

/// The architectural machine: program + full architectural state.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    /// General-purpose registers.
    pub regs: RegFile,
    /// Data memory.
    pub mem: MemImage,
    /// Branch Queue.
    pub bq: ArchBq,
    /// Value Queue.
    pub vq: ArchVq,
    /// Trip-count Queue (+ TCR).
    pub tq: ArchTq,
    pc: u32,
    halted: bool,
    retired: u64,
}

impl Machine {
    /// Creates a machine over `program` with zeroed registers, the given
    /// memory image, and default queue sizes.
    pub fn new(program: Program, mem: MemImage) -> Machine {
        Machine::with_queues(program, mem, QueueConfig::default())
    }

    /// Creates a machine with explicit queue sizes.
    pub fn with_queues(program: Program, mem: MemImage, q: QueueConfig) -> Machine {
        Machine {
            program,
            regs: RegFile::new(),
            mem,
            bq: ArchBq::new(q.bq_size),
            vq: ArchVq::new(q.vq_size),
            tq: ArchTq::with_trip_bits(q.tq_size, q.tq_trip_bits),
            pc: 0,
            halted: false,
            retired: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current PC.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the PC (e.g. to start at a label).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Whether `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction, reporting it to `sink`.
    ///
    /// Returns `Ok(true)` while running, `Ok(false)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on queue ordering violations or a PC that runs
    /// off the program.
    pub fn step(&mut self, sink: &mut impl TraceSink) -> Result<bool, SimError> {
        if self.halted {
            return Ok(false);
        }
        let pc = self.pc;
        let instr = self.program.fetch(pc).ok_or(SimError::PcOutOfRange { pc })?;
        let mut next_pc = pc + 1;
        let mut taken = None;
        let mut mem_access = None;
        let q = |err| SimError::Queue { pc, err };

        match instr {
            Instr::Alu { op, rd, rs1, src2 } => {
                let a = self.regs.read(rs1);
                let b = match src2 {
                    crate::instr::Src2::Reg(r) => self.regs.read(r),
                    crate::instr::Src2::Imm(v) => v,
                };
                self.regs.write(rd, eval_alu(op, a, b));
            }
            Instr::Li { rd, imm } => self.regs.write(rd, imm),
            Instr::Load { rd, base, offset, width, signed } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                self.regs.write(rd, self.mem.read(addr, width, signed));
                mem_access = Some(MemAccess { addr, width, is_store: false });
            }
            Instr::Store { src, base, offset, width } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                self.mem.write(addr, self.regs.read(src), width);
                mem_access = Some(MemAccess { addr, width, is_store: true });
            }
            Instr::Prefetch { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: false });
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                let t = eval_branch(cond, self.regs.read(rs1), self.regs.read(rs2));
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Jal { rd, target } => {
                self.regs.write(rd, (pc + 1) as i64);
                next_pc = target;
            }
            Instr::Jr { rs } => next_pc = self.regs.read(rs) as u32,
            Instr::PushBq { rs } => self.bq.push(self.regs.read(rs) != 0).map_err(q)?,
            Instr::BranchOnBq { target } => {
                let pred = self.bq.pop().map_err(q)?;
                // Taken (skip) when the predicate is false.
                taken = Some(!pred);
                if !pred {
                    next_pc = target;
                }
            }
            Instr::MarkBq => self.bq.mark(),
            Instr::ForwardBq => {
                self.bq.forward().map_err(q)?;
            }
            Instr::PushVq { rs } => self.vq.push(self.regs.read(rs)).map_err(q)?,
            Instr::PopVq { rd } => {
                let v = self.vq.pop().map_err(q)?;
                self.regs.write(rd, v);
            }
            Instr::PushTq { rs } => self.tq.push(self.regs.read(rs)).map_err(q)?,
            Instr::PopTq => {
                self.tq.pop().map_err(q)?;
            }
            Instr::BranchOnTcr { target } => {
                let cont = self.tq.branch_on_tcr();
                taken = Some(cont);
                if cont {
                    next_pc = target;
                }
            }
            Instr::PopTqBrOvf { target } => {
                let e = self.tq.pop().map_err(q)?;
                taken = Some(e.overflow);
                if e.overflow {
                    next_pc = target;
                }
            }
            Instr::SaveBq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let contents = self.bq.contents();
                self.mem.write_u64(addr, contents.len() as u64);
                for (i, p) in contents.iter().enumerate() {
                    self.mem.write(addr + 8 + i as u64, *p as i64, MemWidth::B1);
                }
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: true });
            }
            Instr::RestoreBq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let len = (self.mem.read_u64(addr) as usize).min(self.bq.capacity());
                let preds: Vec<bool> =
                    (0..len).map(|i| self.mem.read(addr + 8 + i as u64, MemWidth::B1, false) != 0).collect();
                self.bq.restore(&preds);
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: false });
            }
            Instr::SaveVq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let contents = self.vq.contents();
                self.mem.write_u64(addr, contents.len() as u64);
                for (i, v) in contents.iter().enumerate() {
                    self.mem.write(addr + 8 + 8 * i as u64, *v, MemWidth::B8);
                }
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: true });
            }
            Instr::RestoreVq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let len = (self.mem.read_u64(addr) as usize).min(self.vq.capacity());
                let vals: Vec<i64> =
                    (0..len).map(|i| self.mem.read(addr + 8 + 8 * i as u64, MemWidth::B8, false)).collect();
                self.vq.restore(&vals);
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: false });
            }
            Instr::SaveTq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let contents = self.tq.contents();
                self.mem.write_u64(addr, contents.len() as u64);
                self.mem.write_u64(addr + 8, self.tq.tcr() as u64);
                for (i, e) in contents.iter().enumerate() {
                    let packed = (e.trip_count as u64) | ((e.overflow as u64) << 32);
                    self.mem.write_u64(addr + 16 + 8 * i as u64, packed);
                }
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: true });
            }
            Instr::RestoreTq { base, offset } => {
                let addr = (self.regs.read(base) as u64).wrapping_add(offset as u64);
                let len = (self.mem.read_u64(addr) as usize).min(self.tq.capacity());
                let tcr = self.mem.read_u64(addr + 8) as u32;
                let entries: Vec<TqEntry> = (0..len)
                    .map(|i| {
                        let packed = self.mem.read_u64(addr + 16 + 8 * i as u64);
                        TqEntry { trip_count: packed as u32, overflow: (packed >> 32) & 1 != 0 }
                    })
                    .collect();
                self.tq.restore(&entries);
                self.tq.set_tcr(tcr);
                mem_access = Some(MemAccess { addr, width: MemWidth::B8, is_store: false });
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        let ev = RetireEvent { seq: self.retired, pc, instr, taken, next_pc, mem: mem_access };
        sink.retire(&ev);
        self.retired += 1;
        self.pc = next_pc;
        Ok(!self.halted)
    }

    /// Runs until `Halt` or until `limit` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`step`](Self::step);
    /// [`SimError::InstructionLimit`] if the limit is reached first.
    pub fn run(&mut self, limit: u64, sink: &mut impl TraceSink) -> Result<RunStats, SimError> {
        let mut stats = RunStats::default();
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= limit {
                return Err(SimError::InstructionLimit { limit });
            }
            let mut wrapped = CountingSink { inner: sink, stats: &mut stats };
            self.step(&mut wrapped)?;
        }
        Ok(stats)
    }

    /// Runs to halt with a default 2-billion-instruction safety limit.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_to_halt(&mut self) -> Result<RunStats, SimError> {
        self.run(2_000_000_000, &mut NullSink)
    }
}

struct CountingSink<'a, S> {
    inner: &'a mut S,
    stats: &'a mut RunStats,
}

impl<S: TraceSink> TraceSink for CountingSink<'_, S> {
    fn retire(&mut self, ev: &RetireEvent) {
        self.stats.retired += 1;
        if ev.taken.is_some() {
            self.stats.conditional_branches += 1;
            if ev.taken == Some(true) {
                self.stats.taken_branches += 1;
            }
        }
        match ev.instr {
            Instr::Load { .. } => self.stats.loads += 1,
            Instr::Store { .. } => self.stats.stores += 1,
            _ => {}
        }
        self.inner.retire(ev);
    }
}

/// Convenience: reads the registers named in `out` after running `program`
/// to halt over `mem`. Useful for golden-output tests.
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_and_read(program: Program, mem: MemImage, out: &[Reg]) -> Result<Vec<i64>, SimError> {
    let mut m = Machine::new(program, mem);
    m.run_to_halt()?;
    Ok(out.iter().map(|r| m.regs.read(*r)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn simple_loop_sums() {
        // sum = 0; for i in 0..10 { sum += i }
        let mut a = Assembler::new();
        let (i, n, sum) = (r(1), r(2), r(3));
        a.li(n, 10);
        a.label("loop");
        a.add(sum, sum, i);
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let vals = run_and_read(a.finish().unwrap(), MemImage::new(), &[sum]).unwrap();
        assert_eq!(vals, vec![45]);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Assembler::new();
        let (base, v, w) = (r(1), r(2), r(3));
        a.li(base, 0x1000);
        a.li(v, -7);
        a.sw(v, 4, base);
        a.lw(w, 4, base);
        a.halt();
        let vals = run_and_read(a.finish().unwrap(), MemImage::new(), &[w]).unwrap();
        assert_eq!(vals, vec![-7]);
    }

    #[test]
    fn bq_push_pop_controls_flow() {
        // Push predicates [1, 0]; each Branch_on_BQ skips an addi when 0.
        let mut a = Assembler::new();
        let (p, acc) = (r(1), r(2));
        a.li(p, 1);
        a.push_bq(p);
        a.li(p, 0);
        a.push_bq(p);
        // Pop #1: predicate 1 -> fall through, acc += 1
        a.branch_on_bq("skip1");
        a.addi(acc, acc, 1);
        a.label("skip1");
        // Pop #2: predicate 0 -> skip, acc unchanged
        a.branch_on_bq("skip2");
        a.addi(acc, acc, 10);
        a.label("skip2");
        a.halt();
        let vals = run_and_read(a.finish().unwrap(), MemImage::new(), &[acc]).unwrap();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn bq_underflow_is_reported_with_pc() {
        let mut a = Assembler::new();
        a.branch_on_bq("end");
        a.label("end").halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        let err = m.run_to_halt().unwrap_err();
        assert_eq!(err, SimError::Queue { pc: 0, err: QueueError::Underflow });
    }

    #[test]
    fn tq_drives_inner_loop() {
        // Push trip counts [3, 0, 2]; inner loop body increments acc.
        let mut a = Assembler::new();
        let (t, i, n, acc) = (r(1), r(2), r(3), r(4));
        let counts = 0x2000u64;
        a.li(t, counts as i64);
        a.li(i, 0);
        a.li(n, 3);
        // First loop: push a[i] onto TQ
        a.label("push_loop");
        a.sll(r(5), i, 3i64);
        a.add(r(5), r(5), t);
        a.ld(r(6), 0, r(5));
        a.push_tq(r(6));
        a.addi(i, i, 1);
        a.blt(i, n, "push_loop");
        // Second loop: pop and run inner loop trip-count times
        a.li(i, 0);
        a.label("outer");
        a.pop_tq();
        a.j("test");
        a.label("body");
        a.addi(acc, acc, 1);
        a.label("test");
        a.branch_on_tcr("body");
        a.addi(i, i, 1);
        a.blt(i, n, "outer");
        a.halt();

        let mut mem = MemImage::new();
        for (k, c) in [3u64, 0, 2].iter().enumerate() {
            mem.write_u64(counts + 8 * k as u64, *c);
        }
        let vals = run_and_read(a.finish().unwrap(), mem, &[acc]).unwrap();
        assert_eq!(vals, vec![5]);
    }

    #[test]
    fn vq_communicates_values() {
        let mut a = Assembler::new();
        let (v, w) = (r(1), r(2));
        a.li(v, 42);
        a.push_vq(v);
        a.li(v, 43);
        a.push_vq(v);
        a.pop_vq(w);
        a.pop_vq(v);
        a.halt();
        let vals = run_and_read(a.finish().unwrap(), MemImage::new(), &[w, v]).unwrap();
        assert_eq!(vals, vec![42, 43]);
    }

    #[test]
    fn mark_forward_cleans_excess_pushes() {
        let mut a = Assembler::new();
        let p = r(1);
        a.li(p, 1);
        a.push_bq(p);
        a.push_bq(p);
        a.push_bq(p);
        a.mark_bq();
        // Second loop exits early after one pop.
        a.branch_on_bq("skip");
        a.label("skip");
        a.forward_bq();
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        assert!(m.bq.is_empty());
    }

    #[test]
    fn save_restore_bq_roundtrip() {
        let mut a = Assembler::new();
        let (p, base) = (r(1), r(2));
        a.li(base, 0x4000);
        a.li(p, 1).push_bq(p);
        a.li(p, 0).push_bq(p);
        a.li(p, 1).push_bq(p);
        a.save_bq(0, base);
        // Drain, then restore.
        a.branch_on_bq("l1").label("l1");
        a.branch_on_bq("l2").label("l2");
        a.branch_on_bq("l3").label("l3");
        a.restore_bq(0, base);
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        assert_eq!(m.bq.contents(), vec![true, false, true]);
    }

    #[test]
    fn save_restore_tq_preserves_tcr_and_overflow() {
        let mut a = Assembler::new();
        let (t, base) = (r(1), r(2));
        a.li(base, 0x8000);
        a.li(t, 100_000); // overflows 16-bit trip count
        a.push_tq(t);
        a.li(t, 5);
        a.push_tq(t);
        a.save_tq(0, base);
        a.pop_tq();
        a.pop_tq();
        a.restore_tq(0, base);
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        assert_eq!(m.tq.len(), 2);
        assert!(m.tq.peek(0).unwrap().overflow);
        assert_eq!(m.tq.peek(1).unwrap().trip_count, 5);
    }

    #[test]
    fn pop_tq_brovf_takes_overflow_path() {
        let mut a = Assembler::new();
        let (t, flag) = (r(1), r(2));
        a.li(t, 1 << 20); // > 16-bit max
        a.push_tq(t);
        a.pop_tq_brovf("fallback");
        a.li(flag, 1); // not executed
        a.j("end");
        a.label("fallback");
        a.li(flag, 2);
        a.label("end");
        a.halt();
        let vals = run_and_read(a.finish().unwrap(), MemImage::new(), &[flag]).unwrap();
        assert_eq!(vals, vec![2]);
    }

    #[test]
    fn run_stats_count_classes() {
        let mut a = Assembler::new();
        let (i, n) = (r(1), r(2));
        a.li(n, 4);
        a.label("loop");
        a.sw(i, 0, i);
        a.ld(r(3), 0, i);
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        let stats = m.run_to_halt().unwrap();
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 4);
        assert_eq!(stats.conditional_branches, 4);
        assert_eq!(stats.taken_branches, 3);
    }

    #[test]
    fn instruction_limit_guards_runaway() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        assert_eq!(m.run(100, &mut NullSink).unwrap_err(), SimError::InstructionLimit { limit: 100 });
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Assembler::new();
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        assert!(m.halted());
        assert_eq!(m.step(&mut NullSink), Ok(false));
        assert_eq!(m.retired(), 1);
    }
}
