//! Programs and the label-resolving assembler.

use crate::instr::{AluOp, BranchCond, Instr, MemWidth, Src2};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// An assembled program: a flat instruction vector plus symbol metadata.
///
/// Instruction indices serve as PCs. A program is produced by the
/// [`Assembler`] and is immutable thereafter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u32>,
    annotations: BTreeMap<u32, String>,
}

impl Program {
    /// The instructions, indexed by PC.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The PC a label resolves to, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// All labels, sorted by name.
    pub fn labels(&self) -> impl Iterator<Item = (&str, u32)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A human-readable annotation attached to `pc` (e.g. a branch's name
    /// for profiling reports).
    pub fn annotation(&self, pc: u32) -> Option<&str> {
        self.annotations.get(&pc).map(String::as_str)
    }

    /// A stable, content-complete byte serialization of the program, for
    /// content-addressed fingerprinting (`cfd-exec`).
    ///
    /// The encoding covers everything that can influence execution or
    /// reporting — instructions (via their derived `Debug` form, which is
    /// injective over operand values), labels, and annotations, all in
    /// deterministic order. Two programs serialize identically iff they
    /// are equal; any change to the instruction set's representation
    /// changes the bytes, which conservatively invalidates cached results.
    pub fn stable_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(self.instrs.len() * 48);
        for (pc, instr) in self.instrs.iter().enumerate() {
            let _ = writeln!(s, "I {pc} {instr:?}");
        }
        for (name, pc) in &self.labels {
            let _ = writeln!(s, "L {pc} {name}");
        }
        for (pc, text) in &self.annotations {
            let _ = writeln!(s, "A {pc} {text}");
        }
        s.into_bytes()
    }

    /// Disassembles the whole program, one instruction per line, with labels.
    pub fn disassemble(&self) -> String {
        let mut by_pc: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, pc) in &self.labels {
            by_pc.entry(*pc).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_pc.get(&(pc as u32)) {
                for n in names {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {pc:4}  {instr}"));
            if let Some(a) = self.annotations.get(&(pc as u32)) {
                out.push_str(&format!("    ; {a}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// Errors produced when finishing an [`Assembler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A program assembler with symbolic labels and forward references.
///
/// # Examples
///
/// ```
/// use cfd_isa::{Assembler, Reg};
/// let mut a = Assembler::new();
/// let (i, n) = (Reg::new(1), Reg::new(2));
/// a.li(n, 10);
/// a.label("loop");
/// a.addi(i, i, 1);
/// a.blt(i, n, "loop");
/// a.halt();
/// let prog = a.finish()?;
/// assert_eq!(prog.label("loop"), Some(1));
/// # Ok::<(), cfd_isa::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, u32>,
    annotations: BTreeMap<u32, String>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// The PC the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Defines `name` at the current PC.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_string());
        }
        self
    }

    /// Attaches a human-readable annotation to the *next* instruction.
    pub fn annotate(&mut self, text: &str) -> &mut Self {
        self.annotations.insert(self.here(), text.to_string());
        self
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn push_labeled(&mut self, i: Instr, label: &str) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(i);
        self
    }

    /// Emits a raw instruction (targets must already be resolved).
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.push(i)
    }

    /// Emits an ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.push(Instr::Alu { op, rd, rs1, src2: src2.into() })
    }

    /// `rd = rs1 + src2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, src2)
    }

    /// `rd = rs1 + imm` (alias of [`add`](Self::add) with an immediate).
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 - src2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, src2)
    }

    /// `rd = rs1 * src2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, src2)
    }

    /// `rd = rs1 / src2` (signed; x/0 = 0).
    pub fn div(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Div, rd, rs1, src2)
    }

    /// `rd = rs1 % src2` (signed; x%0 = 0).
    pub fn rem(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs1, src2)
    }

    /// `rd = rs1 & src2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, src2)
    }

    /// `rd = rs1 | src2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, src2)
    }

    /// `rd = rs1 ^ src2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, src2)
    }

    /// `rd = rs1 << src2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Sll, rd, rs1, src2)
    }

    /// `rd = rs1 >> src2` (logical).
    pub fn srl(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Srl, rd, rs1, src2)
    }

    /// `rd = rs1 >> src2` (arithmetic).
    pub fn sra(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Sra, rd, rs1, src2)
    }

    /// `rd = (rs1 < src2)` signed.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Slt, rd, rs1, src2)
    }

    /// `rd = (rs1 == src2)`.
    pub fn seq(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Seq, rd, rs1, src2)
    }

    /// `rd = (rs1 != src2)`.
    pub fn sne(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Sne, rd, rs1, src2)
    }

    /// `rd = (rs1 >= src2)` signed.
    pub fn sge(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Sge, rd, rs1, src2)
    }

    /// `rd = min(rs1, src2)` signed.
    pub fn min(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Min, rd, rs1, src2)
    }

    /// `rd = max(rs1, src2)` signed.
    pub fn max(&mut self, rd: Reg, rs1: Reg, src2: impl Into<Src2>) -> &mut Self {
        self.alu(AluOp::Max, rd, rs1, src2)
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Li { rd, imm })
    }

    /// `rd = rs` (register move; encoded as `add rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, 0i64)
    }

    /// 8-byte load.
    pub fn ld(&mut self, rd: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Load { rd, base, offset, width: MemWidth::B8, signed: false })
    }

    /// 4-byte sign-extending load.
    pub fn lw(&mut self, rd: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Load { rd, base, offset, width: MemWidth::B4, signed: true })
    }

    /// 1-byte zero-extending load.
    pub fn lb(&mut self, rd: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Load { rd, base, offset, width: MemWidth::B1, signed: false })
    }

    /// Generic load.
    pub fn load(&mut self, rd: Reg, offset: i64, base: Reg, width: MemWidth, signed: bool) -> &mut Self {
        self.push(Instr::Load { rd, base, offset, width, signed })
    }

    /// 8-byte store.
    pub fn sd(&mut self, src: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Store { src, base, offset, width: MemWidth::B8 })
    }

    /// 4-byte store.
    pub fn sw(&mut self, src: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Store { src, base, offset, width: MemWidth::B4 })
    }

    /// 1-byte store.
    pub fn sb(&mut self, src: Reg, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Store { src, base, offset, width: MemWidth::B1 })
    }

    /// Software prefetch.
    pub fn prefetch(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::Prefetch { base, offset })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.push_labeled(Instr::Branch { cond, rs1, rs2, target: 0 }, label)
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch if less-than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch if greater-or-equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Branch if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.beq(rs, Reg::ZERO, label)
    }

    /// Branch if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, label: &str) -> &mut Self {
        self.bne(rs, Reg::ZERO, label)
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.push_labeled(Instr::Jump { target: 0 }, label)
    }

    /// Jump-and-link to `label`.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.push_labeled(Instr::Jal { rd, target: 0 }, label)
    }

    /// Indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::Jr { rs })
    }

    /// CFD: push predicate `(rs != 0)` onto the BQ.
    pub fn push_bq(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::PushBq { rs })
    }

    /// CFD: pop a predicate; branch to `skip_label` when it is 0.
    pub fn branch_on_bq(&mut self, skip_label: &str) -> &mut Self {
        self.push_labeled(Instr::BranchOnBq { target: 0 }, skip_label)
    }

    /// CFD: mark the BQ tail.
    pub fn mark_bq(&mut self) -> &mut Self {
        self.push(Instr::MarkBq)
    }

    /// CFD: bulk-pop the BQ through the last mark.
    pub fn forward_bq(&mut self) -> &mut Self {
        self.push(Instr::ForwardBq)
    }

    /// CFD: push `rs` onto the VQ.
    pub fn push_vq(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::PushVq { rs })
    }

    /// CFD: pop the VQ head into `rd`.
    pub fn pop_vq(&mut self, rd: Reg) -> &mut Self {
        self.push(Instr::PopVq { rd })
    }

    /// CFD: push a trip-count onto the TQ.
    pub fn push_tq(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::PushTq { rs })
    }

    /// CFD: pop the TQ head into the TCR.
    pub fn pop_tq(&mut self) -> &mut Self {
        self.push(Instr::PopTq)
    }

    /// CFD: loop-continue on a non-zero TCR.
    pub fn branch_on_tcr(&mut self, loop_label: &str) -> &mut Self {
        self.push_labeled(Instr::BranchOnTcr { target: 0 }, loop_label)
    }

    /// CFD: pop the TQ, branching to `overflow_label` on an overflowed entry.
    pub fn pop_tq_brovf(&mut self, overflow_label: &str) -> &mut Self {
        self.push_labeled(Instr::PopTqBrOvf { target: 0 }, overflow_label)
    }

    /// Save the BQ to memory.
    pub fn save_bq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::SaveBq { base, offset })
    }

    /// Restore the BQ from memory.
    pub fn restore_bq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::RestoreBq { base, offset })
    }

    /// Save the VQ to memory.
    pub fn save_vq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::SaveVq { base, offset })
    }

    /// Restore the VQ from memory.
    pub fn restore_vq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::RestoreVq { base, offset })
    }

    /// Save the TQ to memory.
    pub fn save_tq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::SaveTq { base, offset })
    }

    /// Restore the TQ from memory.
    pub fn restore_tq(&mut self, offset: i64, base: Reg) -> &mut Self {
        self.push(Instr::RestoreTq { base, offset })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a referenced label was never
    /// defined, or [`AsmError::DuplicateLabel`] if a label was defined twice.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate {
            return Err(AsmError::DuplicateLabel(dup));
        }
        for (idx, name) in &self.fixups {
            let pc = *self.labels.get(name).ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
            let i = &mut self.instrs[*idx];
            match i {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target, .. }
                | Instr::BranchOnBq { target }
                | Instr::BranchOnTcr { target }
                | Instr::PopTqBrOvf { target } => *target = pc,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        Ok(Program { instrs: self.instrs, labels: self.labels, annotations: self.annotations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        let r1 = Reg::new(1);
        a.j("end"); // forward reference
        a.label("top");
        a.addi(r1, r1, 1);
        a.label("end");
        a.beqz(r1, "top"); // backward reference
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.fetch(0), Some(Instr::Jump { target: 2 }));
        assert_eq!(p.fetch(2), Some(Instr::Branch { cond: BranchCond::Eq, rs1: r1, rs2: Reg::ZERO, target: 1 }));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        a.label("x").nop();
        a.label("x").halt();
        assert_eq!(a.finish().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn annotations_attach_to_next_instruction() {
        let mut a = Assembler::new();
        a.nop();
        a.annotate("the hard branch");
        a.beqz(Reg::new(1), "done");
        a.label("done").halt();
        let p = a.finish().unwrap();
        assert_eq!(p.annotation(1), Some("the hard branch"));
        assert_eq!(p.annotation(0), None);
    }

    #[test]
    fn disassembly_contains_labels() {
        let mut a = Assembler::new();
        a.label("main");
        a.li(Reg::new(1), 5);
        a.halt();
        let p = a.finish().unwrap();
        let d = p.disassemble();
        assert!(d.contains("main:"));
        assert!(d.contains("li r1, 5"));
    }

    #[test]
    fn cfd_instructions_assemble() {
        let mut a = Assembler::new();
        a.label("loop2");
        a.branch_on_bq("skip");
        a.nop();
        a.label("skip");
        a.branch_on_tcr("loop2");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.fetch(0), Some(Instr::BranchOnBq { target: 2 }));
        assert_eq!(p.fetch(2), Some(Instr::BranchOnTcr { target: 0 }));
    }

    #[test]
    fn here_tracks_pc() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), 0);
        a.nop().nop();
        assert_eq!(a.here(), 2);
    }

    #[test]
    fn stable_bytes_reflect_content() {
        let build = |imm: i64, annotate: bool| {
            let mut a = Assembler::new();
            a.label("main");
            a.li(Reg::new(1), imm);
            if annotate {
                a.annotate("note");
            }
            a.halt();
            a.finish().unwrap()
        };
        // Equal programs serialize identically; any content change differs.
        assert_eq!(build(5, false).stable_bytes(), build(5, false).stable_bytes());
        assert_ne!(build(5, false).stable_bytes(), build(6, false).stable_bytes());
        assert_ne!(build(5, false).stable_bytes(), build(5, true).stable_bytes());
        // Labels are part of the content.
        let b = build(5, false).stable_bytes();
        assert!(String::from_utf8(b).unwrap().contains("L 0 main"));
    }
}
