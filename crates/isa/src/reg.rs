//! Architectural register file description.
//!
//! The ISA specifies 32 general-purpose 64-bit integer registers. Register
//! `r0` is hardwired to zero: writes to it are discarded, reads return `0`,
//! exactly like MIPS/RISC-V. This gives workloads and the simulators a
//! convenient sink/zero source and matches the paper's Alpha-like substrate.

use std::fmt;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 32;

/// An architectural general-purpose register (`r0`–`r31`).
///
/// `Reg` is a validated newtype: it can only hold indices below
/// [`NUM_REGS`], so downstream tables may index with it unchecked.
///
/// # Examples
///
/// ```
/// use cfd_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub fn new(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// Creates a register, returning `None` when the index is out of range.
    #[inline]
    pub fn try_new(index: usize) -> Option<Reg> {
        (index < NUM_REGS).then_some(Reg(index as u8))
    }

    /// The register's index in `0..NUM_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over every architectural register, `r0` first.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(|i| Reg(i as u8))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

/// The architectural register file: 32 64-bit values with `r0` pinned to 0.
///
/// # Examples
///
/// ```
/// use cfd_isa::{Reg, RegFile};
/// let mut rf = RegFile::new();
/// rf.write(Reg::new(3), 42);
/// assert_eq!(rf.read(Reg::new(3)), 42);
/// rf.write(Reg::ZERO, 7); // discarded
/// assert_eq!(rf.read(Reg::ZERO), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    vals: [i64; NUM_REGS],
}

impl RegFile {
    /// Creates a register file with all registers zeroed.
    pub fn new() -> RegFile {
        RegFile { vals: [0; NUM_REGS] }
    }

    /// Reads a register. `r0` always reads 0.
    #[inline]
    pub fn read(&self, r: Reg) -> i64 {
        self.vals[r.index()]
    }

    /// Writes a register. Writes to `r0` are silently discarded.
    #[inline]
    pub fn write(&mut self, r: Reg, val: i64) {
        if !r.is_zero() {
            self.vals[r.index()] = val;
        }
    }

    /// A snapshot of all register values (`r0` included, always 0).
    pub fn snapshot(&self) -> [i64; NUM_REGS] {
        self.vals
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_reads_zero() {
        let mut rf = RegFile::new();
        rf.write(Reg::ZERO, 123);
        assert_eq!(rf.read(Reg::ZERO), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut rf = RegFile::new();
        for i in 1..NUM_REGS {
            rf.write(Reg::new(i), i as i64 * 3 - 7);
        }
        for i in 1..NUM_REGS {
            assert_eq!(rf.read(Reg::new(i)), i as i64 * 3 - 7);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(NUM_REGS);
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    fn display_name() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }

    #[test]
    fn all_covers_every_register() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), NUM_REGS);
        assert_eq!(v[0], Reg::ZERO);
        assert_eq!(v[31], Reg::new(31));
    }
}
