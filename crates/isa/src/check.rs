//! Dependency-free randomized testing: a seeded PRNG and a minimal
//! property-check harness.
//!
//! The build environment is offline, so the workspace cannot pull `rand`
//! or `proptest` from crates.io. This module provides the two pieces the
//! test suites actually need:
//!
//! * [`Rng`] — a xorshift64\* generator (same algorithm the workload data
//!   generators use) with convenience samplers;
//! * [`run_cases`] / [`prop_check!`](crate::prop_check) — seeded case
//!   generation with shrink-free failure reporting: on a failing case the
//!   harness prints the case index and the exact per-case seed so the
//!   failure replays with `CFD_PROP_SEED=<seed> CFD_PROP_CASES=1`.
//!
//! The fault-injection harness (`cfd-harden`) reuses [`Rng`] for its
//! deterministic campaign sweeps.

/// A seeded xorshift64\* PRNG.
///
/// Deterministic, `Clone`, and cheap; statistically good enough for test
/// case generation and fault-site sampling (it is not cryptographic).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// non-zero constant, since xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Rng {
        Rng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value (xorshift64\*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `i64` in the half-open range `lo..hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Uniform `usize` in the half-open range `lo..hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A `Vec` of `len in min..max` elements drawn from `f`.
    pub fn vec<T>(&mut self, min: usize, max: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let len = self.range_usize(min, max);
        (0..len).map(|_| f(self)).collect()
    }

    /// Picks an index with the given relative `weights` (proptest's
    /// `prop_oneof![w => ...]` analog).
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        let mut roll = self.below(total.max(1));
        for (i, &w) in weights.iter().enumerate() {
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

/// Default base seed for property checks (overridable via `CFD_PROP_SEED`).
pub const DEFAULT_PROP_SEED: u64 = 0x005e_ed0f_c0de;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `cases` seeded random cases of a property.
///
/// Each case gets its own [`Rng`] derived from the base seed and the case
/// index, so any single failing case replays in isolation. The base seed
/// comes from `CFD_PROP_SEED` when set; the case count can be overridden
/// with `CFD_PROP_CASES`. There is no shrinking: the report names the
/// exact per-case seed instead.
///
/// # Panics
///
/// Re-raises the property's panic after printing the reproduction line.
pub fn run_cases(name: &str, cases: u64, property: impl Fn(&mut Rng)) {
    let base = env_u64("CFD_PROP_SEED").unwrap_or(DEFAULT_PROP_SEED);
    let cases = env_u64("CFD_PROP_CASES").unwrap_or(cases);
    for case in 0..cases {
        // splitmix64 over (base, case) decorrelates per-case streams.
        let mut z = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let case_seed = z ^ (z >> 31);
        let mut rng = Rng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (base seed {base:#x}); replay with \
                 CFD_PROP_SEED={case_seed} CFD_PROP_CASES=1"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Declares a seeded property check: `prop_check!(cases, |rng| { ... })`.
///
/// The closure body uses ordinary `assert!`/`assert_eq!`; failures report
/// the case index and per-case seed (see [`run_cases`]). Use inside a
/// `#[test]` function:
///
/// ```
/// use cfd_isa::prop_check;
/// prop_check!(32, |rng| {
///     let x = rng.range_i64(-100, 100);
///     assert_eq!(x + 0, x);
/// });
/// ```
#[macro_export]
macro_rules! prop_check {
    ($cases:expr, |$rng:ident| $body:block) => {
        $crate::check::run_cases(concat!(module_path!(), ":", line!()), $cases, |$rng: &mut $crate::check::Rng| $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let v = rng.range_i64(-5, 17);
            assert!((-5..17).contains(&v), "{v}");
            let u = rng.range_usize(2, 9);
            assert!((2..9).contains(&u), "{u}");
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut rng = Rng::new(11);
        for _ in 0..500 {
            assert_ne!(rng.weighted(&[3, 0, 2]), 1);
        }
    }

    #[test]
    fn vec_length_in_range() {
        let mut rng = Rng::new(5);
        for _ in 0..200 {
            let v = rng.vec(1, 12, |r| r.bool());
            assert!((1..12).contains(&v.len()));
        }
    }

    #[test]
    fn macro_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNT: AtomicU64 = AtomicU64::new(0);
        prop_check!(9, |rng| {
            let _ = rng.bool();
            COUNT.fetch_add(1, Ordering::Relaxed);
        });
        // CFD_PROP_CASES can scale this, but never to zero.
        assert!(COUNT.load(Ordering::Relaxed) > 0);
    }
}
