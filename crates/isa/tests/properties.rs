//! Property-based tests for the ISA layer: queue semantics against model
//! queues, save/restore round-trips, and memory-image laws.

use cfd_isa::{
    ArchBq, ArchTq, ArchVq, Assembler, Machine, MemImage, MemWidth, QueueError, Reg, TqEntry,
};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The architectural BQ is exactly a bounded FIFO of booleans.
    #[test]
    fn arch_bq_is_a_bounded_fifo(
        ops in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..300)
    ) {
        let mut bq = ArchBq::new(8);
        let mut model: VecDeque<bool> = VecDeque::new();
        for (is_push, val) in ops {
            if is_push {
                match bq.push(val) {
                    Ok(()) => {
                        prop_assert!(model.len() < 8);
                        model.push_back(val);
                    }
                    Err(QueueError::Overflow) => prop_assert_eq!(model.len(), 8),
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            } else {
                match bq.pop() {
                    Ok(got) => prop_assert_eq!(Some(got), model.pop_front()),
                    Err(QueueError::Underflow) => prop_assert!(model.is_empty()),
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            }
            prop_assert_eq!(bq.len(), model.len());
        }
    }

    /// Save_BQ / Restore_BQ round-trips arbitrary contents through memory.
    #[test]
    fn save_restore_bq_roundtrip(preds in proptest::collection::vec(any::<bool>(), 0..16)) {
        let r = Reg::new;
        let (base, v) = (r(1), r(2));
        let mut a = Assembler::new();
        a.li(base, 0x9000);
        for &p in &preds {
            a.li(v, p as i64);
            a.push_bq(v);
        }
        a.save_bq(0, base);
        // Drain everything, then restore.
        for k in 0..preds.len() {
            let l = format!("d{k}");
            a.branch_on_bq(&l);
            a.label(&l);
        }
        a.restore_bq(0, base);
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        prop_assert_eq!(m.bq.contents(), preds);
    }

    /// Save_VQ / Restore_VQ round-trips values.
    #[test]
    fn save_restore_vq_roundtrip(vals in proptest::collection::vec(-1000i64..1000, 0..12)) {
        let r = Reg::new;
        let (base, v, d) = (r(1), r(2), r(3));
        let mut a = Assembler::new();
        a.li(base, 0xa000);
        for &x in &vals {
            a.li(v, x);
            a.push_vq(v);
        }
        a.save_vq(0, base);
        for _ in 0..vals.len() {
            a.pop_vq(d);
        }
        a.restore_vq(0, base);
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), MemImage::new());
        m.run_to_halt().unwrap();
        prop_assert_eq!(m.vq.contents(), vals);
    }

    /// The TQ preserves counts below the architected max and flags larger
    /// ones; draining via branch_on_tcr yields exactly the stored count.
    #[test]
    fn tq_preserves_or_flags_counts(counts in proptest::collection::vec(0i64..200_000, 1..8)) {
        let mut tq = ArchTq::with_trip_bits(8, 16);
        for &c in &counts {
            tq.push(c).unwrap();
        }
        for &c in &counts {
            let e = tq.pop().unwrap();
            if c <= 0xffff {
                prop_assert_eq!(e, TqEntry { trip_count: c as u32, overflow: false });
                let mut drained = 0i64;
                while tq.branch_on_tcr() {
                    drained += 1;
                }
                prop_assert_eq!(drained, c);
            } else {
                prop_assert!(e.overflow);
            }
        }
    }

    /// Memory image: the last write to an address wins, regardless of the
    /// interleaving of other addresses and widths.
    #[test]
    fn mem_image_last_write_wins(
        writes in proptest::collection::vec((0u64..4096, any::<i64>()), 1..100)
    ) {
        let mut mem = MemImage::new();
        let mut shadow = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let addr = addr * 8; // aligned, non-overlapping cells
            mem.write(addr, *val, MemWidth::B8);
            shadow.insert(addr, *val);
        }
        for (addr, val) in shadow {
            prop_assert_eq!(mem.read(addr, MemWidth::B8, false), val);
        }
    }

    /// Functional machine determinism: the same program and image always
    /// produce the same retirement count and register state.
    #[test]
    fn machine_is_deterministic(seed in any::<u64>()) {
        let r = Reg::new;
        let mut a = Assembler::new();
        let (i, n, acc) = (r(1), r(2), r(3));
        a.li(n, 64);
        a.label("top");
        a.xor(acc, acc, i);
        a.mul(acc, acc, 31i64);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        let mut mem = MemImage::new();
        mem.write_u64(0x100, seed);
        let run = |prog: &cfd_isa::Program, mem: &MemImage| {
            let mut m = Machine::new(prog.clone(), mem.clone());
            m.run_to_halt().unwrap();
            (m.retired(), m.regs.read(acc))
        };
        prop_assert_eq!(run(&program, &mem), run(&program, &mem));
    }
}

/// VQ ordering rules are enforced: a pop before its push is an error.
#[test]
fn vq_underflow_is_an_error() {
    let mut vq = ArchVq::new(4);
    assert_eq!(vq.pop(), Err(QueueError::Underflow));
}
