//! The `experiments separability` backend: the catalog-wide separability
//! table — every analyzed branch of every base kernel, its heuristic and
//! precise class, the rewrite the automatic selector
//! ([`cfd_analysis::apply_cfd_spec`]) picks, and, for each branch of
//! interest the selector accepts, the differential gates on the result:
//!
//! * the rewrite's lint verdict (queue discipline + speculation contract),
//! * functional-simulation equivalence of the rewritten program against
//!   the original on the kernel's own observables and checked ranges,
//! * a dynamic cross-check ([`cfd_harden::check_disjoint_claims`]) that
//!   no static disjointness claim backing a speculative decision is ever
//!   contradicted by an actual execution.
//!
//! The table is byte-deterministic and locked by a checked-in fixture;
//! [`gate_ok`] is the pass/fail summary `experiments separability` turns
//! into its exit status.

use cfd_analysis::{apply_cfd_spec, classify_program, BranchClass, ClassifyConfig};
use cfd_harden::check_disjoint_claims;
use cfd_isa::Reg;
use cfd_workloads::{catalog, Scale, Variant, Workload};

/// Functional-simulation step budget for the equivalence and claim
/// cross-check runs (matches [`cfd_workloads::Workload::observe`]).
const RUN_LIMIT: u64 = 4_000_000_000;

/// The gates applied to one accepted rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOutcome {
    /// The rewrite the selector actually chose (its
    /// [`cfd_analysis::SpecDecision`] display form).
    pub decision: String,
    /// Loads the leading loop executes ahead of the trailing loop's
    /// stores (each proven safe for a speculative decision).
    pub hoisted_loads: usize,
    /// Error-severity lint findings on the rewritten program.
    pub lint_errors: usize,
    /// Whether the rewritten program reproduces the original's
    /// observables and checked-range checksums exactly.
    pub equivalent: bool,
}

/// One analyzed branch of one catalog base kernel.
#[derive(Debug, Clone)]
pub struct SeparabilityRow {
    /// Catalog kernel name.
    pub kernel: String,
    /// Branch PC in the base program.
    pub pc: u32,
    /// Final class (precise tier included).
    pub class: String,
    /// Class the same-base-register heuristic alone assigns.
    pub heuristic_class: String,
    /// What the automatic selector does with this class.
    pub decision: String,
    /// Loads in the branch's predicate slice (upgraded branches report
    /// the hoist-candidate set instead).
    pub slice_loads: usize,
    /// Hoist candidates proven safe by the value-range/alias tier.
    pub proven_safe_loads: usize,
    /// Hoist candidates the tier could not prove safe.
    pub unsafe_loads: usize,
    /// Static load/store disjointness claims backing the class.
    pub claims: usize,
    /// Claims contradicted by the dynamic footprint cross-check.
    pub contradicted: usize,
    /// Gates on the accepted rewrite (branches of interest only).
    pub applied: Option<AppliedOutcome>,
    /// The selector's rejection, when it refused a branch of interest.
    pub error: Option<String>,
}

/// The rewrite [`apply_cfd_spec`] selects for a class, as the table's
/// decision column.
fn decision_for(class: BranchClass) -> &'static str {
    match class {
        BranchClass::Hammock => "if-convert",
        BranchClass::SeparableTotal => "cfd",
        BranchClass::SeparablePartial => "cfd-partial",
        BranchClass::SeparableLoopBranch => "cfd-tq",
        BranchClass::SpeculativelySeparable => "cfd-spec",
        _ => "none",
    }
}

/// Scratch registers handed to the rewrite passes (matches the lint
/// sweep's transform jobs).
fn transform_scratch() -> Vec<Reg> {
    (28..32).map(Reg::new).collect()
}

/// Runs `w` rebuilt around `program` and compares observables against
/// the original's. Both runs are functional simulations on the kernel's
/// own data image.
fn equivalent_to_base(w: &Workload, program: &cfd_isa::Program) -> bool {
    let rewritten = Workload { program: program.clone(), ..w.clone() };
    match (w.observe(), rewritten.observe()) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    }
}

/// Builds the full separability table over every catalog base kernel.
///
/// The scale only affects constants baked into the programs; the
/// classification, selection, and gates are static apart from the two
/// bounded functional runs per accepted rewrite.
pub fn run_separability(scale: Scale) -> Vec<SeparabilityRow> {
    let scratch = transform_scratch();
    let mut rows = Vec::new();
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        for report in classify_program(&w.program, None, ClassifyConfig::default()) {
            if report.class == BranchClass::NotAnalyzed {
                continue;
            }
            let (claims, contradicted) = if report.disjoint_claims.is_empty() {
                (0, 0)
            } else {
                match check_disjoint_claims(&w.program, &w.mem, &report.disjoint_claims, RUN_LIMIT) {
                    Ok(obs) => (obs.len(), obs.iter().filter(|o| o.contradicted).count()),
                    // An original kernel that cannot run is itself a
                    // contradiction of the catalog contract.
                    Err(_) => (report.disjoint_claims.len(), report.disjoint_claims.len()),
                }
            };
            let mut row = SeparabilityRow {
                kernel: entry.name.to_string(),
                pc: report.pc,
                class: report.class.to_string(),
                heuristic_class: report.heuristic_class.to_string(),
                decision: decision_for(report.class).to_string(),
                slice_loads: report.slice_loads,
                proven_safe_loads: report.proven_safe_loads,
                unsafe_loads: report.unsafe_loads,
                claims,
                contradicted,
                applied: None,
                error: None,
            };
            // Apply the selector on the branches of interest (the PCs the
            // catalog designates), where an accepted rewrite is expected
            // to survive every gate.
            let of_interest = w.interest.iter().any(|ib| ib.pc == report.pc);
            if of_interest && !matches!(row.decision.as_str(), "if-convert" | "none") {
                match apply_cfd_spec(&w.program, report.pc, 128, 256, &scratch) {
                    Ok(s) => {
                        row.applied = Some(AppliedOutcome {
                            decision: s.decision.to_string(),
                            hoisted_loads: s.hoisted_loads,
                            lint_errors: s.report.lint.error_count(),
                            equivalent: equivalent_to_base(&w, &s.report.program),
                        });
                    }
                    Err(e) => row.error = Some(e.to_string()),
                }
            }
            rows.push(row);
        }
    }
    rows
}

/// Renders separability rows as a fixed-width table.
pub fn table(rows: &[SeparabilityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>4} {:<24} {:<24} {:<11} {:>5} {:>4} {:>6} {:>6}  applied\n",
        "kernel", "pc", "class", "heuristic", "decision", "loads", "safe", "claims", "contra"
    ));
    for r in rows {
        let applied = match (&r.applied, &r.error) {
            (Some(a), _) => format!(
                "{} hoisted={} lint={} equiv={}",
                a.decision,
                a.hoisted_loads,
                a.lint_errors,
                if a.equivalent { "yes" } else { "NO" }
            ),
            (None, Some(e)) => format!("rejected: {e}"),
            (None, None) => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<18} {:>4} {:<24} {:<24} {:<11} {:>5} {:>4} {:>6} {:>6}  {}\n",
            r.kernel,
            r.pc,
            r.class,
            r.heuristic_class,
            r.decision,
            r.slice_loads,
            r.proven_safe_loads,
            r.claims,
            r.contradicted,
            applied,
        ));
    }
    out
}

/// Deterministic JSON rendering of separability rows.
pub fn to_json(rows: &[SeparabilityRow]) -> String {
    let jstr = |s: &str| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let applied = match &r.applied {
            None => "null".to_string(),
            Some(a) => format!(
                "{{\"decision\":{},\"hoisted_loads\":{},\"lint_errors\":{},\"equivalent\":{}}}",
                jstr(&a.decision),
                a.hoisted_loads,
                a.lint_errors,
                a.equivalent
            ),
        };
        let error = match &r.error {
            None => "null".to_string(),
            Some(e) => jstr(e),
        };
        s.push_str(&format!(
            "{{\"kernel\":{},\"pc\":{},\"class\":{},\"heuristic_class\":{},\"decision\":{},\
             \"slice_loads\":{},\"proven_safe_loads\":{},\"unsafe_loads\":{},\"claims\":{},\
             \"contradicted\":{},\"applied\":{},\"error\":{}}}",
            jstr(&r.kernel),
            r.pc,
            jstr(&r.class),
            jstr(&r.heuristic_class),
            jstr(&r.decision),
            r.slice_loads,
            r.proven_safe_loads,
            r.unsafe_loads,
            r.claims,
            r.contradicted,
            applied,
            error,
        ));
    }
    s.push(']');
    s
}

/// The pass/fail summary of a separability sweep:
///
/// * no static disjointness claim may be contradicted dynamically,
/// * every accepted rewrite must lint clean and reproduce the original's
///   observables, and
/// * at least one branch must be upgraded from heuristic-inseparable to
///   speculatively separable and survive all gates — the speculative
///   tier has to earn its keep, not merely not regress.
pub fn gate_ok(rows: &[SeparabilityRow]) -> bool {
    let sound = rows
        .iter()
        .all(|r| r.contradicted == 0 && r.applied.as_ref().is_none_or(|a| a.lint_errors == 0 && a.equivalent));
    let upgraded = rows.iter().any(|r| {
        r.class == BranchClass::SpeculativelySeparable.to_string()
            && r.heuristic_class == BranchClass::Inseparable.to_string()
            && r.applied.as_ref().is_some_and(|a| a.lint_errors == 0 && a.equivalent && r.contradicted == 0)
    });
    sound && upgraded
}
