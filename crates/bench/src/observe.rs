//! `experiments observe`: one telemetry-armed run of a catalog workload.
//!
//! Unlike the figure experiments, an observation runs the core *directly*
//! (never through the result cache): the point is the live telemetry —
//! the interval-sampled time series, the CPI stack, and the pipeline
//! event trace — and a cached aggregate has none of it. All artifacts
//! are integer-derived and byte-deterministic: observing the same
//! workload twice yields identical CSV and identical Perfetto JSON.

use crate::runner::CYCLE_LIMIT;
use cfd_core::{Core, CoreConfig, CpiStack, RunReport, TelemetryConfig};
use cfd_workloads::{by_name, catalog, Scale, Variant};

/// Every variant, for `--variant` label parsing.
pub const ALL_VARIANTS: [Variant; 9] = [
    Variant::Base,
    Variant::Cfd,
    Variant::CfdPlus,
    Variant::Dfd,
    Variant::CfdDfd,
    Variant::CfdTq,
    Variant::CfdBq,
    Variant::CfdBqTq,
    Variant::IfConv,
];

/// Parses a report label (`base`, `cfd`, `cfd+`, `cfd(bq+tq)`, ...) back
/// into its [`Variant`].
pub fn parse_variant(label: &str) -> Option<Variant> {
    ALL_VARIANTS.iter().copied().find(|v| v.label() == label)
}

/// Filesystem-safe slug for a variant (labels contain `+`/`(`/`)`).
pub fn variant_slug(v: Variant) -> &'static str {
    match v {
        Variant::Base => "base",
        Variant::Cfd => "cfd",
        Variant::CfdPlus => "cfd_plus",
        Variant::Dfd => "dfd",
        Variant::CfdDfd => "cfd_dfd",
        Variant::CfdTq => "cfd_tq",
        Variant::CfdBq => "cfd_bq",
        Variant::CfdBqTq => "cfd_bq_tq",
        Variant::IfConv => "if_conv",
    }
}

/// Knobs for one observation.
#[derive(Debug, Clone, Copy)]
pub struct ObserveOptions {
    /// Which transformation of the kernel to run.
    pub variant: Variant,
    /// Workload scale.
    pub scale: Scale,
    /// Time-series sampling interval in cycles.
    pub interval: u64,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions { variant: Variant::Base, scale: Scale::default(), interval: 1000 }
    }
}

/// One telemetry-armed run and its identifying labels.
pub struct Observation {
    /// Workload name.
    pub name: String,
    /// Variant run.
    pub variant: Variant,
    /// The full report; `report.telemetry` is always `Some`.
    pub report: RunReport,
    /// Retire width the run used (for CPI/timeline scaling).
    pub width: u64,
}

/// Runs `name` with telemetry armed.
///
/// # Errors
///
/// An explanatory message when the workload is unknown, the variant is
/// unsupported for it, or the simulation itself fails.
pub fn observe(name: &str, opts: &ObserveOptions) -> Result<Observation, String> {
    let entry = by_name(name).ok_or_else(|| {
        let names: Vec<&str> = catalog().iter().map(|e| e.name).collect();
        format!("unknown workload `{name}`; catalog: {}", names.join(", "))
    })?;
    if !entry.variants.contains(&opts.variant) {
        let labels: Vec<&str> = entry.variants.iter().map(|v| v.label()).collect();
        return Err(format!("workload `{name}` has no `{}` variant; it supports: {}", opts.variant, labels.join(", ")));
    }
    let wl = entry.build(opts.variant, opts.scale);
    let cfg = CoreConfig::default();
    let width = cfg.width as u64;
    let report = Core::new(cfg, wl.program, wl.mem)
        .map_err(|e| format!("{name} [{}]: {e}", opts.variant))?
        .with_telemetry(TelemetryConfig { sample_interval: opts.interval, trace: true })
        .run(CYCLE_LIMIT)
        .map_err(|e| format!("{name} [{}]: {e}", opts.variant))?;
    Ok(Observation { name: name.to_string(), variant: opts.variant, report, width })
}

impl Observation {
    fn telemetry(&self) -> &cfd_core::TelemetryReport {
        self.report.telemetry.as_ref().expect("observation always arms telemetry")
    }

    /// The sampled time series as CSV.
    pub fn csv(&self) -> String {
        self.telemetry().series.to_csv()
    }

    /// The pipeline event trace as Perfetto/Chrome trace-event JSON.
    pub fn trace_json(&self) -> String {
        self.telemetry().trace.to_json()
    }

    /// The run's CPI stack.
    pub fn cpi_stack(&self) -> CpiStack {
        self.report.stats.cpi_stack()
    }

    /// Headline summary + CPI-stack table + ASCII occupancy/IPC timeline.
    pub fn render(&self) -> String {
        let s = &self.report.stats;
        let stack = self.cpi_stack();
        let mut out = format!(
            "observe {} [{}]: {} cycles, {} retired, IPC {:.3}, {} mispredictions\n\n",
            self.name,
            self.variant,
            s.cycles,
            s.retired,
            self.report.ipc(),
            s.mispredictions,
        );
        out.push_str("CPI stack (every retire slot of every cycle attributed exactly once):\n");
        out.push_str(&stack.table(self.width, s.retired));
        out.push_str("\ntimeline (interval IPC + queue occupancies at each sample):\n");
        out.push_str(&self.telemetry().series.ascii_timeline(self.width, 32));
        let reg = &self.telemetry().registry;
        let (checks, wakeups, poll) =
            (reg.counter("sched.ready_checks"), reg.counter("sched.wakeup_events"), reg.counter("sched.poll_equiv"));
        let per_cycle = |n: u64| n as f64 / s.cycles.max(1) as f64;
        out.push_str(&format!(
            "\nscheduler (event-driven wakeup vs per-cycle IQ polling):\n  \
             ready checks      {checks:>12}  ({:.3}/cycle)\n  \
             wakeup events     {wakeups:>12}  ({:.3}/cycle)\n  \
             polling would scan{poll:>12}  ({:.3}/cycle)\n",
            per_cycle(checks),
            per_cycle(wakeups),
            per_cycle(poll),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels_round_trip() {
        for v in ALL_VARIANTS {
            assert_eq!(parse_variant(v.label()), Some(v));
        }
        assert_eq!(parse_variant("nope"), None);
    }

    #[test]
    fn variant_slugs_are_unique_and_safe() {
        use std::collections::BTreeSet;
        let slugs: BTreeSet<&str> = ALL_VARIANTS.iter().map(|&v| variant_slug(v)).collect();
        assert_eq!(slugs.len(), ALL_VARIANTS.len());
        for s in slugs {
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s}");
        }
    }

    #[test]
    fn unknown_workload_and_variant_are_errors() {
        assert!(observe("no_such_kernel", &ObserveOptions::default()).is_err());
        let opts = ObserveOptions { variant: Variant::CfdTq, ..Default::default() };
        // soplex has no TQ variant.
        assert!(observe("soplex_ref_like", &opts).is_err());
    }

    #[test]
    fn observation_is_byte_deterministic() {
        let opts = ObserveOptions { scale: Scale { n: 200, ..Scale::default() }, interval: 200, ..Default::default() };
        let a = observe("soplex_ref_like", &opts).unwrap();
        let b = observe("soplex_ref_like", &opts).unwrap();
        assert_eq!(a.csv(), b.csv());
        assert_eq!(a.trace_json(), b.trace_json());
        assert_eq!(a.render(), b.render());
        assert!(!a.telemetry().series.is_empty());
        assert_eq!(a.cpi_stack().check(a.report.stats.cycles, a.width), Ok(()));
    }
}
