//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! The paper explored the misprediction-recovery design space before fixing
//! its baseline (§VI: checkpoint count, confidence-guided allocation) and
//! compared against idealizations. These runners reproduce those
//! explorations on our substrate, plus two natural extensions: the
//! predictor ablation (does a weaker/stronger predictor change CFD's
//! story?) and hardware prefetching as an alternative to software DFD.

use crate::runner::{ratio, sweep_scale, Batch, TextTable};
use cfd_core::{CheckpointPolicy, CoreConfig};
use cfd_energy::EnergyModel;
use cfd_exec::Engine;
use cfd_workloads::{by_name, Variant};

/// §VI checkpoint exploration: IPC vs number of checkpoints and policy.
/// The paper found gains level off at 8 with confidence-guided allocation.
pub fn ablation_checkpoints(engine: &Engine) -> String {
    let scale = sweep_scale();
    let apps = ["soplex_ref_like", "astar_r2_like", "bzip2_like"];
    let points = [
        (0usize, CheckpointPolicy::None),
        (4, CheckpointPolicy::ConfidenceGuided),
        (8, CheckpointPolicy::ConfidenceGuided),
        (16, CheckpointPolicy::ConfidenceGuided),
        (64, CheckpointPolicy::ConfidenceGuided),
        (8, CheckpointPolicy::AllBranches),
        (64, CheckpointPolicy::AllBranches),
    ];
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for (n, policy) in points {
        let cfg = CoreConfig { n_checkpoints: n, checkpoint_policy: policy, ..Default::default() };
        let handles: Vec<_> = apps
            .iter()
            .map(|name| {
                let entry = by_name(name).expect("in catalog");
                batch.sim_variant(&entry, Variant::Base, scale, &cfg)
            })
            .collect();
        rows.push((n, policy, handles));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["checkpoints", "policy", "IPC (hmean)"]);
    for (n, policy, handles) in rows {
        let h: f64 = handles.iter().map(|&h| 1.0 / res[h].ipc()).sum();
        t.row(vec![n.to_string(), format!("{policy:?}"), format!("{:.3}", apps.len() as f64 / h)]);
    }
    format!(
        "Ablation — checkpoint count and allocation policy (§VI)\n\
         (paper: aggressive confidence-guided policy best; levels off at 8)\n\n{}",
        t.render()
    )
}

/// Predictor ablation: the baseline suffers with weaker predictors, while
/// CFD's performance barely depends on the predictor at all (its targeted
/// branches never consult it).
pub fn ablation_predictor(engine: &Engine) -> String {
    let scale = sweep_scale();
    let entry = by_name("soplex_ref_like").expect("in catalog");
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for pred in ["bimodal", "gshare", "perceptron", "isl-tage"] {
        let cfg = CoreConfig { predictor: pred.to_string(), ..Default::default() };
        rows.push((
            pred,
            batch.sim_variant(&entry, Variant::Base, scale, &cfg),
            batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
        ));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["predictor", "base IPC", "CFD eff. IPC", "CFD speedup"]);
    for (pred, hb, hc) in rows {
        let base = &res[hb];
        let e = res[hc].effective_ipc(base.stats.retired);
        t.row(vec![pred.to_string(), format!("{:.3}", base.ipc()), format!("{e:.3}"), ratio(e / base.ipc())]);
    }
    format!(
        "Ablation — direction predictor (CFD gains grow as the predictor weakens,\n\
         because the decoupled branches never needed it)\n\n{}",
        t.render()
    )
}

/// Hardware prefetching vs software DFD on the irregular (indirect) astar
/// kernel: stride prefetchers cannot learn a random permutation, while
/// DFD's software address slice can.
pub fn ablation_prefetch(engine: &Engine) -> String {
    let scale = sweep_scale();
    let entry = by_name("astar_r2_like").expect("in catalog");
    let mut hw = CoreConfig::default();
    hw.hierarchy.stride_prefetch = true;
    hw.hierarchy.next_line_prefetch = true;

    let mut batch = Batch::new(engine);
    let hbase = batch.sim_variant(&entry, Variant::Base, scale, &CoreConfig::default());
    let hhw = batch.sim_variant(&entry, Variant::Base, scale, &hw);
    let hdfd = batch.sim_variant(&entry, Variant::Dfd, scale, &CoreConfig::default());
    let res = batch.run();

    let (base, hw_rep, dfd) = (&res[hbase], &res[hhw], &res[hdfd]);
    let mut t = TextTable::new(vec!["scheme", "speedup over plain base", "DRAM accesses"]);
    t.row(vec!["base".to_string(), "1.00x".to_string(), base.level_counts[3].to_string()]);
    t.row(vec![
        "base + HW prefetch (stride+next-line)".to_string(),
        ratio(hw_rep.speedup_over(base)),
        hw_rep.level_counts[3].to_string(),
    ]);
    t.row(vec!["DFD (software)".to_string(), ratio(dfd.speedup_over(base)), dfd.level_counts[3].to_string()]);
    format!(
        "Ablation — hardware prefetching vs software DFD on the irregular kernel\n\
         (a stride prefetcher cannot learn data[perm[i]]; DFD's address slice can)\n\n{}",
        t.render()
    )
}

/// BTB ablation: CFD pops are BTB-resident like all branches (§III-C4);
/// shrink the BTB until misfetches appear.
pub fn ablation_btb(engine: &Engine) -> String {
    // The BTB size is fixed inside the core; approximate the study by
    // comparing misfetch counts across kernels with very different static
    // branch counts instead.
    let scale = sweep_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for name in ["soplex_ref_like", "astar_tq_like"] {
        let entry = by_name(name).expect("in catalog");
        for &v in entry.variants.iter().take(2) {
            rows.push((name, v, batch.sim_variant(&entry, v, scale, &CoreConfig::default())));
        }
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["kernel", "variant", "BTB misfetches", "fetched (M)"]);
    for (name, v, h) in rows {
        let rep = &res[h];
        t.row(vec![
            name.to_string(),
            v.to_string(),
            rep.stats.btb_misfetches.to_string(),
            format!("{:.2}", rep.stats.fetched as f64 / 1e6),
        ]);
    }
    format!(
        "Ablation — BTB behaviour of CFD pops (cached like ordinary branches;\n\
         misfetch bubbles only on cold first encounters)\n\n{}",
        t.render()
    )
}

/// Component-level energy: where exactly CFD's savings come from
/// (wrong-path fetch/decode/rename and predictor activity disappear; the
/// BQ itself costs almost nothing).
pub fn energy_detail(engine: &Engine) -> String {
    let scale = sweep_scale();
    let entry = by_name("soplex_ref_like").expect("in catalog");
    let model = EnergyModel::default();
    let mut batch = Batch::new(engine);
    let hbase = batch.sim_variant(&entry, Variant::Base, scale, &CoreConfig::default());
    let hcfd = batch.sim_variant(&entry, Variant::Cfd, scale, &CoreConfig::default());
    let res = batch.run();

    let be = res[hbase].energy(&model);
    let ce = res[hcfd].energy(&model);
    let mut t = TextTable::new(vec!["component", "base (nJ)", "CFD (nJ)", "delta"]);
    for ((name, b), (_, c)) in be.components.iter().zip(ce.components.iter()) {
        if *b < 1.0 && *c < 1.0 {
            continue;
        }
        let delta = if *b > 0.0 { format!("{:+.0}%", 100.0 * (c - b) / b) } else { "-".to_string() };
        t.row(vec![name.to_string(), format!("{:.1}", b / 1000.0), format!("{:.1}", c / 1000.0), delta]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        format!("{:.1}", be.total_pj / 1000.0),
        format!("{:.1}", ce.total_pj / 1000.0),
        format!("{:+.0}%", 100.0 * (ce.total_pj - be.total_pj) / be.total_pj),
    ]);
    format!(
        "Energy detail — per-component breakdown, base vs CFD (soplex-like)\n\
         (CFD removes wrong-path front-end work; the BQ adds almost nothing)\n\n{}",
        t.render()
    )
}
