//! Fig. 1 (motivation: real vs perfect prediction) and Fig. 2 (who feeds
//! the mispredictions; window scaling needs perfect prediction).

use crate::runner::{default_scale, pct, ratio, relative_energy, sweep_scale, Batch, TextTable};
use cfd_core::{CoreConfig, PerfectMode};
use cfd_exec::Engine;
use cfd_workloads::{catalog, Variant};

/// Benchmarks shown in Fig. 1 (hard-to-predict set).
const FIG1_APPS: &[&str] =
    &["astar_r1_like", "astar_r2_like", "soplex_ref_like", "mcf_like", "bzip2_like", "eclat_like", "gromacs_like"];

/// Fig. 1a/1b: IPC and energy, real vs perfect branch prediction.
pub fn fig01(engine: &Engine) -> String {
    let scale = default_scale();
    let perfect_cfg = CoreConfig { perfect: PerfectMode::All, ..Default::default() };
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog().iter().filter(|e| FIG1_APPS.contains(&e.name)) {
        let w = entry.build(Variant::Base, scale);
        rows.push((entry.name, batch.sim(&w, &CoreConfig::default()), batch.sim(&w, &perfect_cfg)));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "IPC (real)", "IPC (perfect)", "speedup", "energy"]);
    for (name, hb, hp) in rows {
        let (base, perfect) = (&res[hb], &res[hp]);
        t.row(vec![
            name.to_string(),
            format!("{:.2}", base.ipc()),
            format!("{:.2}", perfect.ipc()),
            ratio(perfect.speedup_over(base)),
            pct(relative_energy(perfect, base) - 1.0),
        ]);
    }
    format!(
        "Fig. 1 — IPC and energy with real (ISL-TAGE-lite) vs perfect branch prediction\n\
         (paper: speedups 1.05–2.16, energy -4%..-64%)\n\n{}",
        t.render()
    )
}

/// Fig. 2a: breakdown of mispredicted branches by the furthest memory
/// level feeding them; Fig. 2b: window scaling with and without perfect
/// prediction for the miss-fed astar kernel.
pub fn fig02(engine: &Engine) -> String {
    let scale = default_scale();
    let mut batch = Batch::new(engine);

    let a_apps = ["soplex_ref_like", "astar_r2_like", "mcf_like", "gromacs_like"];
    let mut a_rows = Vec::new();
    for name in a_apps {
        let entry = cfd_workloads::by_name(name).expect("in catalog");
        let w = entry.build(Variant::Base, scale);
        a_rows.push((name, batch.sim(&w, &CoreConfig::default())));
    }

    let entry = cfd_workloads::by_name("astar_r2_like").expect("in catalog");
    let w = entry.build(Variant::Base, sweep_scale());
    let mut b_rows = Vec::new();
    for rob in [168usize, 256, 512] {
        let cfg = CoreConfig::default().with_window(rob);
        let mut pcfg = cfg.clone();
        pcfg.perfect = PerfectMode::All;
        b_rows.push((rob, batch.sim(&w, &cfg), batch.sim(&w, &pcfg)));
    }
    let res = batch.run();

    let mut a = TextTable::new(vec!["app", "NoData", "L1", "L2", "L3", "MEM"]);
    for (name, h) in a_rows {
        let by = res[h].stats.mispredictions_by_level();
        let total: u64 = by.iter().sum::<u64>().max(1);
        let cell = |v: u64| format!("{:.0}%", 100.0 * v as f64 / total as f64);
        a.row(vec![name.to_string(), cell(by[0]), cell(by[1]), cell(by[2]), cell(by[3]), cell(by[4])]);
    }

    let mut b = TextTable::new(vec!["window (ROB)", "IPC real", "IPC perfect"]);
    for (rob, hr, hp) in b_rows {
        b.row(vec![rob.to_string(), format!("{:.3}", res[hr].ipc()), format!("{:.3}", res[hp].ipc())]);
    }
    format!(
        "Fig. 2a — mispredicted branches by furthest feeding memory level\n\n{}\n\
         Fig. 2b — astar-like IPC vs window size (misprediction-bound without\n\
         perfect prediction; scaling restored with it)\n\n{}",
        a.render(),
        b.render()
    )
}
