//! Fig. 1 (motivation: real vs perfect prediction) and Fig. 2 (who feeds
//! the mispredictions; window scaling needs perfect prediction).

use crate::runner::{self, default_scale, pct, ratio, sweep_scale, TextTable};
use cfd_core::{CoreConfig, PerfectMode};
use cfd_workloads::{catalog, Variant};

/// Benchmarks shown in Fig. 1 (hard-to-predict set).
const FIG1_APPS: &[&str] =
    &["astar_r1_like", "astar_r2_like", "soplex_ref_like", "mcf_like", "bzip2_like", "eclat_like", "gromacs_like"];

/// Fig. 1a/1b: IPC and energy, real vs perfect branch prediction.
pub fn fig01() -> String {
    let scale = default_scale();
    let mut t = TextTable::new(vec!["app", "IPC (real)", "IPC (perfect)", "speedup", "energy"]);
    for entry in catalog().iter().filter(|e| FIG1_APPS.contains(&e.name)) {
        let w = entry.build(Variant::Base, scale);
        let base = runner::run(&w, &CoreConfig::default());
        let cfg = CoreConfig { perfect: PerfectMode::All, ..Default::default() };
        let perfect = runner::run(&w, &cfg);
        t.row(vec![
            entry.name.to_string(),
            format!("{:.2}", base.ipc()),
            format!("{:.2}", perfect.ipc()),
            ratio(perfect.speedup_over(&base)),
            pct(runner::relative_energy(&perfect, &base) - 1.0),
        ]);
    }
    format!(
        "Fig. 1 — IPC and energy with real (ISL-TAGE-lite) vs perfect branch prediction\n\
         (paper: speedups 1.05–2.16, energy -4%..-64%)\n\n{}",
        t.render()
    )
}

/// Fig. 2a: breakdown of mispredicted branches by the furthest memory
/// level feeding them; Fig. 2b: window scaling with and without perfect
/// prediction for the miss-fed astar kernel.
pub fn fig02() -> String {
    let scale = default_scale();
    let mut a = TextTable::new(vec!["app", "NoData", "L1", "L2", "L3", "MEM"]);
    for name in ["soplex_ref_like", "astar_r2_like", "mcf_like", "gromacs_like"] {
        let entry = cfd_workloads::by_name(name).expect("in catalog");
        let w = entry.build(Variant::Base, scale);
        let rep = runner::run(&w, &CoreConfig::default());
        let by = rep.stats.mispredictions_by_level();
        let total: u64 = by.iter().sum::<u64>().max(1);
        let cell = |v: u64| format!("{:.0}%", 100.0 * v as f64 / total as f64);
        a.row(vec![name.to_string(), cell(by[0]), cell(by[1]), cell(by[2]), cell(by[3]), cell(by[4])]);
    }

    let mut b = TextTable::new(vec!["window (ROB)", "IPC real", "IPC perfect"]);
    let entry = cfd_workloads::by_name("astar_r2_like").expect("in catalog");
    let w = entry.build(Variant::Base, sweep_scale());
    for rob in [168usize, 256, 512] {
        let cfg = CoreConfig::default().with_window(rob);
        let real = runner::run(&w, &cfg);
        let mut pcfg = cfg.clone();
        pcfg.perfect = PerfectMode::All;
        let perfect = runner::run(&w, &pcfg);
        b.row(vec![rob.to_string(), format!("{:.3}", real.ipc()), format!("{:.3}", perfect.ipc())]);
    }
    format!(
        "Fig. 2a — mispredicted branches by furthest feeding memory level\n\n{}\n\
         Fig. 2b — astar-like IPC vs window size (misprediction-bound without\n\
         perfect prediction; scaling restored with it)\n\n{}",
        a.render(),
        b.render()
    )
}
