//! CPI-stack cycle accounting across the catalog: where each variant's
//! cycles go, and what CFD actually trades misprediction slots for.

use crate::runner::{default_scale, Batch, TextTable};
use cfd_core::{CoreConfig, CpiComponent};
use cfd_exec::Engine;
use cfd_workloads::catalog;

/// One permille share rendered as `12.3%`.
fn share(pm: u64) -> String {
    format!("{}.{}%", pm / 10, pm % 10)
}

/// `cpi`: per workload × variant CPI and component shares. The stack is
/// verified to sum to exactly `cycles × width` for every row — a failure
/// here means a pipeline state the accounting taxonomy missed.
pub fn cpi_stack(engine: &Engine) -> String {
    let scale = default_scale();
    let cfg = CoreConfig::default();
    let width = cfg.width as u64;
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog() {
        for &variant in entry.variants {
            rows.push((entry.name, variant, batch.sim_variant(&entry, variant, scale, &cfg)));
        }
    }
    let res = batch.run();

    let mut t =
        TextTable::new(vec!["app", "variant", "CPI", "base", "frontend", "mispred", "cfd_stall", "mem", "backend"]);
    for (name, variant, h) in rows {
        let r = &res[h];
        let stack = r.stats.cpi_stack();
        stack.check(r.stats.cycles, width).unwrap_or_else(|e| panic!("{name} [{variant}]: {e}"));
        let mem_pm = stack.permille(CpiComponent::MemL1)
            + stack.permille(CpiComponent::MemL2)
            + stack.permille(CpiComponent::MemL3)
            + stack.permille(CpiComponent::MemDram);
        t.row(vec![
            name.to_string(),
            variant.label().to_string(),
            format!("{:.3}", 1.0 / r.ipc().max(f64::MIN_POSITIVE)),
            share(stack.permille(CpiComponent::Base)),
            share(stack.permille(CpiComponent::Frontend)),
            share(stack.permille(CpiComponent::Mispredict)),
            share(stack.permille(CpiComponent::CfdStall)),
            share(mem_pm),
            share(stack.permille(CpiComponent::Backend)),
        ]);
    }
    format!(
        "CPI-stack cycle accounting — share of all retire slots per component\n\
         (mem = L1+L2+L3+DRAM; every stack verified to sum to cycles x width exactly)\n\n{}",
        t.render()
    )
}
