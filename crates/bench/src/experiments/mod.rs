//! The experiment registry: one entry per paper table/figure.

mod ablations;
mod cpi;
mod fig01_02;
mod fig06_tables;
mod fig18_23;
mod fig24_28;

use cfd_exec::Engine;

/// An experiment: id, what it reproduces, and its runner.
pub struct Experiment {
    /// Short id (e.g. `"fig18"`).
    pub id: &'static str,
    /// What in the paper it regenerates.
    pub what: &'static str,
    /// Runs the experiment on the given engine, returning its formatted
    /// output. The output depends only on the submitted jobs, never on the
    /// engine's worker count or cache state.
    pub run: fn(&Engine) -> String,
}

/// All experiments, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment { id: "fig1", what: "IPC/energy with real vs perfect prediction", run: fig01_02::fig01 },
        Experiment { id: "fig2", what: "misprediction memory-level breakdown; window scaling", run: fig01_02::fig02 },
        Experiment { id: "table1", what: "MPKI per kernel + suite shares (Fig. 6a)", run: fig06_tables::table1_fig6a },
        Experiment { id: "fig6c", what: "targeted mispredictions by control-flow class", run: fig06_tables::fig6c },
        Experiment {
            id: "table2",
            what: "pipeline depths; baseline config; CFD storage (Fig. 17)",
            run: fig06_tables::table2_fig17,
        },
        Experiment { id: "table3", what: "instruction overhead factors (Tables III/IV)", run: fig06_tables::table3_4 },
        Experiment { id: "table5", what: "modified-region branch metadata (Tables V/VI)", run: fig06_tables::table5_6 },
        Experiment { id: "fig18", what: "CFD/CFD+ speedup and energy", run: fig18_23::fig18 },
        Experiment { id: "fig19", what: "effective IPC vs PerfectCFD groups", run: fig18_23::fig19 },
        Experiment { id: "fig20", what: "BQ size sensitivity", run: fig18_23::fig20 },
        Experiment { id: "fig21", what: "depth/window/BQ-miss-policy sensitivity", run: fig18_23::fig21 },
        Experiment { id: "fig23", what: "astar window-scaling catalyst", run: fig18_23::fig23 },
        Experiment { id: "fig24", what: "DFD vs CFD", run: fig24_28::fig24 },
        Experiment { id: "fig25", what: "MSHR utilization; misprediction-level shift", run: fig24_28::fig25 },
        Experiment { id: "fig26", what: "CFD and DFD combined", run: fig24_28::fig26 },
        Experiment { id: "fig27", what: "CFD(TQ) results", run: fig24_28::fig27 },
        Experiment { id: "fig28", what: "CFD(BQ/TQ/BQ+TQ) super-additivity", run: fig24_28::fig28 },
        Experiment {
            id: "abl-ckpt",
            what: "ablation: checkpoint count/policy (§VI exploration)",
            run: ablations::ablation_checkpoints,
        },
        Experiment {
            id: "abl-pred",
            what: "ablation: direction predictor strength vs CFD",
            run: ablations::ablation_predictor,
        },
        Experiment {
            id: "abl-pref",
            what: "ablation: hardware prefetch vs software DFD",
            run: ablations::ablation_prefetch,
        },
        Experiment { id: "abl-btb", what: "ablation: BTB behaviour of CFD pops", run: ablations::ablation_btb },
        Experiment { id: "energy", what: "per-component energy breakdown, base vs CFD", run: ablations::energy_detail },
        Experiment { id: "cpi", what: "CPI-stack cycle accounting per workload/variant", run: cpi::cpi_stack },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique() {
        use std::collections::BTreeSet;
        let ids: BTreeSet<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), all().len());
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig18").is_some());
        assert!(by_id("abl-ckpt").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn every_paper_figure_and_table_is_covered() {
        // The evaluation's tables/figures (DESIGN.md §4) must all resolve.
        for id in [
            "fig1", "fig2", "table1", "fig6c", "table2", "table3", "table5", "fig18", "fig19", "fig20", "fig21",
            "fig23", "fig24", "fig25", "fig26", "fig27", "fig28",
        ] {
            assert!(by_id(id).is_some(), "missing experiment `{id}`");
        }
    }
}
