//! Fig. 6 + Table I (profiling & classification) and the configuration
//! tables (Table II, Fig. 17, Tables III–VI).

use crate::runner::{default_scale, Batch, TextTable};
use cfd_analysis::BranchClass;
use cfd_core::CoreConfig;
use cfd_energy::cfd_storage_bytes;
use cfd_exec::Engine;
use cfd_profile::classified_mpki;
use cfd_workloads::{catalog, Scale, Variant};
use std::collections::BTreeMap;

const PROFILE_LIMIT: u64 = 100_000_000;

fn profile_scale() -> Scale {
    Scale { n: 6_000, ..default_scale() }
}

/// Table I + Fig. 6a: MPKI of every kernel under ISL-TAGE-lite, grouped by
/// suite with MPKI-weighted suite shares.
pub fn table1_fig6a(engine: &Engine) -> String {
    let scale = profile_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        let h = batch.profile(&w, "isl-tage", PROFILE_LIMIT);
        rows.push((entry, h));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["suite", "kernel", "paper analog", "MPKI", "miss rate"]);
    let mut suite_mpki: BTreeMap<String, f64> = BTreeMap::new();
    for (entry, h) in rows {
        let rep = &res[h];
        *suite_mpki.entry(entry.suite.to_string()).or_insert(0.0) += rep.mpki();
        t.row(vec![
            entry.suite.to_string(),
            entry.name.to_string(),
            entry.paper_benchmark.to_string(),
            format!("{:.2}", rep.mpki()),
            format!("{:.3}", rep.miss_rate()),
        ]);
    }
    let total: f64 = suite_mpki.values().sum();
    let mut s = TextTable::new(vec!["suite", "share of cumulative MPKI"]);
    for (suite, mpki) in &suite_mpki {
        s.row(vec![suite.clone(), format!("{:.1}%", 100.0 * mpki / total)]);
    }
    format!(
        "Table I — MPKI of the targeted kernels (ISL-TAGE-lite, run to completion)\n\n{}\n\
         Fig. 6a — misprediction contribution per suite (MPKI-weighted)\n\n{}",
        t.render(),
        s.render()
    )
}

/// Fig. 6c: class breakdown of targeted mispredictions (static classifier
/// joined with the dynamic profile).
pub fn fig6c(engine: &Engine) -> String {
    let scale = profile_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        let h = batch.profile(&w, "isl-tage", PROFILE_LIMIT);
        rows.push((w, h));
    }
    let res = batch.run();

    let mut per_class: BTreeMap<BranchClass, f64> = BTreeMap::new();
    for (w, h) in &rows {
        for (class, mpki) in classified_mpki(w, &res[*h]) {
            *per_class.entry(class).or_insert(0.0) += mpki;
        }
    }
    let total: f64 = per_class.values().sum();
    let mut t = TextTable::new(vec!["class", "share of targeted MPKI"]);
    for (class, mpki) in &per_class {
        t.row(vec![class.to_string(), format!("{:.1}%", 100.0 * mpki / total)]);
    }
    format!(
        "Fig. 6c — targeted mispredictions by control-flow class\n\
         (paper: separable 41.4%, hammock/if-convertible 26.5%)\n\n{}",
        t.render()
    )
}

/// Table II + Fig. 17: pipeline-depth constants, the baseline core
/// configuration, and the CFD storage overhead. Pure formatting — no
/// simulations, so the engine goes unused.
pub fn table2_fig17(_engine: &Engine) -> String {
    let cfg = CoreConfig::default();
    let mut t = TextTable::new(vec!["processor", "min fetch-to-execute (cycles)"]);
    for (proc_name, depth) in
        [("AMD Bobcat", "13"), ("ARM Cortex A15", "14"), ("IBM Power7", "19"), ("Intel Pentium 4", "20")]
    {
        t.row(vec![proc_name, depth]);
    }
    t.row(vec!["this model (conservative, like the paper)".to_string(), cfg.fetch_to_execute().to_string()]);

    let mut c = TextTable::new(vec!["parameter", "value"]);
    c.row(vec!["fetch/rename/retire width".to_string(), cfg.width.to_string()]);
    c.row(vec!["issue width".to_string(), cfg.issue_width.to_string()]);
    c.row(vec!["ROB / IQ / LSQ".to_string(), format!("{} / {} / {}", cfg.rob_size, cfg.iq_size, cfg.lsq_size)]);
    c.row(vec!["physical registers".to_string(), cfg.prf_size.to_string()]);
    c.row(vec!["checkpoints".to_string(), format!("{} ({:?})", cfg.n_checkpoints, cfg.checkpoint_policy)]);
    c.row(vec!["predictor".to_string(), cfg.predictor.clone()]);
    c.row(vec![
        "L1D/L2/L3".to_string(),
        format!(
            "{}KB/{}KB/{}MB",
            cfg.hierarchy.l1.size_bytes / 1024,
            cfg.hierarchy.l2.size_bytes / 1024,
            cfg.hierarchy.l3.size_bytes / 1024 / 1024
        ),
    ]);
    c.row(vec![
        "latencies L1/L2/L3/MEM".to_string(),
        format!(
            "{}/{}/{}/{}",
            cfg.hierarchy.l1_latency, cfg.hierarchy.l2_latency, cfg.hierarchy.l3_latency, cfg.hierarchy.mem_latency
        ),
    ]);
    c.row(vec!["L1 MSHRs".to_string(), cfg.hierarchy.l1_mshrs.to_string()]);
    c.row(vec!["BQ / VQ / TQ".to_string(), format!("{} / {} / {}", cfg.bq_size, cfg.vq_size, cfg.tq_size)]);

    let (bq, vq, tq) = cfd_storage_bytes(cfg.bq_size, cfg.vq_size, cfg.tq_size);
    let mut s = TextTable::new(vec!["structure", "storage (bytes)"]);
    s.row(vec!["BQ".to_string(), bq.to_string()]);
    s.row(vec!["VQ renamer".to_string(), vq.to_string()]);
    s.row(vec!["TQ (+TCR)".to_string(), tq.to_string()]);
    format!(
        "Table II — minimum fetch-to-execute latencies\n\n{}\n\
         Fig. 17a — baseline core configuration (Sandy-Bridge-like)\n\n{}\n\
         Fig. 17b — CFD storage overhead\n\n{}",
        t.render(),
        c.render(),
        s.render()
    )
}

/// Tables III/IV: dynamic-instruction overhead factors of every variant.
pub fn table3_4(engine: &Engine) -> String {
    let scale = profile_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog() {
        let hbase = batch.func(&entry.build(Variant::Base, scale));
        for &v in entry.variants {
            if v == Variant::Base {
                continue;
            }
            let hv = batch.func(&entry.build(v, scale));
            rows.push((entry.name, v, hbase, hv));
        }
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["kernel", "variant", "overhead (x base instructions)"]);
    for (name, v, hbase, hv) in rows {
        t.row(vec![name.to_string(), v.to_string(), format!("{:.2}", res[hv] as f64 / res[hbase] as f64)]);
    }
    format!(
        "Tables III/IV — instruction overhead factors of the modified binaries\n\
         (paper: CFD 1.01–1.86, DFD 1.01–1.36, CFD(TQ) 1.00–1.05)\n\n{}",
        t.render()
    )
}

/// Tables V/VI: the modified-region metadata (branches of interest, their
/// class, and dynamic execution shares).
pub fn table5_6(engine: &Engine) -> String {
    let scale = profile_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        if w.interest.is_empty() {
            continue;
        }
        let h = batch.profile(&w, "isl-tage", PROFILE_LIMIT);
        rows.push((entry.name, w, h));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["kernel", "branch", "class", "pc", "exec share", "miss rate"]);
    for (name, w, h) in &rows {
        let rep = &res[*h];
        for ib in &w.interest {
            let b = rep.per_branch.get(&ib.pc).cloned().unwrap_or_default();
            t.row(vec![
                name.to_string(),
                ib.what.to_string(),
                ib.class.to_string(),
                ib.pc.to_string(),
                format!("{:.1}%", 100.0 * b.executed as f64 / rep.instructions.max(1) as f64),
                format!("{:.3}", b.miss_rate()),
            ]);
        }
    }
    format!("Tables V/VI — targeted branches of the modified kernels\n\n{}", t.render())
}
