//! DFD and TQ results: Fig. 24 (DFD vs CFD), Fig. 25 (MSHR utilization &
//! misprediction-level shift), Fig. 26 (CFD+DFD), Fig. 27 (CFD(TQ)),
//! Fig. 28 (BQ/TQ/BQ+TQ).

use crate::runner::{default_scale, pct, ratio, relative_energy, Batch, TextTable};
use cfd_core::CoreConfig;
use cfd_exec::Engine;
use cfd_workloads::{by_name, Variant};

/// Kernels with high off-chip miss rates (the DFD targets).
const DFD_APPS: &[&str] = &["astar_r1_like", "astar_r2_like", "soplex_ref_like"];

/// Fig. 24: DFD vs CFD performance and energy.
pub fn fig24(engine: &Engine) -> String {
    let scale = default_scale();
    let cfg = CoreConfig::default();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for name in DFD_APPS {
        let entry = by_name(name).expect("in catalog");
        rows.push((
            name,
            batch.sim_variant(&entry, Variant::Base, scale, &cfg),
            batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
            batch.sim_variant(&entry, Variant::Dfd, scale, &cfg),
        ));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "CFD speedup", "DFD speedup", "CFD energy", "DFD energy"]);
    for (name, hb, hc, hd) in rows {
        let (base, cfd, dfd) = (&res[hb], &res[hc], &res[hd]);
        t.row(vec![
            name.to_string(),
            ratio(cfd.speedup_over(base)),
            ratio(dfd.speedup_over(base)),
            pct(relative_energy(cfd, base) - 1.0),
            pct(relative_energy(dfd, base) - 1.0),
        ]);
    }
    format!(
        "Fig. 24 — DFD vs CFD (paper: DFD up to +60% speed but CFD more\n\
         energy-efficient; CFD usually faster except astar BigLakes r1)\n\n{}",
        t.render()
    )
}

/// Fig. 25a: L1 MSHR occupancy histograms (summarized); Fig. 25b: the
/// misprediction-level shift under DFD.
pub fn fig25(engine: &Engine) -> String {
    let scale = default_scale();
    let entry = by_name("astar_r2_like").expect("in catalog");
    let variants = [Variant::Base, Variant::Cfd, Variant::Dfd];
    let mut batch = Batch::new(engine);
    let handles: Vec<_> =
        variants.iter().map(|&v| batch.sim_variant(&entry, v, scale, &CoreConfig::default())).collect();
    let res = batch.run();

    let mut a = TextTable::new(vec!["variant", "cycles@0", "cycles@1-10", "cycles@11-21", "cycles@22-32", "mean occ"]);
    let mut b = TextTable::new(vec!["variant", "NoData", "L1", "L2", "L3", "MEM"]);
    for (v, h) in variants.iter().zip(handles) {
        let rep = &res[h];
        let hist = &rep.mshr_histogram;
        let total: u64 = hist.iter().sum::<u64>().max(1);
        let seg = |lo: usize, hi: usize| {
            let s: u64 = hist.iter().enumerate().filter(|(k, _)| *k >= lo && *k <= hi).map(|(_, v)| *v).sum();
            format!("{:.1}%", 100.0 * s as f64 / total as f64)
        };
        let mean: f64 = hist.iter().enumerate().map(|(k, v)| k as f64 * *v as f64).sum::<f64>() / total as f64;
        a.row(vec![v.to_string(), seg(0, 0), seg(1, 10), seg(11, 21), seg(22, 32), format!("{mean:.2}")]);

        let by = rep.stats.mispredictions_by_level();
        let mtotal: u64 = by.iter().sum::<u64>().max(1);
        let cell = |x: u64| format!("{:.0}%", 100.0 * x as f64 / mtotal as f64);
        b.row(vec![v.to_string(), cell(by[0]), cell(by[1]), cell(by[2]), cell(by[3]), cell(by[4])]);
    }
    format!(
        "Fig. 25a — L1 MSHR occupancy (DFD shows denser miss clusters:\n\
         more cycles idle AND more cycles at high occupancy)\n\n{}\n\
         Fig. 25b — mispredictions by feeding level (DFD moves data closer)\n\n{}",
        a.render(),
        b.render()
    )
}

/// Fig. 26: DFD-only, CFD-only, and CFD+DFD together.
pub fn fig26(engine: &Engine) -> String {
    let scale = default_scale();
    let cfg = CoreConfig::default();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for name in DFD_APPS {
        let entry = by_name(name).expect("in catalog");
        rows.push((
            name,
            batch.sim_variant(&entry, Variant::Base, scale, &cfg),
            batch.sim_variant(&entry, Variant::Dfd, scale, &cfg),
            batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
            batch.sim_variant(&entry, Variant::CfdDfd, scale, &cfg),
        ));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "DFD only", "CFD only", "CFD+DFD"]);
    for (name, hb, hd, hc, hboth) in rows {
        let base = &res[hb];
        t.row(vec![
            name.to_string(),
            ratio(res[hd].speedup_over(base)),
            ratio(res[hc].speedup_over(base)),
            ratio(res[hboth].speedup_over(base)),
        ]);
    }
    format!("Fig. 26 — applying CFD and DFD simultaneously\n\n{}", t.render())
}

/// Fig. 27: CFD(TQ) on the separable loop-branch kernels.
pub fn fig27(engine: &Engine) -> String {
    let scale = default_scale();
    let cfg = CoreConfig::default();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for name in ["astar_tq_like", "bzip2_tq_like"] {
        let entry = by_name(name).expect("in catalog");
        rows.push((
            name,
            batch.sim_variant(&entry, Variant::Base, scale, &cfg),
            batch.sim_variant(&entry, Variant::CfdTq, scale, &cfg),
        ));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "CFD(TQ) speedup", "CFD(TQ) energy", "mispred. removed"]);
    for (name, hb, ht) in rows {
        let (base, tq) = (&res[hb], &res[ht]);
        t.row(vec![
            name.to_string(),
            ratio(tq.speedup_over(base)),
            pct(relative_energy(tq, base) - 1.0),
            format!("{:.0}%", 100.0 * (1.0 - tq.stats.mispredictions as f64 / base.stats.mispredictions.max(1) as f64)),
        ]);
    }
    format!("Fig. 27 — CFD(TQ) on separable loop-branches (paper: up to +5%, -6% energy)\n\n{}", t.render())
}

/// Fig. 28: BQ-only, TQ-only, and combined decoupling of the astar
/// loop-branch kernel (the paper finds super-additive gains).
pub fn fig28(engine: &Engine) -> String {
    let scale = default_scale();
    let entry = by_name("astar_tq_like").expect("in catalog");
    let cfg = CoreConfig::default();
    let variants = [Variant::CfdBq, Variant::CfdTq, Variant::CfdBqTq];
    let mut batch = Batch::new(engine);
    let hbase = batch.sim_variant(&entry, Variant::Base, scale, &cfg);
    let handles: Vec<_> = variants.iter().map(|&v| batch.sim_variant(&entry, v, scale, &cfg)).collect();
    let res = batch.run();

    let base = &res[hbase];
    let mut t = TextTable::new(vec!["variant", "speedup", "energy", "MPKI"]);
    t.row(vec!["base".to_string(), "1.00x".to_string(), "+0.0%".to_string(), format!("{:.2}", base.stats.mpki())]);
    let mut speedups = Vec::new();
    for (v, h) in variants.iter().zip(handles) {
        let rep = &res[h];
        let s = rep.speedup_over(base);
        speedups.push((v, s));
        t.row(vec![
            v.to_string(),
            ratio(s),
            pct(relative_energy(rep, base) - 1.0),
            format!("{:.2}", 1000.0 * rep.stats.mispredictions as f64 / base.stats.retired as f64),
        ]);
    }
    let (bq, tq, both) = (speedups[0].1, speedups[1].1, speedups[2].1);
    let additive = (bq - 1.0) + (tq - 1.0);
    format!(
        "Fig. 28 — CFD(BQ), CFD(TQ), CFD(BQ+TQ) on the astar loop-branch kernel\n\
         (paper: combined gains exceed the sum of the individual gains)\n\n{}\n\
         combined gain {:.3} vs sum of individual gains {:.3}\n",
        t.render(),
        both - 1.0,
        additive
    )
}
