//! The main CFD results: Fig. 18 (CFD/CFD+ speedup & energy), Fig. 19
//! (effective-IPC groups), Fig. 20 (BQ-size sensitivity), Fig. 21
//! (pipeline depth, window scaling, BQ-miss policy), Fig. 23 (astar window
//! catalyst).

use crate::runner::{default_scale, pct, ratio, relative_energy, sweep_scale, Batch, TextTable};
use cfd_core::{BqMissPolicy, CoreConfig, PerfectMode};
use cfd_exec::Engine;
use cfd_workloads::{by_name, catalog, AddressPattern, CdRegion, Predicate, ScanKernel, Suite, Variant};

/// Kernels evaluated for CFD(BQ) in Fig. 18/19 (separable-branch targets).
pub const CFD_APPS: &[&str] = &[
    "soplex_ref_like",
    "soplex_pds_like",
    "astar_r1_like",
    "astar_r2_like",
    "bzip2_like",
    "mcf_like",
    "gromacs_like",
    "namd_like",
    "eclat_like",
    "jpeg_like",
    "tiff2bw_like",
    "tiffmedian_like",
];

/// Fig. 18a/18b: CFD and CFD+ speedup and energy versus the baseline.
pub fn fig18(engine: &Engine) -> String {
    let scale = default_scale();
    let cfg = CoreConfig::default();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog().iter().filter(|e| CFD_APPS.contains(&e.name)) {
        let base = batch.sim_variant(entry, Variant::Base, scale, &cfg);
        let cfd = batch.sim_variant(entry, Variant::Cfd, scale, &cfg);
        let plus =
            entry.variants.contains(&Variant::CfdPlus).then(|| batch.sim_variant(entry, Variant::CfdPlus, scale, &cfg));
        rows.push((entry.name, base, cfd, plus));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "CFD speedup", "CFD energy", "CFD+ speedup", "CFD+ energy"]);
    let mut geo_cfd = 1.0f64;
    let mut count = 0u32;
    for (name, hb, hc, hp) in rows {
        let (base, cfd) = (&res[hb], &res[hc]);
        let (plus_speed, plus_energy) = match hp {
            Some(hp) => {
                let plus = &res[hp];
                (ratio(plus.speedup_over(base)), pct(relative_energy(plus, base) - 1.0))
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let s = cfd.speedup_over(base);
        geo_cfd *= s;
        count += 1;
        t.row(vec![name.to_string(), ratio(s), pct(relative_energy(cfd, base) - 1.0), plus_speed, plus_energy]);
    }
    let geomean = geo_cfd.powf(1.0 / count as f64);
    format!(
        "Fig. 18 — CFD and CFD+ performance and energy impact\n\
         (paper: up to +51% speed, -43% energy; average +16-17%)\n\n{}\nCFD geometric-mean speedup: {}\n",
        t.render(),
        ratio(geomean)
    )
}

/// Fig. 19: effective IPC of Base, CFD(+), Base+PerfectCFD, and full
/// perfect prediction — the paper's Group-1/2/3 comparison.
pub fn fig19(engine: &Engine) -> String {
    let scale = default_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for entry in catalog().iter().filter(|e| CFD_APPS.contains(&e.name)) {
        let w_base = entry.build(Variant::Base, scale);
        let base = batch.sim(&w_base, &CoreConfig::default());
        let cfd = batch.sim_variant(entry, Variant::Cfd, scale, &CoreConfig::default());
        // Base + PerfectCFD: only the targeted separable branches perfect.
        let pcfg = CoreConfig {
            perfect: PerfectMode::Pcs(w_base.interest.iter().map(|b| b.pc).collect()),
            ..Default::default()
        };
        let perfect_cfd = batch.sim(&w_base, &pcfg);
        let acfg = CoreConfig { perfect: PerfectMode::All, ..Default::default() };
        let perfect = batch.sim(&w_base, &acfg);
        rows.push((entry.name, base, cfd, perfect_cfd, perfect));
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["app", "Base", "CFD", "Base+PerfectCFD", "Perfect", "group"]);
    for (name, hb, hc, hpc, hp) in rows {
        let base = &res[hb];
        let baseline_instrs = base.stats.retired;
        let (e_cfd, e_pcfd) = (res[hc].effective_ipc(baseline_instrs), res[hpc].effective_ipc(baseline_instrs));
        let group = if e_cfd < 0.97 * e_pcfd {
            "1 (overheads bite)"
        } else if e_cfd <= 1.03 * e_pcfd {
            "2 (overheads tolerated)"
        } else {
            "3 (beats PerfectCFD)"
        };
        t.row(vec![
            name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:.3}", e_cfd),
            format!("{:.3}", e_pcfd),
            format!("{:.3}", res[hp].effective_ipc(baseline_instrs)),
            group.to_string(),
        ]);
    }
    format!(
        "Fig. 19 — effective IPC: CFD vs idealized prediction of the same branches\n\
         (effective IPC = baseline instructions / scheme cycles)\n\n{}",
        t.render()
    )
}

/// BQ-size sensitivity (§III-B strip mining): the same kernel decoupled
/// with matching chunk sizes on cores with matching BQ sizes.
pub fn fig20(engine: &Engine) -> String {
    let scale = sweep_scale();
    let mut batch = Batch::new(engine);
    let base_entry = by_name("soplex_ref_like").expect("in catalog");
    let hbase = batch.sim_variant(&base_entry, Variant::Base, scale, &CoreConfig::default());
    let mut rows = Vec::new();
    for bq in [16i64, 32, 64, 128] {
        let kernel = ScanKernel {
            name: "soplex_ref_like",
            suite: Suite::Spec2006,
            pattern: AddressPattern::Streaming,
            predicate: Predicate::Threshold { threshold: 35, range: 100 },
            cd: CdRegion { alu_updates: 6, stores: true },
            chunk: bq,
            partial_feedback: false,
            what: "test[i] < theeps",
        };
        let w = kernel.build(Variant::Cfd, scale);
        let cfg = CoreConfig { bq_size: bq as usize, ..Default::default() };
        rows.push((bq, batch.sim(&w, &cfg)));
    }
    let res = batch.run();

    let base = &res[hbase];
    let mut t = TextTable::new(vec!["BQ size", "speedup over base", "BQ push-stall cycles"]);
    for (bq, h) in rows {
        let rep = &res[h];
        t.row(vec![bq.to_string(), ratio(rep.speedup_over(base)), rep.stats.bq_push_stall_cycles.to_string()]);
    }
    format!(
        "Fig. 20 — BQ size sensitivity (strip-mining chunk = BQ size)\n\
         (small BQs shrink the fetch separation and add strip-mining overhead)\n\n{}",
        t.render()
    )
}

/// Fig. 21a: pipeline-depth sensitivity; Fig. 21b: window scaling;
/// Fig. 21c: BQ-miss policy (speculate vs stall).
pub fn fig21(engine: &Engine) -> String {
    let scale = sweep_scale();
    let apps = ["soplex_ref_like", "astar_r2_like", "gromacs_like"];
    let mut batch = Batch::new(engine);

    // (a) depth sweep.
    let mut a_rows = Vec::new();
    for depth in [5u32, 10, 15, 20] {
        let cfg = CoreConfig { front_depth: depth - 2, ..Default::default() };
        let mut pairs = Vec::new();
        for name in apps {
            let entry = by_name(name).expect("in catalog");
            pairs.push((
                batch.sim_variant(&entry, Variant::Base, scale, &cfg),
                batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
            ));
        }
        a_rows.push((depth, pairs));
    }

    // (b) window scaling.
    let mut b_rows = Vec::new();
    for rob in [168usize, 256, 512] {
        let cfg = CoreConfig::default().with_window(rob);
        let mut pairs = Vec::new();
        for name in apps {
            let entry = by_name(name).expect("in catalog");
            pairs.push((
                batch.sim_variant(&entry, Variant::Base, scale, &cfg),
                batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
            ));
        }
        b_rows.push((rob, pairs));
    }

    // (c) speculate vs stall on BQ miss; tiff2bw is the outlier.
    let stall_cfg = CoreConfig { bq_miss_policy: BqMissPolicy::Stall, ..Default::default() };
    let mut c_rows = Vec::new();
    for name in ["soplex_ref_like", "gromacs_like", "tiff2bw_like"] {
        let entry = by_name(name).expect("in catalog");
        c_rows.push((
            name,
            batch.sim_variant(&entry, Variant::Base, scale, &CoreConfig::default()),
            batch.sim_variant(&entry, Variant::Cfd, scale, &CoreConfig::default()),
            batch.sim_variant(&entry, Variant::Cfd, scale, &stall_cfg),
        ));
    }
    let res = batch.run();

    let hmean_row = |pairs: &[(crate::runner::Handle, crate::runner::Handle)]| {
        let mut hb = 0.0;
        let mut hc = 0.0;
        for &(b, c) in pairs {
            let base = &res[b];
            hb += 1.0 / base.ipc();
            hc += 1.0 / res[c].effective_ipc(base.stats.retired);
        }
        (apps.len() as f64 / hb, apps.len() as f64 / hc)
    };

    let mut a = TextTable::new(vec!["fetch-to-execute", "base IPC (hmean)", "CFD IPC (hmean)", "CFD speedup"]);
    for (depth, pairs) in &a_rows {
        let (hb, hc) = hmean_row(pairs);
        a.row(vec![depth.to_string(), format!("{hb:.3}"), format!("{hc:.3}"), ratio(hc / hb)]);
    }

    let mut b = TextTable::new(vec!["ROB", "base IPC (hmean)", "CFD IPC (hmean)", "CFD speedup"]);
    for (rob, pairs) in &b_rows {
        let (hb, hc) = hmean_row(pairs);
        b.row(vec![rob.to_string(), format!("{hb:.3}"), format!("{hc:.3}"), ratio(hc / hb)]);
    }

    let mut c = TextTable::new(vec!["app", "BQ miss rate", "CFD(spec) IPC", "CFD(stall) IPC"]);
    for (name, hb, hs, hst) in c_rows {
        let (base, spec, stall) = (&res[hb], &res[hs], &res[hst]);
        let pops = spec.stats.bq_hits + spec.stats.bq_misses;
        c.row(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * spec.stats.bq_misses as f64 / pops.max(1) as f64),
            format!("{:.3}", spec.effective_ipc(base.stats.retired)),
            format!("{:.3}", stall.effective_ipc(base.stats.retired)),
        ]);
    }

    format!(
        "Fig. 21a — pipeline-depth sensitivity (CFD insensitive to depth)\n\n{}\n\
         Fig. 21b — window scaling of CFD gains\n\n{}\n\
         Fig. 21c — BQ-miss policy: speculate vs stall (hoist-only tiff-2-bw suffers)\n\n{}",
        a.render(),
        b.render(),
        c.render()
    )
}

/// Fig. 23: astar effective IPC vs window size — CFD as the latency-
/// tolerance catalyst.
pub fn fig23(engine: &Engine) -> String {
    let scale = sweep_scale();
    let mut batch = Batch::new(engine);
    let mut rows = Vec::new();
    for name in ["astar_r1_like", "astar_r2_like"] {
        let entry = by_name(name).expect("in catalog");
        for rob in [168usize, 320, 640] {
            let cfg = CoreConfig::default().with_window(rob);
            rows.push((
                name,
                rob,
                batch.sim_variant(&entry, Variant::Base, scale, &cfg),
                batch.sim_variant(&entry, Variant::Cfd, scale, &cfg),
            ));
        }
    }
    let res = batch.run();

    let mut t = TextTable::new(vec!["kernel", "ROB", "base IPC", "CFD eff. IPC", "speedup"]);
    for (name, rob, hb, hc) in rows {
        let base = &res[hb];
        let e = res[hc].effective_ipc(base.stats.retired);
        t.row(vec![
            name.to_string(),
            rob.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{e:.3}"),
            ratio(e / base.ipc()),
        ]);
    }
    format!(
        "Fig. 23 — astar: CFD speedup grows with window size\n\
         (paper: region #2 speedup 1.51 -> 1.91 from ROB 168 to 640)\n\n{}",
        t.render()
    )
}
