//! The `experiments lint` backend: runs the static CFD queue-discipline
//! verifier ([`cfd_analysis::lint_program`]) over every workload in the
//! catalog (every supported variant) and over the automatic transform
//! outputs, and renders the findings as a fixed-width table plus
//! deterministic JSON.
//!
//! A clean sweep is the translation-validation half of DESIGN.md §9: the
//! hand-written kernels and the `apply_cfd`/`apply_cfd_tq` rewrites all
//! obey the queue discipline the simulator enforces dynamically.

use cfd_analysis::{apply_cfd, apply_cfd_tq, lint_program, LintConfig, LintReport, Severity};
use cfd_isa::{Assembler, Program, Reg};
use cfd_workloads::{catalog, PaperClass, Scale, Variant};

/// One linted program: where it came from and what the verifier said.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Catalog kernel name, or the transform-validation pseudo-kernel.
    pub kernel: String,
    /// Variant label (catalog) or transform name.
    pub variant: String,
    /// The verifier's findings and proved bounds.
    pub report: LintReport,
}

/// Lints every `(kernel, variant)` pair in the catalog at `scale`.
///
/// The scale only affects constants baked into the programs (trip
/// counts); the verifier itself is static, so any scale exercises the
/// same code shape.
pub fn lint_catalog(scale: Scale) -> Vec<LintRow> {
    let config = LintConfig::default();
    let mut rows = Vec::new();
    for entry in catalog() {
        for &variant in entry.variants {
            let w = entry.build(variant, scale);
            rows.push(LintRow {
                kernel: entry.name.to_string(),
                variant: variant.label().to_string(),
                report: lint_program(&w.program, &config),
            });
        }
    }
    rows
}

/// Lints the outputs of the automatic decoupling transforms: each
/// [`cfd_analysis::TransformReport`] already carries the lint verdict
/// of its rewritten program (translation validation), so the rows here
/// simply surface those verdicts — one per `(kernel, chunk)` pair — for
/// the canonical separable kernel and loop-branch nest, plus every
/// catalog base kernel whose branch of interest the transform accepts.
pub fn lint_transforms() -> Vec<LintRow> {
    let scratch: Vec<Reg> = (28..32).map(Reg::new).collect();
    let mut rows = Vec::new();

    let (program, bpc) = canonical_separable_kernel();
    for chunk in [8usize, 128] {
        let t = apply_cfd(&program, bpc, chunk, &scratch).expect("canonical kernel transforms");
        rows.push(LintRow {
            kernel: "canonical_separable".to_string(),
            variant: format!("apply_cfd/{chunk}"),
            report: t.lint,
        });
    }
    let (program, bpc) = canonical_loop_branch_kernel();
    for tq in [64usize, 256] {
        let t = apply_cfd_tq(&program, bpc, tq, &scratch).expect("canonical nest transforms");
        rows.push(LintRow {
            kernel: "canonical_loop_branch".to_string(),
            variant: format!("apply_cfd_tq/{tq}"),
            report: t.lint,
        });
    }

    // Catalog base kernels: transform wherever the branch of interest
    // matches the canonical shape the pass accepts.
    for entry in catalog() {
        let w = entry.build(Variant::Base, Scale { n: 400, seed: 9 });
        for ib in &w.interest {
            let t = match ib.class {
                PaperClass::SeparableTotal | PaperClass::SeparablePartial => {
                    apply_cfd(&w.program, ib.pc, 128, &scratch)
                }
                PaperClass::SeparableLoopBranch => apply_cfd_tq(&w.program, ib.pc, 256, &scratch),
                _ => continue,
            };
            if let Ok(t) = t {
                rows.push(LintRow {
                    kernel: entry.name.to_string(),
                    variant: format!("auto@pc{}", ib.pc),
                    report: t.lint,
                });
            }
        }
    }
    rows
}

/// The canonical totally separable kernel `apply_cfd` is specified
/// against: a streaming threshold scan with a 6-instruction
/// control-dependent region disjoint from the predicate slice.
fn canonical_separable_kernel() -> (Program, u32) {
    let r = Reg::new;
    let (i, n, base, eps, x, p, sum, cnt) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut a = Assembler::new();
    a.li(n, 1000);
    a.li(base, 0x1000);
    a.li(eps, 500);
    a.label("top");
    a.sll(r(9), i, 3i64);
    a.add(r(9), r(9), base);
    a.ld(x, 0, r(9));
    a.slt(p, x, eps);
    let bpc = a.here();
    a.beqz(p, "skip");
    a.add(sum, sum, x);
    a.addi(cnt, cnt, 1);
    a.xor(r(10), sum, cnt);
    a.add(r(11), r(11), r(10));
    a.sub(r(12), r(11), sum);
    a.add(r(12), r(12), 7i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    (a.finish().expect("canonical kernel assembles"), bpc)
}

/// The canonical separable loop-branch nest `apply_cfd_tq` is
/// specified against: an outer loop whose inner trip count is loaded
/// per iteration.
fn canonical_loop_branch_kernel() -> (Program, u32) {
    let r = Reg::new;
    let (i, n, base, m, j, acc) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let mut a = Assembler::new();
    a.li(n, 500);
    a.li(base, 0x1000);
    a.label("outer");
    a.sll(r(9), i, 3i64);
    a.add(r(9), r(9), base);
    a.ld(m, 0, r(9));
    a.li(j, 0);
    a.j("test");
    a.label("body");
    a.add(acc, acc, j);
    a.addi(j, j, 1);
    a.label("test");
    let bpc = a.here();
    a.blt(j, m, "body");
    a.addi(i, i, 1);
    a.blt(i, n, "outer");
    a.halt();
    (a.finish().expect("canonical nest assembles"), bpc)
}

/// Renders lint rows as a fixed-width table.
pub fn table(rows: &[LintRow]) -> String {
    let mut out = String::new();
    let b = |x: Option<u64>| x.map_or("unbounded".to_string(), |v| v.to_string());
    out.push_str(&format!(
        "{:<18} {:<12} {:<8} {:>6} {:>6} {:>6}  findings\n",
        "kernel", "variant", "verdict", "bq", "vq", "tq"
    ));
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "{:<18} {:<12} {:<8} {:>6} {:>6} {:>6}  {}\n",
            r.kernel,
            r.variant,
            if rep.clean() { "clean" } else { "ERROR" },
            b(rep.bounds.bq),
            b(rep.bounds.vq),
            b(rep.bounds.tq),
            rep.diagnostics.len(),
        ));
        for d in &rep.diagnostics {
            if d.severity >= Severity::Warning {
                out.push_str(&format!("    {d}\n"));
            }
        }
    }
    out
}

/// Deterministic JSON rendering of lint rows.
pub fn to_json(rows: &[LintRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"kernel\":\"{}\",\"variant\":\"{}\",\"report\":{}}}",
            r.kernel,
            r.variant,
            r.report.to_json()
        ));
    }
    s.push(']');
    s
}

/// Total error-severity findings across all rows.
pub fn error_count(rows: &[LintRow]) -> usize {
    rows.iter().map(|r| r.report.error_count()).sum()
}

/// Runs the full sweep (catalog + transforms) at a small scale.
pub fn lint_all() -> Vec<LintRow> {
    let mut rows = lint_catalog(Scale { n: 400, seed: 9 });
    rows.extend(lint_transforms());
    rows
}

/// The variants the catalog exercises, for reference in reports.
pub fn variant_universe() -> Vec<Variant> {
    let mut vs = Vec::new();
    for entry in catalog() {
        for &v in entry.variants {
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
    }
    vs
}
