//! The `experiments lint` backend: runs the static CFD queue-discipline
//! verifier ([`cfd_analysis::lint_program`]) over every workload in the
//! catalog (every supported variant) and over the automatic transform
//! outputs, and renders the findings as a fixed-width table plus
//! deterministic JSON.
//!
//! A clean sweep is the translation-validation half of DESIGN.md §9: the
//! hand-written kernels and the `apply_cfd`/`apply_cfd_tq`/`apply_cfd_spec`
//! rewrites all obey the queue discipline (and, for speculative rewrites,
//! the speculation contract) the simulator enforces dynamically. Each row
//! also carries the static per-branch class table of its source program.

use cfd_analysis::{
    apply_cfd, apply_cfd_spec, apply_cfd_tq, classify_program, lint_program, BranchClass, ClassifyConfig, Diagnostic,
    LintConfig, LintReport, QueueBounds, Rule, Severity,
};
use cfd_exec::{CampaignJob, Engine, Fingerprint, Hasher, Json};
use cfd_isa::{Assembler, Program, QueueKind, Reg};
use cfd_workloads::{catalog, PaperClass, Scale, Variant};

/// One linted program: where it came from and what the verifier said.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Catalog kernel name, or the transform-validation pseudo-kernel.
    pub kernel: String,
    /// Variant label (catalog) or transform name.
    pub variant: String,
    /// Per-branch class of every analyzed branch in the row's *source*
    /// program, as `(pc, class)` pairs in PC order.
    pub classes: Vec<(u32, String)>,
    /// The verifier's findings and proved bounds.
    pub report: LintReport,
}

/// Classifies every branch of `program` and keeps the analyzed ones as
/// `(pc, class-display)` pairs. Computed at row-assembly time — never
/// inside a cached engine job — so the lint cache format is untouched.
fn branch_classes(program: &Program) -> Vec<(u32, String)> {
    classify_program(program, None, ClassifyConfig::default())
        .into_iter()
        .filter(|r| r.class != BranchClass::NotAnalyzed)
        .map(|r| (r.pc, r.class.to_string()))
        .collect()
}

/// Lints every `(kernel, variant)` pair in the catalog at `scale`.
///
/// The scale only affects constants baked into the programs (trip
/// counts); the verifier itself is static, so any scale exercises the
/// same code shape.
pub fn lint_catalog(scale: Scale) -> Vec<LintRow> {
    let config = LintConfig::default();
    let mut rows = Vec::new();
    for entry in catalog() {
        for &variant in entry.variants {
            let w = entry.build(variant, scale);
            rows.push(LintRow {
                kernel: entry.name.to_string(),
                variant: variant.label().to_string(),
                classes: branch_classes(&w.program),
                report: lint_program(&w.program, &config),
            });
        }
    }
    rows
}

/// Lints the outputs of the automatic decoupling transforms: each
/// [`cfd_analysis::TransformReport`] already carries the lint verdict
/// of its rewritten program (translation validation), so the rows here
/// simply surface those verdicts — one per `(kernel, chunk)` pair — for
/// the canonical separable kernel and loop-branch nest, plus every
/// catalog base kernel whose branch of interest the transform accepts.
pub fn lint_transforms() -> Vec<LintRow> {
    let scratch: Vec<Reg> = (28..32).map(Reg::new).collect();
    let mut rows = Vec::new();

    let (program, bpc) = canonical_separable_kernel();
    for chunk in [8usize, 128] {
        let t = apply_cfd(&program, bpc, chunk, &scratch).expect("canonical kernel transforms");
        rows.push(LintRow {
            kernel: "canonical_separable".to_string(),
            variant: format!("apply_cfd/{chunk}"),
            classes: branch_classes(&program),
            report: t.lint,
        });
    }
    let (program, bpc) = canonical_loop_branch_kernel();
    for tq in [64usize, 256] {
        let t = apply_cfd_tq(&program, bpc, tq, &scratch).expect("canonical nest transforms");
        rows.push(LintRow {
            kernel: "canonical_loop_branch".to_string(),
            variant: format!("apply_cfd_tq/{tq}"),
            classes: branch_classes(&program),
            report: t.lint,
        });
    }

    // Catalog base kernels: transform wherever the branch of interest
    // matches the canonical shape the pass accepts.
    for entry in catalog() {
        let w = entry.build(Variant::Base, Scale { n: 400, seed: 9 });
        for ib in &w.interest {
            let t = match ib.class {
                PaperClass::SeparableTotal | PaperClass::SeparablePartial => {
                    apply_cfd(&w.program, ib.pc, 128, &scratch)
                }
                PaperClass::SeparableLoopBranch => apply_cfd_tq(&w.program, ib.pc, 256, &scratch),
                PaperClass::SpeculativelySeparable => {
                    apply_cfd_spec(&w.program, ib.pc, 128, 256, &scratch).map(|s| s.report)
                }
                _ => continue,
            };
            if let Ok(t) = t {
                rows.push(LintRow {
                    kernel: entry.name.to_string(),
                    variant: format!("auto@pc{}", ib.pc),
                    classes: branch_classes(&w.program),
                    report: t.lint,
                });
            }
        }
    }
    rows
}

/// The canonical totally separable kernel `apply_cfd` is specified
/// against: a streaming threshold scan with a 6-instruction
/// control-dependent region disjoint from the predicate slice.
fn canonical_separable_kernel() -> (Program, u32) {
    let r = Reg::new;
    let (i, n, base, eps, x, p, sum, cnt) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut a = Assembler::new();
    a.li(n, 1000);
    a.li(base, 0x1000);
    a.li(eps, 500);
    a.label("top");
    a.sll(r(9), i, 3i64);
    a.add(r(9), r(9), base);
    a.ld(x, 0, r(9));
    a.slt(p, x, eps);
    let bpc = a.here();
    a.beqz(p, "skip");
    a.add(sum, sum, x);
    a.addi(cnt, cnt, 1);
    a.xor(r(10), sum, cnt);
    a.add(r(11), r(11), r(10));
    a.sub(r(12), r(11), sum);
    a.add(r(12), r(12), 7i64);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, n, "top");
    a.halt();
    (a.finish().expect("canonical kernel assembles"), bpc)
}

/// The canonical separable loop-branch nest `apply_cfd_tq` is
/// specified against: an outer loop whose inner trip count is loaded
/// per iteration.
fn canonical_loop_branch_kernel() -> (Program, u32) {
    let r = Reg::new;
    let (i, n, base, m, j, acc) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let mut a = Assembler::new();
    a.li(n, 500);
    a.li(base, 0x1000);
    a.label("outer");
    a.sll(r(9), i, 3i64);
    a.add(r(9), r(9), base);
    a.ld(m, 0, r(9));
    a.li(j, 0);
    a.j("test");
    a.label("body");
    a.add(acc, acc, j);
    a.addi(j, j, 1);
    a.label("test");
    let bpc = a.here();
    a.blt(j, m, "body");
    a.addi(i, i, 1);
    a.blt(i, n, "outer");
    a.halt();
    (a.finish().expect("canonical nest assembles"), bpc)
}

/// Renders lint rows as a fixed-width table.
pub fn table(rows: &[LintRow]) -> String {
    let mut out = String::new();
    let b = |x: Option<u64>| x.map_or("unbounded".to_string(), |v| v.to_string());
    out.push_str(&format!(
        "{:<18} {:<12} {:<8} {:>6} {:>6} {:>6}  findings\n",
        "kernel", "variant", "verdict", "bq", "vq", "tq"
    ));
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "{:<18} {:<12} {:<8} {:>6} {:>6} {:>6}  {}\n",
            r.kernel,
            r.variant,
            if rep.clean() { "clean" } else { "ERROR" },
            b(rep.bounds.bq),
            b(rep.bounds.vq),
            b(rep.bounds.tq),
            rep.diagnostics.len(),
        ));
        for d in &rep.diagnostics {
            if d.severity >= Severity::Warning {
                out.push_str(&format!("    {d}\n"));
            }
        }
    }
    out
}

/// Deterministic JSON rendering of lint rows.
pub fn to_json(rows: &[LintRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let classes: Vec<String> =
            r.classes.iter().map(|(pc, c)| format!("{{\"pc\":{pc},\"class\":\"{c}\"}}")).collect();
        s.push_str(&format!(
            "{{\"kernel\":\"{}\",\"variant\":\"{}\",\"classes\":[{}],\"report\":{}}}",
            r.kernel,
            r.variant,
            classes.join(","),
            r.report.to_json()
        ));
    }
    s.push(']');
    s
}

/// Total error-severity findings across all rows.
pub fn error_count(rows: &[LintRow]) -> usize {
    rows.iter().map(|r| r.report.error_count()).sum()
}

/// Runs the full sweep (catalog + transforms) at a small scale.
pub fn lint_all() -> Vec<LintRow> {
    let mut rows = lint_catalog(Scale { n: 400, seed: 9 });
    rows.extend(lint_transforms());
    rows
}

/// What a [`LintJob`] does to its program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintOp {
    /// Lint the program as-is.
    Lint,
    /// Run `apply_cfd` at `pc` with `chunk`, then report the rewrite's
    /// lint verdict. Produces no row when the transform rejects.
    ApplyCfd {
        /// The branch of interest.
        pc: u32,
        /// Strip-mining chunk size.
        chunk: usize,
    },
    /// Run `apply_cfd_tq` at `pc` with trip-count chunk `tq`.
    ApplyCfdTq {
        /// The loop-branch of interest.
        pc: u32,
        /// Trip-count chunk size.
        tq: usize,
    },
    /// Run the automatic selector `apply_cfd_spec` at `pc` and report
    /// the chosen rewrite's lint verdict (which, for a speculative
    /// decision, includes the speculation-contract diagnostics).
    ApplyCfdSpec {
        /// The branch of interest.
        pc: u32,
        /// Strip-mining chunk size for the BQ rewrites.
        chunk: usize,
        /// Trip-count chunk size for the TQ rewrite.
        tq: usize,
    },
}

/// One unit of lint work for the campaign engine: a program plus what to
/// do with it. The output is `None` when a transform op rejects the
/// program (no row is emitted for it).
#[derive(Debug, Clone)]
pub struct LintJob {
    /// Catalog kernel name or transform-validation pseudo-kernel.
    pub kernel: String,
    /// Variant label or transform name.
    pub variant: String,
    /// The program to lint or rewrite.
    pub program: Program,
    /// What to do.
    pub op: LintOp,
}

/// Scratch registers the transform jobs hand to the rewrite passes
/// (matches [`lint_transforms`]).
fn transform_scratch() -> Vec<Reg> {
    (28..32).map(Reg::new).collect()
}

impl CampaignJob for LintJob {
    type Output = Option<LintReport>;

    fn kind(&self) -> &'static str {
        "lint"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.section("program", &self.program.stable_bytes());
        h.section("op", format!("{:?}", self.op).as_bytes());
        h.section("config", format!("{:?}", LintConfig::default()).as_bytes());
        h.finish()
    }

    fn describe(&self) -> String {
        format!("lint {} [{}]", self.kernel, self.variant)
    }

    fn execute(&self) -> Option<LintReport> {
        let scratch = transform_scratch();
        match self.op {
            LintOp::Lint => Some(lint_program(&self.program, &LintConfig::default())),
            LintOp::ApplyCfd { pc, chunk } => apply_cfd(&self.program, pc, chunk, &scratch).ok().map(|t| t.lint),
            LintOp::ApplyCfdTq { pc, tq } => apply_cfd_tq(&self.program, pc, tq, &scratch).ok().map(|t| t.lint),
            LintOp::ApplyCfdSpec { pc, chunk, tq } => {
                apply_cfd_spec(&self.program, pc, chunk, tq, &scratch).ok().map(|s| s.report.lint)
            }
        }
    }

    fn result_to_json(out: &Option<LintReport>) -> String {
        match out {
            None => "{\"ok\":false}".to_string(),
            Some(r) => format!("{{\"ok\":true,\"report\":{}}}", r.to_json()),
        }
    }

    fn result_from_json(&self, v: &Json) -> Option<Option<LintReport>> {
        if !v.get("ok")?.as_bool()? {
            return Some(None);
        }
        Some(Some(report_from_json(v.get("report")?)?))
    }
}

/// Reconstructs a [`LintReport`] from the JSON its `to_json` emits.
fn report_from_json(v: &Json) -> Option<LintReport> {
    let b = v.get("bounds")?;
    let bounds =
        QueueBounds { bq: b.get("bq")?.as_opt_u64()?, vq: b.get("vq")?.as_opt_u64()?, tq: b.get("tq")?.as_opt_u64()? };
    let mut diagnostics = Vec::new();
    for d in v.get("diagnostics")?.as_arr()? {
        let queue = match d.get("queue")? {
            Json::Null => None,
            q => Some(queue_by_name(q.as_str()?)?),
        };
        let opt_str = |key: &str| -> Option<Option<String>> {
            match d.get(key)? {
                Json::Null => Some(None),
                s => Some(Some(s.as_str()?.to_string())),
            }
        };
        diagnostics.push(Diagnostic {
            rule: rule_by_name(d.get("rule")?.as_str()?)?,
            severity: severity_by_name(d.get("severity")?.as_str()?)?,
            queue,
            pc: d.get("pc")?.as_opt_u64()?.map(|pc| pc as u32),
            label: opt_str("label")?,
            annotation: opt_str("annotation")?,
            message: d.get("message")?.as_str()?.to_string(),
        });
    }
    Some(LintReport { diagnostics, bounds })
}

fn rule_by_name(name: &str) -> Option<Rule> {
    [
        Rule::Overflow,
        Rule::UnboundedOccupancy,
        Rule::Underflow,
        Rule::UnbalancedAtExit,
        Rule::ForwardWithoutMark,
        Rule::BranchTcrWithoutTrip,
        Rule::PushTqInTcrLoop,
        Rule::RestoreWithoutSave,
        Rule::IrreducibleCfg,
        Rule::UnreachableCode,
        Rule::AnalysisDegraded,
        Rule::HoistedStore,
        Rule::HoistedUnsafeLoad,
    ]
    .into_iter()
    .find(|r| r.name() == name)
}

fn severity_by_name(name: &str) -> Option<Severity> {
    [Severity::Info, Severity::Warning, Severity::Error].into_iter().find(|s| s.name() == name)
}

fn queue_by_name(name: &str) -> Option<QueueKind> {
    [QueueKind::Bq, QueueKind::Vq, QueueKind::Tq].into_iter().find(|q| q.name() == name)
}

/// Enumerates the full lint sweep — catalog then transforms, in exactly
/// the order [`lint_all`] visits them — as engine jobs.
pub fn lint_jobs() -> Vec<LintJob> {
    let scale = Scale { n: 400, seed: 9 };
    let mut jobs = Vec::new();
    for entry in catalog() {
        for &variant in entry.variants {
            let w = entry.build(variant, scale);
            jobs.push(LintJob {
                kernel: entry.name.to_string(),
                variant: variant.label().to_string(),
                program: w.program,
                op: LintOp::Lint,
            });
        }
    }
    let (program, bpc) = canonical_separable_kernel();
    for chunk in [8usize, 128] {
        jobs.push(LintJob {
            kernel: "canonical_separable".to_string(),
            variant: format!("apply_cfd/{chunk}"),
            program: program.clone(),
            op: LintOp::ApplyCfd { pc: bpc, chunk },
        });
    }
    let (program, bpc) = canonical_loop_branch_kernel();
    for tq in [64usize, 256] {
        jobs.push(LintJob {
            kernel: "canonical_loop_branch".to_string(),
            variant: format!("apply_cfd_tq/{tq}"),
            program: program.clone(),
            op: LintOp::ApplyCfdTq { pc: bpc, tq },
        });
    }
    for entry in catalog() {
        let w = entry.build(Variant::Base, scale);
        for ib in &w.interest {
            let op = match ib.class {
                PaperClass::SeparableTotal | PaperClass::SeparablePartial => LintOp::ApplyCfd { pc: ib.pc, chunk: 128 },
                PaperClass::SeparableLoopBranch => LintOp::ApplyCfdTq { pc: ib.pc, tq: 256 },
                PaperClass::SpeculativelySeparable => LintOp::ApplyCfdSpec { pc: ib.pc, chunk: 128, tq: 256 },
                _ => continue,
            };
            jobs.push(LintJob {
                kernel: entry.name.to_string(),
                variant: format!("auto@pc{}", ib.pc),
                program: w.program.clone(),
                op,
            });
        }
    }
    jobs
}

/// Runs the full lint sweep through the campaign engine. Produces the
/// exact rows [`lint_all`] produces, in the same order, at any worker
/// count; transform jobs whose rewrite rejects contribute no row.
pub fn lint_all_on(engine: &Engine) -> Vec<LintRow> {
    let jobs = lint_jobs();
    let results = engine.run_all(&jobs);
    jobs.iter()
        .zip(results)
        .filter_map(|(job, res)| {
            let report = match res {
                Ok(out) => out?,
                Err(e) => panic!("{} failed: {e}", job.describe()),
            };
            Some(LintRow {
                kernel: job.kernel.clone(),
                variant: job.variant.clone(),
                classes: branch_classes(&job.program),
                report,
            })
        })
        .collect()
}

/// The variants the catalog exercises, for reference in reports.
pub fn variant_universe() -> Vec<Variant> {
    let mut vs = Vec::new();
    for entry in catalog() {
        for &v in entry.variants {
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
    }
    vs
}
