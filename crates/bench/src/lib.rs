//! # cfd-bench — the experiment harness
//!
//! Regenerates every table and figure of the CFD paper's evaluation on the
//! `cfd-core` simulator and the `cfd-workloads` kernels. See DESIGN.md §4
//! for the experiment-to-module index and EXPERIMENTS.md for recorded
//! paper-vs-measured results.
//!
//! Run experiments with:
//!
//! ```text
//! cargo run --release -p cfd-bench --bin experiments -- list
//! cargo run --release -p cfd-bench --bin experiments -- fig18
//! cargo run --release -p cfd-bench --bin experiments -- all
//! ```
//!
//! Criterion microbenchmarks of the simulator's own structures live in
//! `benches/microbench.rs` (`cargo bench -p cfd-bench`).

pub mod ckpt;
pub mod experiments;
pub mod lint;
pub mod observe;
pub mod runner;
pub mod separability;
pub mod simperf;

pub use experiments::{all, by_id, Experiment};
