//! `experiments ckpt`: full-scale checkpoint-determinism sweep.
//!
//! For every catalog workload this runs the simulation twice: once
//! uninterrupted, and once interrupted at each quarter of the
//! uninterrupted cycle count — checkpointed, restored into a fresh
//! [`Core`], and driven to completion. The restored run's [`RunReport`]
//! must serialize byte-for-byte identically to the straight run's; any
//! divergence means checkpoint/restore is not capturing the full
//! microarchitectural state.
//!
//! The straight and restored JSON lines are the gate artifact: verify.sh
//! `cmp`s `artifacts/ckpt_straight.json` against
//! `artifacts/ckpt_restored.json`, so the determinism contract is checked
//! both in-process (exit code) and as a byte-level file diff.

use crate::runner::CYCLE_LIMIT;
use cfd_core::{Core, CoreConfig, CoreError, KernelEvent, RunReport, YieldPolicy};
use cfd_exec::run_report_to_json;
use cfd_workloads::{catalog, Scale, Variant, Workload};

/// Outcome of one workload's straight-vs-restored comparison.
pub struct CkptRow {
    /// Kernel name.
    pub name: &'static str,
    /// Variant exercised (base when supported, as in simperf).
    pub variant: Variant,
    /// Uninterrupted run length in cycles.
    pub cycles: u64,
    /// Cycles at which the run was checkpointed and restored.
    pub restore_points: Vec<u64>,
    /// Straight run serialized as one JSON line.
    pub straight_json: String,
    /// The quarter-point restored run serialized the same way (the last
    /// quarter's line; all quarters are compared).
    pub restored_json: String,
    /// Quarter points whose restored run diverged from the straight run.
    pub mismatched_at: Vec<u64>,
}

impl CkptRow {
    /// True when every quarter-point round trip reproduced the straight run.
    pub fn ok(&self) -> bool {
        self.mismatched_at.is_empty()
    }
}

fn run_straight(wl: &Workload) -> RunReport {
    Core::new(CoreConfig::default(), wl.program.clone(), wl.mem.clone())
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", wl.name, wl.variant))
        .run(CYCLE_LIMIT)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", wl.name, wl.variant))
}

/// Runs `wl` to cycle `at`, checkpoints, restores into a fresh core, and
/// drives the restored core to completion.
fn run_restored(wl: &Workload, at: u64) -> RunReport {
    let policy = YieldPolicy { heartbeat_interval: at, ..YieldPolicy::default() };
    let mut core = Core::new(CoreConfig::default(), wl.program.clone(), wl.mem.clone())
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", wl.name, wl.variant))
        .with_yield_policy(policy);
    loop {
        match core.next_event(CYCLE_LIMIT) {
            Ok(KernelEvent::Heartbeat { cycle, .. }) if cycle == at => break,
            Ok(KernelEvent::Halted { cycle, .. }) => {
                panic!("{} [{}]: halted at cycle {cycle} before checkpoint point {at}", wl.name, wl.variant)
            }
            Ok(_) => continue,
            Err(e) => panic!("{} [{}]: {e}", wl.name, wl.variant),
        }
    }
    let ckpt = core.checkpoint();
    drop(core);
    let mut restored =
        Core::restore(ckpt).unwrap_or_else(|e: CoreError| panic!("{} [{}] restore at {at}: {e}", wl.name, wl.variant));
    loop {
        match restored.next_event(CYCLE_LIMIT) {
            Ok(KernelEvent::Halted { .. }) => break,
            Ok(_) => continue,
            Err(e) => panic!("{} [{}] after restore at {at}: {e}", wl.name, wl.variant),
        }
    }
    restored.finish()
}

/// Runs the straight-vs-quarter-point-restored comparison over the whole
/// catalog at `scale`.
pub fn run_catalog_ckpt(scale: Scale) -> Vec<CkptRow> {
    catalog()
        .iter()
        .map(|entry| {
            let variant = if entry.variants.contains(&Variant::Base) { Variant::Base } else { entry.variants[0] };
            let wl = entry.build(variant, scale);
            let straight = run_straight(&wl);
            let straight_json = run_report_to_json(&straight);
            let cycles = straight.stats.cycles;
            let restore_points: Vec<u64> = (1..=3u64)
                .map(|q| (cycles * q / 4).max(1))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut mismatched_at = Vec::new();
            let mut restored_json = String::new();
            for &at in &restore_points {
                restored_json = run_report_to_json(&run_restored(&wl, at));
                if restored_json != straight_json {
                    mismatched_at.push(at);
                }
            }
            CkptRow { name: entry.name, variant, cycles, restore_points, straight_json, restored_json, mismatched_at }
        })
        .collect()
}

/// One JSON line per workload: the straight runs.
pub fn straight_lines(rows: &[CkptRow]) -> String {
    rows.iter().map(|r| format!("{}\n", r.straight_json)).collect()
}

/// One JSON line per workload: the restored runs. Byte-identical to
/// [`straight_lines`] exactly when every round trip was deterministic.
pub fn restored_lines(rows: &[CkptRow]) -> String {
    rows.iter().map(|r| format!("{}\n", r.restored_json)).collect()
}

/// Human-readable summary table.
pub fn table(rows: &[CkptRow]) -> String {
    let mut out = String::from(
        "workload             variant       cycles  restore points               verdict\n\
         -------------------- ---------- --------- ---------------------------- --------\n",
    );
    for r in rows {
        let points = r.restore_points.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",");
        out.push_str(&format!(
            "{:20} {:10} {:>9} {:28} {}\n",
            r.name,
            r.variant.to_string(),
            r.cycles,
            points,
            if r.ok() { "ok" } else { "MISMATCH" }
        ));
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    out.push_str(&format!(
        "[ckpt] {} workloads, {} restore round-trips, {} mismatched\n",
        rows.len(),
        rows.iter().map(|r| r.restore_points.len()).sum::<usize>(),
        bad
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { n: 120, ..Scale::default() }
    }

    #[test]
    fn quarter_point_restores_reproduce_straight_runs() {
        let rows = run_catalog_ckpt(tiny());
        assert_eq!(rows.len(), catalog().len());
        for r in &rows {
            assert!(r.ok(), "{} [{}] diverged at {:?}", r.name, r.variant, r.mismatched_at);
            assert!(!r.straight_json.is_empty() && r.straight_json == r.restored_json);
        }
        assert_eq!(straight_lines(&rows), restored_lines(&rows));
    }

    #[test]
    fn table_flags_mismatches() {
        let mut rows = run_catalog_ckpt(Scale { n: 60, ..Scale::default() });
        assert!(table(&rows).contains("0 mismatched"));
        rows[0].mismatched_at.push(42);
        let t = table(&rows);
        assert!(t.contains("MISMATCH") && t.contains("1 mismatched"));
    }
}
