//! Experiment runner: regenerates the paper's tables and figures, and
//! runs fault-injection campaigns.
//!
//! Usage:
//!   experiments list          list available experiments
//!   experiments `<id>`...     run specific experiments (e.g. fig18 fig24)
//!   experiments all           run everything; also writes the deterministic
//!                             transcript to artifacts/experiments_output.txt
//!   experiments faults [opts] run a fault-injection campaign (see below)
//!   experiments lint [opts]   statically verify queue discipline of every
//!                             catalog workload and transform output; exits
//!                             non-zero on any error finding
//!
//! Global options (any subcommand):
//!   --jobs N        worker threads for simulations (default $CFD_JOBS or 1);
//!                   results are byte-identical at any worker count
//!   --no-cache      bypass the on-disk result cache (target/cfd-cache)
//!
//! Lint options:
//!   --json PATH     write the JSON lint table to PATH ("-" = stdout)
//!
//! Campaign options:
//!   --seed N        trial-point seed (default 0xcfdfa017)
//!   --trials N      trials per (workload, fault) pair (default 1)
//!   --scale N       workload outer trip count (default 120)
//!   --smoke         small fast sweep (scale 40)
//!   --json PATH     write the JSON verdict table to PATH ("-" = stdout)

use cfd_bench::experiments;
use cfd_exec::{Engine, ExecConfig};
use cfd_harden::{run_campaign_on, CampaignConfig};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExecConfig::from_env();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                args.remove(i);
                let v = if i < args.len() {
                    args.remove(i)
                } else {
                    eprintln!("--jobs needs a value");
                    std::process::exit(1);
                };
                cfg.jobs = parse_u64(&v).filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad value for --jobs: `{v}`");
                    std::process::exit(1);
                }) as usize;
            }
            "--no-cache" => {
                args.remove(i);
                cfg.use_cache = false;
            }
            _ => i += 1,
        }
    }
    let engine = Engine::new(cfg);

    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in experiments::all() {
            println!("  {:8} {}", e.id, e.what);
        }
        println!("  {:8} run every experiment", "all");
        println!("  {:8} fault-injection campaign (--seed N --trials N --scale N --smoke --json PATH)", "faults");
        println!("  {:8} static queue-discipline verification of catalog + transforms (--json PATH)", "lint");
        return;
    }
    if args[0] == "faults" {
        run_fault_campaign(&engine, &args[1..]);
        return;
    }
    if args[0] == "lint" {
        run_lint(&engine, &args[1..]);
        return;
    }
    let write_transcript = args[0] == "all";
    let ids: Vec<String> = if args[0] == "all" {
        experiments::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };
    let mut transcript = String::new();
    for id in ids {
        let Some(e) = experiments::by_id(&id) else {
            eprintln!("unknown experiment `{id}` (try `list`)");
            std::process::exit(1);
        };
        let t0 = Instant::now();
        let header = format!(
            "==============================================================\n\
             == {} — {}\n\
             ==============================================================\n",
            e.id, e.what
        );
        print!("{header}");
        let out = (e.run)(&engine);
        println!("{out}");
        println!("[{} completed in {:.1}s]\n", e.id, t0.elapsed().as_secs_f64());
        if write_transcript {
            transcript.push_str(&header);
            transcript.push_str(&out);
            transcript.push_str("\n\n");
        }
    }
    if write_transcript {
        let path = "artifacts/experiments_output.txt";
        std::fs::create_dir_all("artifacts").unwrap_or_else(|e| {
            eprintln!("cannot create artifacts/: {e}");
            std::process::exit(1);
        });
        std::fs::write(path, &transcript).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("transcript written to {path}");
    }
    eprintln!("{}", engine.stats_line());
}

fn run_lint(engine: &Engine, args: &[String]) {
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("unknown lint option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    let rows = cfd_bench::lint::lint_all_on(engine);
    print!("{}", cfd_bench::lint::table(&rows));
    match json_path.as_deref() {
        Some("-") => println!("{}", cfd_bench::lint::to_json(&rows)),
        Some(path) => {
            std::fs::write(path, cfd_bench::lint::to_json(&rows)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("lint table written to {path}");
        }
        None => {}
    }
    let errors = cfd_bench::lint::error_count(&rows);
    println!("[lint completed in {:.1}s: {} programs, {} error finding(s)]", t0.elapsed().as_secs_f64(), rows.len(), errors);
    eprintln!("{}", engine.stats_line());
    if errors > 0 {
        std::process::exit(2);
    }
}

fn run_fault_campaign(engine: &Engine, args: &[String]) {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            });
            parse_u64(v).unwrap_or_else(|| {
                eprintln!("bad value for {what}: `{v}`");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--seed" => cfg.seed = num("--seed"),
            "--trials" => cfg.trials_per_pair = num("--trials") as usize,
            "--scale" => cfg.scale_n = num("--scale") as usize,
            "--smoke" => cfg.scale_n = 40,
            "--json" => json_path = Some(it.next().cloned().unwrap_or_else(|| {
                eprintln!("--json needs a path");
                std::process::exit(1);
            })),
            other => {
                eprintln!("unknown campaign option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    println!("fault campaign: seed {:#x}, {} workloads x {} fault classes, {} trial(s)/pair, scale {}",
        cfg.seed, cfg.workloads.len(), cfg.faults.len(), cfg.trials_per_pair, cfg.scale_n);
    let report = run_campaign_on(engine, &cfg);
    println!("{}", report.table());
    match json_path.as_deref() {
        Some("-") => println!("{}", report.to_json()),
        Some(path) => {
            std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("verdict table written to {path}");
        }
        None => {}
    }
    let silent = report.silent_divergences();
    println!("[faults completed in {:.1}s: {} trials, {} contract violations]",
        t0.elapsed().as_secs_f64(), report.outcomes.len(), silent);
    eprintln!("{}", engine.stats_line());
    if silent > 0 {
        std::process::exit(2);
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
