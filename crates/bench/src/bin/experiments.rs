//! Experiment runner: regenerates the paper's tables and figures.
//!
//! Usage:
//!   experiments list          list available experiments
//!   experiments `<id>`...     run specific experiments (e.g. fig18 fig24)
//!   experiments all           run everything (EXPERIMENTS.md source)

use cfd_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in experiments::all() {
            println!("  {:8} {}", e.id, e.what);
        }
        println!("  {:8} run every experiment", "all");
        return;
    }
    let ids: Vec<String> = if args[0] == "all" {
        experiments::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        let Some(e) = experiments::by_id(&id) else {
            eprintln!("unknown experiment `{id}` (try `list`)");
            std::process::exit(1);
        };
        let t0 = Instant::now();
        println!("==============================================================");
        println!("== {} — {}", e.id, e.what);
        println!("==============================================================");
        let out = (e.run)();
        println!("{out}");
        println!("[{} completed in {:.1}s]\n", e.id, t0.elapsed().as_secs_f64());
    }
}
