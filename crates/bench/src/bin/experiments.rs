//! Experiment runner: regenerates the paper's tables and figures, and
//! runs fault-injection campaigns.
//!
//! ```text
//! Usage:
//!   experiments list          list available experiments
//!   experiments `<id>`...     run specific experiments (e.g. fig18 fig24)
//!   experiments all           run everything; also writes the deterministic
//!                             transcript to artifacts/experiments_output.txt
//!   experiments faults [opts] run a fault-injection campaign (see below)
//!   experiments lint [opts]   statically verify queue discipline of every
//!                             catalog workload and transform output; exits
//!                             non-zero on any error finding
//!   experiments separability [opts]
//!                             catalog-wide separability table: every
//!                             analyzed branch, its heuristic vs precise
//!                             class, the automatic CFD/CFD-TQ/speculative
//!                             selection, and the differential gates on
//!                             every accepted rewrite (lint, functional
//!                             equivalence, dynamic disjointness claims);
//!                             exits non-zero when any gate fails
//!   experiments observe <workload> [opts]
//!                             one telemetry-armed run: CPI stack, ASCII
//!                             IPC/occupancy timeline, CSV time series and
//!                             a Perfetto trace (all byte-deterministic)
//!   experiments simperf [opts]
//!                             host-side simulator throughput: time one
//!                             telemetry-free run of every catalog workload
//!                             and report KIPS (timings are host-dependent;
//!                             the simulated columns stay deterministic)
//!   experiments ckpt [opts]   checkpoint-determinism sweep: run every
//!                             catalog workload straight and restored from
//!                             quarter-point checkpoints, byte-compare the
//!                             serialized reports, and write both JSONL
//!                             artifacts for the verify.sh cmp gate; exits
//!                             2 on any divergence
//!   experiments chaos [opts]  IO-fault chaos sweep over the campaign
//!                             engine's durability machinery (torn cache
//!                             writes, corrupt cache bytes, truncated
//!                             journals, mid-run kills); exits non-zero if
//!                             any injected fault silently diverges
//!   experiments dse [opts]    design-space exploration: expand a preset
//!                             config grid (predictor x BQ/VQ/TQ x widths
//!                             x L1), simulate every point, and emit the
//!                             per-point IPC/MPKI/EDP table plus the
//!                             Pareto frontier (byte-deterministic)
//!
//! Global options (any subcommand):
//!   --jobs N        worker threads for simulations (default $CFD_JOBS or 1);
//!                   results are byte-identical at any worker count
//!   --no-cache      bypass the on-disk result cache (target/cfd-cache)
//!   --resume        resume an interrupted campaign from its job journal:
//!                   replay completed work from the cache and re-execute
//!                   only jobs that never finished
//!   --retries N     re-run failed jobs up to N extra times in
//!                   deterministic fingerprint order; jobs that exhaust
//!                   their retries are quarantined in the journal ledger
//!   --timeout-cycles N
//!                   cancel any simulation that exceeds N simulated cycles
//!                   and record it as a timeout failure (deterministic:
//!                   the budget is checked on the simulated clock)
//!   --quiet         suppress the [cfd-exec] stats line on stderr
//!   --trace-out P   write the engine's job trace (Perfetto JSON) to P
//!
//! Observe options:
//!   --variant V     which transform to run (base, cfd, cfd+, ...; default base)
//!   --interval N    sampling interval in cycles (default 1000)
//!   --scale N       workload outer trip count (default catalog scale)
//!   --csv PATH      time-series CSV destination
//!                   (default artifacts/observe_<workload>_<variant>.csv)
//!   --trace-out P   pipeline-trace destination
//!                   (default artifacts/observe_<workload>_<variant>.trace.json)
//!
//! Lint options:
//!   --json PATH     write the JSON lint table to PATH ("-" = stdout)
//!
//! Separability options:
//!   --json PATH     write the JSON separability table to PATH ("-" = stdout)
//!
//! Campaign options:
//!   --seed N        trial-point seed (default 0xcfdfa017)
//!   --trials N      trials per (workload, fault) pair (default 1)
//!   --scale N       workload outer trip count (default 120)
//!   --smoke         small fast sweep (scale 40)
//!   --json PATH     write the JSON verdict table to PATH ("-" = stdout)
//!
//! Simperf options:
//!   --scale N       workload outer trip count (default catalog scale)
//!   --json PATH     timing-record destination ("-" = stdout;
//!                   default artifacts/BENCH_simperf.json). Each run
//!                   produces one timestamped JSON record; the default
//!                   overwrites the file with the latest record
//!   --append        append the record instead of overwriting, turning
//!                   the artifact into a JSONL throughput trajectory
//!   --profile       run the catalog through the stage self-profiler
//!                   and print per-stage wall-time shares (sum to
//!                   exactly 100.00%) plus scheduler-efficiency counters
//!   --min-kips N    soft throughput floor: warn on stderr for every
//!                   workload simulating slower than N KIPS (timings are
//!                   host-dependent, so this never fails the run)
//!   --min-kips-hard N
//!                   hard throughput floor: like --min-kips but exits 3
//!                   when any workload falls below N KIPS. Meant for CI
//!                   hosts whose worst-case speed is known; set the floor
//!                   far below nominal so only a real regression trips it
//!   --sampled       run the sampled-simulation cross-check instead:
//!                   every workload runs once in full detail and once in
//!                   fast-forward/warmup/detail sampled mode, reporting
//!                   per-workload IPC error and wall-clock speedup. The
//!                   error column is deterministic; exits 4 when any
//!                   workload's error exceeds the --max-err bound
//!   --max-err P     sampled-mode IPC error bound in percent
//!                   (default 10; only meaningful with --sampled)
//!
//! Ckpt options:
//!   --scale N       workload outer trip count (default catalog scale)
//!   --straight-out PATH
//!                   straight-run JSONL destination
//!                   (default artifacts/ckpt_straight.json)
//!   --restored-out PATH
//!                   restored-run JSONL destination
//!                   (default artifacts/ckpt_restored.json)
//!
//! Dse options:
//!   --preset NAME   which sweep grid to run: `default` (the flagship
//!                   216-point grid) or `tiny` (8-point smoke grid)
//!   --out PATH      write the report to PATH instead of stdout
//!   --serve PATH    client mode: submit the sweep to the `cfd-serve`
//!                   daemon listening on Unix socket PATH instead of
//!                   simulating in-process (the report bytes are
//!                   identical either way)
//!   --log FILE      attach a JSONL event-log sink to the in-process
//!                   engine (batch lifecycle events; validate with
//!                   `cfd-serve logcheck`). File-only: stderr stays
//!                   byte-identical with and without it
//!   --log-level L   event-log severity floor for --log (error|warn|
//!                   info|debug|trace; default debug)
//!
//! Chaos options:
//!   --seed N        fault-shim seed (default 0xcfdc4a05)
//!   --scale N       probe workload outer trip count (default 40)
//!   --json PATH     write the JSON verdict table to PATH ("-" = stdout)
//! ```

use cfd_bench::experiments;
use cfd_exec::{Engine, ExecConfig, RetryPolicy};
use cfd_harden::{run_campaign_on, run_exec_chaos, CampaignConfig, ChaosConfig};
use std::time::Instant;

/// Global flags that outlive subcommand dispatch.
struct Global {
    quiet: bool,
    trace_out: Option<String>,
}

impl Global {
    /// End-of-run chores: the stats line (unless `--quiet`) and the
    /// engine job trace (when `--trace-out` was given).
    fn finish(&self, engine: &Engine) {
        if !self.quiet {
            eprintln!("{}", engine.stats_line());
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, engine.trace_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("engine trace written to {path}");
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let observing = args.first().is_some_and(|a| a == "observe");
    let mut cfg = ExecConfig::from_env();
    let mut global = Global { quiet: false, trace_out: None };
    let mut retries = 0u64;
    let mut timeout_cycles = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                args.remove(i);
                let v = if i < args.len() {
                    args.remove(i)
                } else {
                    eprintln!("--jobs needs a value");
                    std::process::exit(1);
                };
                cfg.jobs = parse_u64(&v).filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad value for --jobs: `{v}`");
                    std::process::exit(1);
                }) as usize;
            }
            "--no-cache" => {
                args.remove(i);
                cfg.use_cache = false;
            }
            "--resume" => {
                args.remove(i);
                cfg.resume = true;
            }
            "--retries" => {
                args.remove(i);
                let v = take_value(&mut args, i, "--retries");
                retries = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --retries: `{v}`");
                    std::process::exit(1);
                });
            }
            "--timeout-cycles" => {
                args.remove(i);
                let v = take_value(&mut args, i, "--timeout-cycles");
                timeout_cycles = parse_u64(&v).filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad value for --timeout-cycles: `{v}`");
                    std::process::exit(1);
                });
            }
            "--quiet" => {
                args.remove(i);
                global.quiet = true;
            }
            // `observe` keeps its own --trace-out (it names the *pipeline*
            // trace, not the engine's job trace).
            "--trace-out" if !observing => {
                args.remove(i);
                if i >= args.len() {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(1);
                }
                global.trace_out = Some(args.remove(i));
            }
            _ => i += 1,
        }
    }
    if retries > 0 || timeout_cycles > 0 {
        cfg.policy = RetryPolicy::bounded(retries, timeout_cycles);
    }
    let engine = Engine::new(cfg);

    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for e in experiments::all() {
            println!("  {:8} {}", e.id, e.what);
        }
        println!("  {:8} run every experiment", "all");
        println!("  {:8} fault-injection campaign (--seed N --trials N --scale N --smoke --json PATH)", "faults");
        println!("  {:8} static queue-discipline verification of catalog + transforms (--json PATH)", "lint");
        println!(
            "  {:8} catalog-wide branch classes, auto-CFD decisions, differential gates (--json PATH)",
            "separability"
        );
        println!(
            "  {:8} telemetry-armed run of one workload (--variant V --interval N --scale N --csv P --trace-out P)",
            "observe"
        );
        println!(
            "  {:8} host-side simulator throughput over the catalog (--scale N --json PATH --profile --append)",
            "simperf"
        );
        println!(
            "  {:8} IO-fault chaos sweep over cache + journal durability (--seed N --scale N --json PATH)",
            "chaos"
        );
        println!("  {:8} checkpoint-determinism sweep: straight vs quarter-point-restored runs (--scale N)", "ckpt");
        println!(
            "  {:8} DSE sweep with IPC/MPKI/EDP Pareto frontier (--preset default|tiny --out PATH --serve SOCKET)",
            "dse"
        );
        return;
    }
    if args[0] == "faults" {
        run_fault_campaign(&engine, &global, &args[1..]);
        return;
    }
    if args[0] == "chaos" {
        run_chaos(&args[1..]);
        return;
    }
    if args[0] == "simperf" {
        run_simperf(&args[1..]);
        return;
    }
    if args[0] == "ckpt" {
        run_ckpt(&args[1..]);
        return;
    }
    if args[0] == "dse" {
        run_dse(&engine, &global, &args[1..]);
        return;
    }
    if args[0] == "lint" {
        run_lint(&engine, &global, &args[1..]);
        return;
    }
    if args[0] == "separability" {
        run_separability(&args[1..]);
        return;
    }
    if args[0] == "observe" {
        run_observe(&args[1..]);
        return;
    }
    let write_transcript = args[0] == "all";
    let ids: Vec<String> =
        if args[0] == "all" { experiments::all().iter().map(|e| e.id.to_string()).collect() } else { args };
    let mut transcript = String::new();
    for id in ids {
        let Some(e) = experiments::by_id(&id) else {
            eprintln!("unknown experiment `{id}` (try `list`)");
            std::process::exit(1);
        };
        let t0 = Instant::now();
        let header = format!(
            "==============================================================\n\
             == {} — {}\n\
             ==============================================================\n",
            e.id, e.what
        );
        print!("{header}");
        let out = (e.run)(&engine);
        println!("{out}");
        println!("[{} completed in {:.1}s]\n", e.id, t0.elapsed().as_secs_f64());
        if write_transcript {
            transcript.push_str(&header);
            transcript.push_str(&out);
            transcript.push_str("\n\n");
        }
    }
    if write_transcript {
        let path = "artifacts/experiments_output.txt";
        std::fs::create_dir_all("artifacts").unwrap_or_else(|e| {
            eprintln!("cannot create artifacts/: {e}");
            std::process::exit(1);
        });
        std::fs::write(path, &transcript).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("transcript written to {path}");
    }
    global.finish(&engine);
}

fn run_observe(args: &[String]) {
    use cfd_bench::observe::{observe, parse_variant, variant_slug, ObserveOptions};
    let mut name: Option<String> = None;
    let mut opts = ObserveOptions::default();
    let mut csv_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--variant" => {
                let v = val("--variant");
                opts.variant = parse_variant(&v).unwrap_or_else(|| {
                    eprintln!("unknown variant `{v}` (try base, cfd, cfd+, dfd, ...)");
                    std::process::exit(1);
                });
            }
            "--interval" => {
                let v = val("--interval");
                opts.interval = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --interval: `{v}`");
                    std::process::exit(1);
                });
            }
            "--scale" => {
                let v = val("--scale");
                opts.scale.n = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --scale: `{v}`");
                    std::process::exit(1);
                }) as usize;
            }
            "--csv" => csv_path = Some(val("--csv")),
            "--trace-out" => trace_path = Some(val("--trace-out")),
            other if other.starts_with("--") => {
                eprintln!("unknown observe option `{other}`");
                std::process::exit(1);
            }
            other => {
                if name.replace(other.to_string()).is_some() {
                    eprintln!("observe takes exactly one workload");
                    std::process::exit(1);
                }
            }
        }
    }
    let Some(name) = name else {
        eprintln!(
            "usage: experiments observe <workload> [--variant V] [--interval N] [--scale N] [--csv P] [--trace-out P]"
        );
        std::process::exit(1);
    };
    let obs = observe(&name, &opts).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let slug = variant_slug(obs.variant);
    let csv_path = csv_path.unwrap_or_else(|| format!("artifacts/observe_{name}_{slug}.csv"));
    let trace_path = trace_path.unwrap_or_else(|| format!("artifacts/observe_{name}_{slug}.trace.json"));
    print!("{}", obs.render());
    for (path, content) in [(&csv_path, obs.csv()), (&trace_path, obs.trace_json())] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                });
            }
        }
        std::fs::write(path, content).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    println!("\ntime series written to {csv_path}");
    println!("pipeline trace written to {trace_path} (load in ui.perfetto.dev)");
}

/// `experiments dse`: expand a preset grid, evaluate every point, print
/// the per-point table and Pareto frontier. With `--serve SOCKET` the
/// sweep runs on a `cfd-serve` daemon instead of in-process; the report
/// bytes are identical either way.
fn run_dse(engine: &Engine, global: &Global, args: &[String]) {
    use cfd_serve::SweepConfig;
    let mut preset = "default".to_string();
    let mut out_path: Option<String> = None;
    let mut serve_socket: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut log_level = cfd_obs::Level::Debug;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--preset" => preset = val("--preset"),
            "--out" => out_path = Some(val("--out")),
            "--serve" => serve_socket = Some(val("--serve")),
            "--log" => log_path = Some(val("--log")),
            "--log-level" => {
                let v = val("--log-level");
                log_level = cfd_obs::Level::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            }
            other => {
                eprintln!("unknown dse option `{other}`");
                std::process::exit(1);
            }
        }
    }
    // --log attaches a file-only JSONL event sink to the engine (level
    // --log-level, default debug). File-only on purpose: stderr and the
    // golden transcript stay byte-identical with and without it.
    if let Some(path) = &log_path {
        let log = cfd_obs::EventLog::new(log_level).with_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        engine.set_log(Some(std::sync::Arc::new(log)));
    }
    let cfg = SweepConfig::preset(&preset).unwrap_or_else(|| {
        eprintln!("unknown preset `{preset}` (have: default, tiny)");
        std::process::exit(1);
    });
    let t0 = Instant::now();
    let points = cfg.expand().map(|p| p.len()).unwrap_or(0);
    eprintln!("dse sweep: {} ({} grid points, preset `{preset}`)", cfg.describe(), points);
    let report = match &serve_socket {
        Some(socket) => dse_via_daemon(socket, &cfg),
        None => cfd_serve::run_sweep(engine, &cfg).unwrap_or_else(|e| {
            eprintln!("dse sweep failed: {e}");
            std::process::exit(2);
        }),
    };
    match &out_path {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                        eprintln!("cannot create {}: {e}", dir.display());
                        std::process::exit(1);
                    });
                }
            }
            std::fs::write(path, &report).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("DSE report written to {path}");
        }
        None => print!("{report}"),
    }
    println!("[dse completed in {:.1}s: {points} grid points]", t0.elapsed().as_secs_f64());
    if serve_socket.is_none() {
        global.finish(engine);
    }
}

/// Submits the sweep to a running daemon and returns its report.
#[cfg(unix)]
fn dse_via_daemon(socket: &str, cfg: &cfd_serve::SweepConfig) -> String {
    let outcome = cfd_serve::submit_and_wait(std::path::Path::new(socket), cfg).unwrap_or_else(|e| {
        eprintln!("dse sweep failed on daemon {socket}: {e}");
        std::process::exit(2);
    });
    eprintln!("{}", cfd_serve::outcome_line(&outcome));
    outcome.report
}

#[cfg(not(unix))]
fn dse_via_daemon(_socket: &str, _cfg: &cfd_serve::SweepConfig) -> String {
    eprintln!("--serve requires Unix-domain sockets; run without --serve on this platform");
    std::process::exit(1);
}

fn run_simperf(args: &[String]) {
    use cfd_bench::simperf;
    use cfd_workloads::Scale;
    let mut scale = Scale::default();
    let mut json_path: Option<String> = None;
    let mut min_kips: Option<f64> = None;
    let mut min_kips_hard: Option<f64> = None;
    let mut with_profile = false;
    let mut append = false;
    let mut sampled = false;
    let mut max_err = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--scale" => {
                let v = val("--scale");
                scale.n = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --scale: `{v}`");
                    std::process::exit(1);
                }) as usize;
            }
            "--json" => json_path = Some(val("--json")),
            "--profile" => with_profile = true,
            "--append" => append = true,
            "--min-kips" => {
                let v = val("--min-kips");
                min_kips = Some(parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --min-kips: `{v}`");
                    std::process::exit(1);
                }) as f64);
            }
            "--min-kips-hard" => {
                let v = val("--min-kips-hard");
                min_kips_hard = Some(parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --min-kips-hard: `{v}`");
                    std::process::exit(1);
                }) as f64);
            }
            "--sampled" => sampled = true,
            "--max-err" => {
                let v = val("--max-err");
                max_err = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --max-err: `{v}`");
                    std::process::exit(1);
                }) as f64;
            }
            other => {
                eprintln!("unknown simperf option `{other}`");
                std::process::exit(1);
            }
        }
    }
    if sampled {
        let t0 = Instant::now();
        let rows = simperf::run_catalog_sampled(scale, cfd_core::SampleConfig::default());
        print!("{}", simperf::sampled_table(&rows));
        let over = simperf::sampled_over_bound(&rows, max_err);
        for r in &over {
            eprintln!(
                "[simperf] ERROR: {} [{}] sampled IPC {:.4} vs full {:.4} ({:.2}% > {max_err:.0}% bound)",
                r.name,
                r.variant.label(),
                r.ipc_sampled,
                r.ipc_full,
                r.err_percent
            );
        }
        println!(
            "[simperf sampled cross-check completed in {:.1}s: {} workloads]",
            t0.elapsed().as_secs_f64(),
            rows.len()
        );
        if !over.is_empty() {
            std::process::exit(4);
        }
        return;
    }
    let t0 = Instant::now();
    let (rows, profile) = if with_profile {
        let (rows, p) = simperf::run_catalog_profiled(scale);
        (rows, Some(p))
    } else {
        (simperf::run_catalog(scale), None)
    };
    print!("{}", simperf::table(&rows));
    if let Some(p) = &profile {
        print!("{}", simperf::profile_table(p));
    }
    if let Some(floor) = min_kips {
        for r in simperf::below_floor(&rows, floor) {
            eprintln!(
                "[simperf] WARNING: {} [{}] simulated at {:.0} KIPS, below the {floor:.0} KIPS soft floor",
                r.name,
                r.variant.label(),
                r.kips
            );
        }
    }
    let hard_floor_broken = min_kips_hard.is_some_and(|floor| {
        let slow = simperf::below_floor(&rows, floor);
        for r in &slow {
            eprintln!(
                "[simperf] ERROR: {} [{}] simulated at {:.0} KIPS, below the {floor:.0} KIPS hard floor",
                r.name,
                r.variant.label(),
                r.kips
            );
        }
        !slow.is_empty()
    });
    let ts = std::time::SystemTime::now().duration_since(std::time::SystemTime::UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let record = simperf::history_record(&rows, profile.as_ref(), ts, scale.n);
    let json_path = json_path.unwrap_or_else(|| "artifacts/BENCH_simperf.json".to_string());
    if json_path == "-" {
        println!("{record}");
    } else {
        if let Some(dir) = std::path::Path::new(&json_path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                });
            }
        }
        let write = |path: &str| {
            if append {
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{record}"))
            } else {
                std::fs::write(path, format!("{record}\n"))
            }
        };
        write(&json_path).unwrap_or_else(|e| {
            eprintln!("cannot write {json_path}: {e}");
            std::process::exit(1);
        });
        println!("timing record {} {json_path}", if append { "appended to" } else { "written to" });
    }
    println!("[simperf completed in {:.1}s: {} workloads]", t0.elapsed().as_secs_f64(), rows.len());
    if hard_floor_broken {
        std::process::exit(3);
    }
}

fn run_ckpt(args: &[String]) {
    use cfd_bench::ckpt;
    use cfd_workloads::Scale;
    let mut scale = Scale::default();
    let mut straight_out = "artifacts/ckpt_straight.json".to_string();
    let mut restored_out = "artifacts/ckpt_restored.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--scale" => {
                let v = val("--scale");
                scale.n = parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad value for --scale: `{v}`");
                    std::process::exit(1);
                }) as usize;
            }
            "--straight-out" => straight_out = val("--straight-out"),
            "--restored-out" => restored_out = val("--restored-out"),
            other => {
                eprintln!("unknown ckpt option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    let rows = ckpt::run_catalog_ckpt(scale);
    print!("{}", ckpt::table(&rows));
    let write = |path: &str, body: String| {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                });
            }
        }
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    };
    write(&straight_out, ckpt::straight_lines(&rows));
    write(&restored_out, ckpt::restored_lines(&rows));
    println!("report lines written to {straight_out} and {restored_out}");
    println!("[ckpt completed in {:.1}s: {} workloads]", t0.elapsed().as_secs_f64(), rows.len());
    for r in rows.iter().filter(|r| !r.ok()) {
        eprintln!(
            "[ckpt] ERROR: {} [{}] restored run diverged from straight run at cycle(s) {:?}",
            r.name,
            r.variant.label(),
            r.mismatched_at
        );
    }
    if rows.iter().any(|r| !r.ok()) {
        std::process::exit(2);
    }
}

fn run_lint(engine: &Engine, global: &Global, args: &[String]) {
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("unknown lint option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    let rows = cfd_bench::lint::lint_all_on(engine);
    print!("{}", cfd_bench::lint::table(&rows));
    match json_path.as_deref() {
        Some("-") => println!("{}", cfd_bench::lint::to_json(&rows)),
        Some(path) => {
            std::fs::write(path, cfd_bench::lint::to_json(&rows)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("lint table written to {path}");
        }
        None => {}
    }
    let errors = cfd_bench::lint::error_count(&rows);
    println!(
        "[lint completed in {:.1}s: {} programs, {} error finding(s)]",
        t0.elapsed().as_secs_f64(),
        rows.len(),
        errors
    );
    global.finish(engine);
    if errors > 0 {
        std::process::exit(2);
    }
}

fn run_separability(args: &[String]) {
    use cfd_bench::separability;
    use cfd_workloads::Scale;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("unknown separability option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    let rows = separability::run_separability(Scale { n: 400, seed: 9 });
    print!("{}", separability::table(&rows));
    match json_path.as_deref() {
        Some("-") => println!("{}", separability::to_json(&rows)),
        Some(path) => {
            std::fs::write(path, separability::to_json(&rows)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("separability table written to {path}");
        }
        None => {}
    }
    let ok = separability::gate_ok(&rows);
    println!(
        "[separability completed in {:.1}s: {} branches, gates {}]",
        t0.elapsed().as_secs_f64(),
        rows.len(),
        if ok { "pass" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(2);
    }
}

fn run_chaos(args: &[String]) {
    let mut cfg = ChaosConfig::default();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            });
            parse_u64(v).unwrap_or_else(|| {
                eprintln!("bad value for {what}: `{v}`");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--seed" => cfg.seed = num("--seed"),
            "--scale" => cfg.scale_n = num("--scale") as usize,
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("unknown chaos option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    println!("exec chaos sweep: seed {:#x}, scale {}, cache root {}", cfg.seed, cfg.scale_n, cfg.cache_root.display());
    let report = run_exec_chaos(&cfg);
    println!("{}", report.table());
    match json_path.as_deref() {
        Some("-") => println!("{}", report.to_json()),
        Some(path) => {
            std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("verdict table written to {path}");
        }
        None => {}
    }
    let silent = report.silent_divergences();
    println!(
        "[chaos completed in {:.1}s: {} scenarios, {} contract violations]",
        t0.elapsed().as_secs_f64(),
        report.outcomes.len(),
        silent
    );
    if silent > 0 {
        std::process::exit(2);
    }
}

fn run_fault_campaign(engine: &Engine, global: &Global, args: &[String]) {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(1);
            });
            parse_u64(v).unwrap_or_else(|| {
                eprintln!("bad value for {what}: `{v}`");
                std::process::exit(1);
            })
        };
        match a.as_str() {
            "--seed" => cfg.seed = num("--seed"),
            "--trials" => cfg.trials_per_pair = num("--trials") as usize,
            "--scale" => cfg.scale_n = num("--scale") as usize,
            "--smoke" => cfg.scale_n = 40,
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(1);
                }))
            }
            other => {
                eprintln!("unknown campaign option `{other}`");
                std::process::exit(1);
            }
        }
    }
    let t0 = Instant::now();
    println!(
        "fault campaign: seed {:#x}, {} workloads x {} fault classes, {} trial(s)/pair, scale {}",
        cfg.seed,
        cfg.workloads.len(),
        cfg.faults.len(),
        cfg.trials_per_pair,
        cfg.scale_n
    );
    let report = run_campaign_on(engine, &cfg);
    println!("{}", report.table());
    match json_path.as_deref() {
        Some("-") => println!("{}", report.to_json()),
        Some(path) => {
            std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("verdict table written to {path}");
        }
        None => {}
    }
    let silent = report.silent_divergences();
    println!(
        "[faults completed in {:.1}s: {} trials, {} contract violations]",
        t0.elapsed().as_secs_f64(),
        report.outcomes.len(),
        silent
    );
    global.finish(engine);
    if silent > 0 {
        std::process::exit(2);
    }
}

/// Pops the value following a global flag out of the arg vector (the
/// flag itself has already been removed at index `i`).
fn take_value(args: &mut Vec<String>, i: usize, flag: &str) -> String {
    if i < args.len() {
        args.remove(i)
    } else {
        eprintln!("{flag} needs a value");
        std::process::exit(1);
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
