//! Dependency-free microbenchmarks of the simulator's own building blocks.
//!
//! These measure *simulator* throughput (not simulated performance): the
//! predictor, the fetch-resident queues, the cache hierarchy, the rename
//! structures, the functional simulator, and a small end-to-end pipeline
//! run. Useful for keeping the experiment harness fast.
//!
//! The harness is deliberately simple (the container has no crates.io
//! access, so no criterion): each benchmark runs a warmup batch, then
//! repeats timed batches and reports the best per-iteration time, which
//! is the standard low-noise estimator for micro-kernels.
//!
//! Usage: `microbench [filter]` — runs benchmarks whose name contains
//! the filter substring.

use cfd_core::{Core, CoreConfig, FetchBq, RenameState, VqRenamer};
use cfd_isa::{Assembler, Machine, MemImage, NullSink, Reg};
use cfd_mem::{Hierarchy, HierarchyConfig};
use cfd_predictor::{DirectionPredictor, IslTage};
use cfd_workloads::{by_name, Scale, Variant};
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` for `batch` iterations per sample, keeps the best of
/// `samples` samples, and prints ns/iter.
fn bench(filter: &str, name: &str, batch: u64, samples: u32, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Warmup.
    for _ in 0..batch {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(per_iter);
    }
    if best >= 10_000.0 {
        println!("{name:<32} {:>12.2} us/iter", best / 1000.0);
    } else {
        println!("{name:<32} {best:>12.1} ns/iter");
    }
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let f = filter.as_str();

    bench(f, "isl_tage_predict_train", 100_000, 7, {
        let mut p = IslTage::new();
        let mut k = 0u64;
        move || {
            k = k.wrapping_add(1);
            let pc = 0x40 + (k % 16) * 4;
            let taken = (k * 2654435761) % 100 < 60;
            black_box(p.observe(pc, taken));
        }
    });

    bench(f, "fetch_bq_push_exec_pop", 100_000, 7, {
        let mut bq = FetchBq::new(128);
        move || {
            let abs = bq.fetch_push();
            bq.execute_push(abs, abs.is_multiple_of(3));
            let (_, pred) = bq.fetch_pop();
            bq.retire_push();
            bq.retire_pop();
            black_box(pred);
        }
    });

    bench(f, "hierarchy_access_mixed", 100_000, 7, {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let mut k = 0u64;
        move || {
            k = k.wrapping_add(1);
            let addr = (k.wrapping_mul(2654435761)) % (1 << 22);
            black_box(h.access(0x40, addr, k.is_multiple_of(7), k));
        }
    });

    bench(f, "rename_dest_unrename", 100_000, 7, {
        let mut rs = RenameState::new(224);
        let r5 = Reg::new(5);
        move || {
            let (p, prev) = rs.rename_dest(r5).expect("free regs");
            rs.unrename(r5, p, prev);
        }
    });

    bench(f, "vq_renamer_push_pop", 100_000, 7, {
        let mut vq = VqRenamer::new(128);
        let mut k = 0u16;
        move || {
            k = k.wrapping_add(1);
            vq.rename_push(k % 200);
            black_box(vq.rename_pop());
            vq.retire_push();
            vq.retire_pop();
        }
    });

    bench(f, "functional_sim_kernel", 20, 5, {
        let w = by_name("gromacs_like")
            .expect("gromacs_like is in the catalog")
            .build(Variant::Base, Scale { n: 200, seed: 1 });
        move || {
            let mut m = Machine::new(w.program.clone(), w.mem.clone());
            m.run(10_000_000, &mut NullSink).unwrap_or_else(|e| panic!("gromacs_like [base] failed: {e}"));
            black_box(m.retired());
        }
    });

    bench(f, "timing_core_small_loop", 5, 5, {
        let mut a = Assembler::new();
        let (i, n, s) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(n, 2_000);
        a.label("top");
        a.add(s, s, i);
        a.xor(s, s, 7i64);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().expect("microbench loop assembles");
        move || {
            let rep = Core::new(CoreConfig::default(), program.clone(), MemImage::new())
                .expect("default config is valid")
                .run(10_000_000)
                .unwrap_or_else(|e| panic!("timing_core_small_loop failed: {e}"));
            black_box(rep.stats.cycles);
        }
    });
}
