//! `experiments simperf`: host-side simulator throughput over the catalog.
//!
//! Times one telemetry-free run of every catalog workload and reports
//! simulation speed in KIPS (thousands of retired instructions per
//! wall-clock second) and KCPS (thousands of simulated cycles per second).
//! Wall-clock time is deliberately *outside* the deterministic surface:
//! the simulated results (retired, cycles) are byte-stable run to run, the
//! timings are whatever the host delivers, and nothing here is cached —
//! a cached timing would measure the cache, not the simulator. This is the
//! regression harness for scheduler-efficiency work (e.g. the event-driven
//! wakeup rework): compare `kips` columns across commits on the same host.

use crate::runner::CYCLE_LIMIT;
use cfd_core::{run_sampled, Core, CoreConfig, SampleConfig, StageProfile};
use cfd_workloads::{catalog, Scale, Variant};
use std::time::Instant;

/// One timed workload run.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload name.
    pub name: &'static str,
    /// Variant run (the kernel's preferred CFD form when available).
    pub variant: Variant,
    /// Instructions retired (simulated, deterministic).
    pub retired: u64,
    /// Cycles simulated (deterministic).
    pub cycles: u64,
    /// Host wall-clock for the run, in milliseconds.
    pub wall_ms: f64,
    /// Thousands of retired instructions simulated per wall second.
    pub kips: f64,
    /// Thousands of cycles simulated per wall second.
    pub kcps: f64,
}

/// Times one run of every catalog workload at `scale`.
///
/// Each entry runs its base variant when supported (the heaviest IQ
/// pressure, hence the most scheduler work), else its first listed
/// variant. Simulation failures panic: every catalog workload is expected
/// to complete (the same contract as the figure experiments).
pub fn run_catalog(scale: Scale) -> Vec<PerfRow> {
    catalog()
        .iter()
        .map(|entry| {
            let variant = if entry.variants.contains(&Variant::Base) { Variant::Base } else { entry.variants[0] };
            let wl = entry.build(variant, scale);
            let t0 = Instant::now();
            let report = Core::new(CoreConfig::default(), wl.program, wl.mem)
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name))
                .run(CYCLE_LIMIT)
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name));
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            PerfRow {
                name: entry.name,
                variant,
                retired: report.stats.retired,
                cycles: report.stats.cycles,
                wall_ms: secs * 1e3,
                kips: report.stats.retired as f64 / 1e3 / secs,
                kcps: report.stats.cycles as f64 / 1e3 / secs,
            }
        })
        .collect()
}

/// Like [`run_catalog`], but runs every workload through
/// [`Core::run_profiled`] and folds the per-run stage profiles into one
/// catalog-wide [`StageProfile`].
///
/// Timed separately from the plain path on purpose: the profiled loop
/// reads `Instant` between stage groups, so its KIPS column carries
/// that overhead — still useful for relative comparison, but the
/// unprofiled run stays the canonical throughput number.
pub fn run_catalog_profiled(scale: Scale) -> (Vec<PerfRow>, StageProfile) {
    let mut merged = StageProfile::default();
    let rows = catalog()
        .iter()
        .map(|entry| {
            let variant = if entry.variants.contains(&Variant::Base) { Variant::Base } else { entry.variants[0] };
            let wl = entry.build(variant, scale);
            let t0 = Instant::now();
            let (report, profile) = Core::new(CoreConfig::default(), wl.program, wl.mem)
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name))
                .run_profiled(CYCLE_LIMIT)
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name));
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            merged.merge(&profile);
            PerfRow {
                name: entry.name,
                variant,
                retired: report.stats.retired,
                cycles: report.stats.cycles,
                wall_ms: secs * 1e3,
                kips: report.stats.retired as f64 / 1e3 / secs,
                kcps: report.stats.cycles as f64 / 1e3 / secs,
            }
        })
        .collect();
    (rows, merged)
}

/// Renders the merged stage profile: header, the per-stage share table,
/// scheduler-efficiency context, and the exact shares-sum line the CI
/// gate greps (`stage shares sum to 100.00%` whenever time was
/// recorded).
pub fn profile_table(p: &StageProfile) -> String {
    let mut out = String::from("\n[simperf] per-stage host wall-time attribution (catalog-wide)\n");
    out.push_str(&p.table());
    let checks_per_kcycle = (p.sched_ready_checks * 1000).checked_div(p.cycles).unwrap_or(0);
    out.push_str(&format!(
        "scheduler: ready_checks={} wakeup_events={} poll_equiv={} ({} checks/kcycle)\n",
        p.sched_ready_checks, p.sched_wakeup_events, p.sched_poll_equiv, checks_per_kcycle
    ));
    let bp: u64 = p.shares_bp().iter().sum();
    out.push_str(&format!("[simperf] stage shares sum to {}.{:02}%\n", bp / 100, bp % 100));
    out
}

/// One timestamped trajectory record (a single JSON line): the timing
/// rows plus the merged stage profile when one was collected.
///
/// `experiments simperf` overwrites `BENCH_simperf.json` with one such
/// record by default and appends under `--append`, which turns the
/// artifact into a JSONL throughput history across commits.
pub fn history_record(rows: &[PerfRow], profile: Option<&StageProfile>, ts_epoch_s: u64, scale_n: usize) -> String {
    let profile_json = profile.map_or_else(|| "null".to_string(), StageProfile::to_json);
    format!("{{\"ts\":{ts_epoch_s},\"scale\":{scale_n},\"rows\":{},\"profile\":{}}}", to_json(rows), profile_json)
}

/// One full-detail vs sampled cross-check.
#[derive(Debug, Clone)]
pub struct SampledRow {
    /// Workload name.
    pub name: &'static str,
    /// Variant run.
    pub variant: Variant,
    /// Full-detail IPC (ground truth).
    pub ipc_full: f64,
    /// Sampled-mode IPC estimate.
    pub ipc_sampled: f64,
    /// `|sampled - full| / full`, in percent.
    pub err_percent: f64,
    /// Wall-clock of the full-detail run, milliseconds.
    pub wall_full_ms: f64,
    /// Wall-clock of the sampled run, milliseconds.
    pub wall_sampled_ms: f64,
    /// `wall_full / wall_sampled`.
    pub speedup: f64,
    /// Measured detail intervals contributing to the estimate.
    pub intervals: u64,
}

/// Cross-checks sampled simulation against full detail over the catalog:
/// each workload runs once in full detail (IPC ground truth) and once in
/// sampled mode ([`cfd_core::run_sampled`]), timing both. The IPC error
/// column is deterministic (both IPCs are ratios of simulated counters);
/// the wall-clock columns are host-dependent, like everything simperf
/// times.
pub fn run_catalog_sampled(scale: Scale, sample: SampleConfig) -> Vec<SampledRow> {
    catalog()
        .iter()
        .map(|entry| {
            let variant = if entry.variants.contains(&Variant::Base) { Variant::Base } else { entry.variants[0] };
            let wl = entry.build(variant, scale);
            let t0 = Instant::now();
            let report = Core::new(CoreConfig::default(), wl.program.clone(), wl.mem.clone())
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name))
                .run(CYCLE_LIMIT)
                .unwrap_or_else(|e| panic!("{} [{variant}]: {e}", entry.name));
            let wall_full_ms = t0.elapsed().as_secs_f64().max(1e-9) * 1e3;
            let t1 = Instant::now();
            let sampled = run_sampled(CoreConfig::default(), wl.program, wl.mem, sample, CYCLE_LIMIT)
                .unwrap_or_else(|e| panic!("{} [{variant}] sampled: {e}", entry.name));
            let wall_sampled_ms = t1.elapsed().as_secs_f64().max(1e-9) * 1e3;
            let ipc_full = report.ipc();
            let ipc_sampled = sampled.ipc_estimate();
            SampledRow {
                name: entry.name,
                variant,
                ipc_full,
                ipc_sampled,
                err_percent: ((ipc_sampled - ipc_full) / ipc_full.max(1e-12)).abs() * 100.0,
                wall_full_ms,
                wall_sampled_ms,
                speedup: wall_full_ms / wall_sampled_ms.max(1e-9),
                intervals: sampled.intervals,
            }
        })
        .collect()
}

/// Rows whose sampled IPC estimate missed full detail by more than
/// `bound_percent`. Unlike the KIPS floors this check *is* deterministic,
/// so callers may gate hard on it.
pub fn sampled_over_bound(rows: &[SampledRow], bound_percent: f64) -> Vec<&SampledRow> {
    rows.iter().filter(|r| r.err_percent > bound_percent).collect()
}

/// Plain-text table of the sampled cross-check plus a summary line with
/// the maximum error and aggregate speedup.
pub fn sampled_table(rows: &[SampledRow]) -> String {
    let mut out = format!(
        "{:<22} {:>9} {:>9} {:>9} {:>7} {:>10} {:>9} {:>8} {:>6}\n",
        "workload", "variant", "ipc_full", "ipc_samp", "err%", "full_ms", "samp_ms", "speedup", "ivals"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>9.4} {:>9.4} {:>7.2} {:>10.1} {:>9.1} {:>8.2} {:>6}\n",
            r.name,
            r.variant.label(),
            r.ipc_full,
            r.ipc_sampled,
            r.err_percent,
            r.wall_full_ms,
            r.wall_sampled_ms,
            r.speedup,
            r.intervals
        ));
    }
    let max_err = rows.iter().map(|r| r.err_percent).fold(0.0f64, f64::max);
    let full_ms: f64 = rows.iter().map(|r| r.wall_full_ms).sum();
    let samp_ms: f64 = rows.iter().map(|r| r.wall_sampled_ms).sum();
    out.push_str(&format!(
        "[simperf] sampled max IPC error {max_err:.2}%, catalog wall {full_ms:.0} ms full vs {samp_ms:.0} ms sampled ({:.2}x)\n",
        full_ms / samp_ms.max(1e-9)
    ));
    out
}

/// Rows whose simulation speed fell below `floor` KIPS.
///
/// This feeds the *soft* throughput gate: timings are host-dependent, so
/// a slow row is a warning for a human (or CI log reader), never a hard
/// failure. Callers print one warning line per returned row.
pub fn below_floor(rows: &[PerfRow], floor: f64) -> Vec<&PerfRow> {
    rows.iter().filter(|r| r.kips < floor).collect()
}

/// Plain-text table of the timed runs plus a totals row.
pub fn table(rows: &[PerfRow]) -> String {
    let mut out = format!(
        "{:<22} {:>9} {:>12} {:>12} {:>9} {:>9} {:>9}\n",
        "workload", "variant", "retired", "cycles", "ms", "KIPS", "KCPS"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>12} {:>12} {:>9.1} {:>9.0} {:>9.0}\n",
            r.name,
            r.variant.label(),
            r.retired,
            r.cycles,
            r.wall_ms,
            r.kips,
            r.kcps
        ));
    }
    let (retired, cycles): (u64, u64) = rows.iter().fold((0, 0), |(a, b), r| (a + r.retired, b + r.cycles));
    let ms: f64 = rows.iter().map(|r| r.wall_ms).sum();
    out.push_str(&format!(
        "{:<22} {:>9} {:>12} {:>12} {:>9.1} {:>9.0} {:>9.0}\n",
        "TOTAL",
        "",
        retired,
        cycles,
        ms,
        retired as f64 / ms.max(1e-9),
        cycles as f64 / ms.max(1e-9)
    ));
    out
}

/// JSON rendering (one object per row; timings are host-dependent).
pub fn to_json(rows: &[PerfRow]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"workload\":\"{}\",\"variant\":\"{}\",\"retired\":{},\"cycles\":{},\"wall_ms\":{:.3},\"kips\":{:.1},\"kcps\":{:.1}}}",
            r.name,
            r.variant.label(),
            r.retired,
            r.cycles,
            r.wall_ms,
            r.kips,
            r.kcps
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_columns_are_deterministic() {
        let scale = Scale { n: 60, ..Scale::default() };
        let a = run_catalog(scale);
        let b = run_catalog(scale);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.name, x.retired, x.cycles), (y.name, y.retired, y.cycles));
            assert!(x.kips > 0.0);
        }
    }

    #[test]
    fn floor_flags_only_slow_rows() {
        let mut rows = run_catalog(Scale { n: 40, ..Scale::default() });
        assert!(below_floor(&rows, 0.0).is_empty(), "a zero floor flags nothing");
        assert_eq!(below_floor(&rows, f64::INFINITY).len(), rows.len(), "an infinite floor flags everything");
        rows[0].kips = 1.0;
        let slow = below_floor(&rows, 2.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, rows[0].name);
    }

    #[test]
    fn profiled_catalog_matches_plain_simulated_columns() {
        let scale = Scale { n: 40, ..Scale::default() };
        let plain = run_catalog(scale);
        let (rows, profile) = run_catalog_profiled(scale);
        assert_eq!(plain.len(), rows.len());
        for (x, y) in plain.iter().zip(&rows) {
            assert_eq!(
                (x.name, x.retired, x.cycles),
                (y.name, y.retired, y.cycles),
                "profiling must not perturb simulation"
            );
        }
        let total_cycles: u64 = rows.iter().map(|r| r.cycles).sum();
        assert_eq!(profile.cycles, total_cycles, "merged profile covers every catalog cycle");
        assert_eq!(profile.shares_bp().iter().sum::<u64>(), 10_000);
        let rendered = profile_table(&profile);
        assert!(rendered.contains("stage shares sum to 100.00%"), "{rendered}");
        assert!(rendered.contains("scheduler"), "{rendered}");
    }

    #[test]
    fn history_record_is_one_json_line_with_optional_profile() {
        let rows = run_catalog(Scale { n: 40, ..Scale::default() });
        let bare = history_record(&rows, None, 1_700_000_000, 40);
        assert!(bare.starts_with("{\"ts\":1700000000,\"scale\":40,\"rows\":["), "{bare}");
        assert!(bare.ends_with(",\"profile\":null}"), "{bare}");
        assert!(!bare.contains('\n'));
        let (rows, profile) = run_catalog_profiled(Scale { n: 40, ..Scale::default() });
        let with = history_record(&rows, Some(&profile), 1, 40);
        assert!(with.contains("\"profile\":{\"ns\":{\"frontend\":"), "{with}");
    }

    #[test]
    fn json_has_one_object_per_row() {
        let rows = run_catalog(Scale { n: 40, ..Scale::default() });
        let json = to_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"workload\"").count(), rows.len());
    }
}
