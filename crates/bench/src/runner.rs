//! Shared experiment plumbing: timing runs, speedups, table formatting.
//!
//! Since the `cfd-exec` port, every figure runs in two phases: enumerate
//! the simulations into a [`Batch`], run them all at once on the engine
//! (parallel, content-cached), then format results looked up by
//! [`Handle`]. Results always come back in submission order, so the
//! rendered tables are byte-identical at any `--jobs` count.

use cfd_core::{Core, CoreConfig, RunReport};
use cfd_energy::EnergyModel;
use cfd_exec::{CampaignJob, Engine, FuncJob, ProfileJob, SimJob};
use cfd_workloads::{CatalogEntry, Scale, Variant, Workload};
use std::fmt::Write as _;

/// Default cycle budget per timing run (well above any legitimate run).
pub const CYCLE_LIMIT: u64 = 400_000_000;

/// Default experiment scale (~0.25M base instructions per run).
pub fn default_scale() -> Scale {
    Scale::default()
}

/// A smaller scale for the expensive sweeps.
pub fn sweep_scale() -> Scale {
    Scale { n: 8_000, ..Scale::default() }
}

/// Runs one workload on one configuration.
///
/// # Panics
///
/// Panics when the simulation fails — experiments treat simulator errors
/// as fatal.
pub fn run(workload: &Workload, cfg: &CoreConfig) -> RunReport {
    Core::new(cfg.clone(), workload.program.clone(), workload.mem.clone())
        .unwrap()
        .run(CYCLE_LIMIT)
        .unwrap_or_else(|e| panic!("{} [{}] failed: {e}", workload.name, workload.variant))
}

/// Builds and runs a catalog entry variant on a configuration.
pub fn run_variant(entry: &CatalogEntry, variant: Variant, scale: Scale, cfg: &CoreConfig) -> RunReport {
    let w = entry.build(variant, scale);
    run(&w, cfg)
}

/// A ticket for one job submitted to a [`Batch`]; redeem it against the
/// [`Results`] the batch returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle(usize);

/// A batch of campaign jobs headed for the engine.
///
/// Figures enumerate their whole sweep into a batch, call
/// [`run`](Batch::run) once, and then format — the two-phase structure
/// that lets the engine parallelize and cache the simulations.
pub struct Batch<'e, J: CampaignJob> {
    engine: &'e Engine,
    jobs: Vec<J>,
}

impl<'e, J: CampaignJob> Batch<'e, J> {
    /// An empty batch bound to `engine`.
    pub fn new(engine: &'e Engine) -> Batch<'e, J> {
        Batch { engine, jobs: Vec::new() }
    }

    /// Submits a job, returning its handle.
    pub fn push(&mut self, job: J) -> Handle {
        self.jobs.push(job);
        Handle(self.jobs.len() - 1)
    }

    /// Runs every submitted job.
    ///
    /// # Panics
    ///
    /// Panics with the failing job's message if any job failed —
    /// experiments treat simulator errors as fatal, exactly as the serial
    /// runner always has.
    pub fn run(self) -> Results<J::Output> {
        let results =
            self.engine.run_all(&self.jobs).into_iter().map(|r| r.unwrap_or_else(|e| panic!("{e}"))).collect();
        Results(results)
    }
}

impl Batch<'_, SimJob> {
    /// Submits a timing run of `workload` on `cfg` (standard cycle
    /// budget).
    pub fn sim(&mut self, workload: &Workload, cfg: &CoreConfig) -> Handle {
        self.push(SimJob { workload: workload.clone(), cfg: cfg.clone(), cycle_limit: CYCLE_LIMIT })
    }

    /// Builds a catalog entry variant and submits its timing run.
    pub fn sim_variant(&mut self, entry: &CatalogEntry, variant: Variant, scale: Scale, cfg: &CoreConfig) -> Handle {
        let w = entry.build(variant, scale);
        self.sim(&w, cfg)
    }
}

impl Batch<'_, ProfileJob> {
    /// Submits a branch-profiling run of `workload`.
    pub fn profile(&mut self, workload: &Workload, predictor: &str, instruction_limit: u64) -> Handle {
        self.push(ProfileJob { workload: workload.clone(), predictor: predictor.to_string(), instruction_limit })
    }
}

impl Batch<'_, FuncJob> {
    /// Submits a functional instruction-count run of `workload`.
    pub fn func(&mut self, workload: &Workload) -> Handle {
        self.push(FuncJob { workload: workload.clone() })
    }
}

/// Results of a [`Batch`], indexed by [`Handle`].
pub struct Results<T>(Vec<T>);

impl<T> std::ops::Index<Handle> for Results<T> {
    type Output = T;

    fn index(&self, h: Handle) -> &T {
        &self.0[h.0]
    }
}

/// Relative energy of `report` versus `baseline` under the default model.
pub fn relative_energy(report: &RunReport, baseline: &RunReport) -> f64 {
    let model = EnergyModel::default();
    report.energy(&model).total_pj / baseline.energy(&model).total_pj
}

/// A plain-text table builder for experiment output.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Adds a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let pad = widths[c] - cell.len();
                if c == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "  {}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as e.g. `1.43x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage with sign, e.g. `+43.1%` / `-12.0%`.
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["x", "1.00"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.434), "1.43x");
        assert_eq!(pct(0.431), "+43.1%");
        assert_eq!(pct(-0.12), "-12.0%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
