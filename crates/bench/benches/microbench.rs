//! Criterion microbenchmarks of the simulator's own building blocks.
//!
//! These measure *simulator* throughput (not simulated performance): the
//! predictor, the fetch-resident queues, the cache hierarchy, the rename
//! structures, the functional simulator, and a small end-to-end pipeline
//! run. Useful for keeping the experiment harness fast.

use cfd_core::{Core, CoreConfig, FetchBq, RenameState, VqRenamer};
use cfd_isa::{Assembler, Machine, MemImage, NullSink, Reg};
use cfd_mem::{Hierarchy, HierarchyConfig};
use cfd_predictor::{DirectionPredictor, IslTage};
use cfd_workloads::{by_name, Scale, Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("isl_tage_predict_train", |b| {
        let mut p = IslTage::new();
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let pc = 0x40 + (k % 16) * 4;
            let taken = (k * 2654435761) % 100 < 60;
            black_box(p.observe(pc, taken));
        });
    });
}

fn bench_bq(c: &mut Criterion) {
    c.bench_function("fetch_bq_push_exec_pop", |b| {
        let mut bq = FetchBq::new(128);
        b.iter(|| {
            let abs = bq.fetch_push();
            bq.execute_push(abs, abs.is_multiple_of(3));
            let (_, pred) = bq.fetch_pop();
            bq.retire_push();
            bq.retire_pop();
            black_box(pred);
        });
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_access_mixed", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let addr = (k.wrapping_mul(2654435761)) % (1 << 22);
            black_box(h.access(0x40, addr, k.is_multiple_of(7), k));
        });
    });
}

fn bench_rename(c: &mut Criterion) {
    c.bench_function("rename_dest_unrename", |b| {
        let mut rs = RenameState::new(224);
        let r5 = Reg::new(5);
        b.iter(|| {
            let (p, prev) = rs.rename_dest(r5).expect("free regs");
            rs.unrename(r5, p, prev);
        });
    });
    c.bench_function("vq_renamer_push_pop", |b| {
        let mut vq = VqRenamer::new(128);
        let mut k = 0u16;
        b.iter(|| {
            k = k.wrapping_add(1);
            vq.rename_push(k % 200);
            black_box(vq.rename_pop());
            vq.retire_push();
            vq.retire_pop();
        });
    });
}

fn bench_functional_sim(c: &mut Criterion) {
    c.bench_function("functional_sim_kernel", |b| {
        let w = by_name("gromacs_like").unwrap().build(Variant::Base, Scale { n: 200, seed: 1 });
        b.iter(|| {
            let mut m = Machine::new(w.program.clone(), w.mem.clone());
            m.run(10_000_000, &mut NullSink).unwrap();
            black_box(m.retired());
        });
    });
}

fn bench_timing_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing_core");
    g.sample_size(10);
    g.bench_function("pipeline_small_loop", |b| {
        let mut a = Assembler::new();
        let (i, n, s) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(n, 2_000);
        a.label("top");
        a.add(s, s, i);
        a.xor(s, s, 7i64);
        a.addi(i, i, 1);
        a.blt(i, n, "top");
        a.halt();
        let program = a.finish().unwrap();
        b.iter(|| {
            let rep = Core::new(CoreConfig::default(), program.clone(), MemImage::new()).run(10_000_000).unwrap();
            black_box(rep.stats.cycles);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predictor,
    bench_bq,
    bench_hierarchy,
    bench_rename,
    bench_functional_sim,
    bench_timing_core
);
criterion_main!(benches);
