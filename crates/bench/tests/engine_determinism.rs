//! The determinism and caching contracts of the lint sweep when it runs
//! through the campaign engine: worker count never changes a byte of
//! output, and a warm cache replays the sweep without executing anything.

use cfd_bench::lint::{lint_all, lint_all_on, table, to_json};
use cfd_exec::{Engine, ExecConfig};
use std::path::PathBuf;

fn engine(jobs: usize, cache_dir: Option<PathBuf>) -> Engine {
    match cache_dir {
        Some(dir) => Engine::new(ExecConfig { jobs, use_cache: true, cache_dir: dir, ..ExecConfig::default() }),
        None => Engine::new(ExecConfig { jobs, use_cache: false, ..ExecConfig::default() }),
    }
}

/// The engine path at any worker count reproduces the serial sweep
/// byte-for-byte — table and JSON both.
#[test]
fn lint_sweep_is_worker_count_invariant() {
    let serial_rows = lint_all();
    let one = lint_all_on(&engine(1, None));
    let four = lint_all_on(&engine(4, None));
    assert_eq!(table(&serial_rows), table(&one));
    assert_eq!(to_json(&serial_rows), to_json(&one));
    assert_eq!(table(&one), table(&four));
    assert_eq!(to_json(&one), to_json(&four));
}

/// A second sweep against a warm cache performs zero lint executions and
/// still emits identical bytes.
#[test]
fn warm_cache_lint_sweep_executes_nothing() {
    let dir = std::env::temp_dir().join(format!("cfd-bench-lint-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = engine(2, Some(dir.clone()));
    let cold_rows = lint_all_on(&cold);
    assert!(cold.stats().executed > 0);
    assert_eq!(cold.stats().cache_hits, 0);

    let warm = engine(2, Some(dir.clone()));
    let warm_rows = lint_all_on(&warm);
    assert_eq!(warm.stats().executed, 0, "warm cache must re-run nothing");
    assert_eq!(warm.stats().cache_hits, cold.stats().executed);
    assert_eq!(to_json(&cold_rows), to_json(&warm_rows));
    assert_eq!(table(&cold_rows), table(&warm_rows));

    let _ = std::fs::remove_dir_all(&dir);
}
