//! Regression lock on the catalog-wide separability sweep: the table of
//! branch classes, automatic CFD decisions, and differential gates that
//! `experiments separability` prints must stay byte-deterministic, keep
//! all gates green, and keep demonstrating the speculative upgrade the
//! precise alias tier exists for.

use cfd_bench::separability::{gate_ok, run_separability, to_json};
use cfd_workloads::Scale;

fn sweep() -> Vec<cfd_bench::separability::SeparabilityRow> {
    run_separability(Scale { n: 400, seed: 9 })
}

/// Every gate holds: no dynamic contradiction of a static disjointness
/// claim, every accepted rewrite lints clean and reproduces the
/// original's observables, and the speculative tier upgrades at least
/// one heuristic-inseparable branch.
#[test]
fn all_gates_hold() {
    assert!(gate_ok(&sweep()));
}

/// The flagship upgrade: the same-base scatter kernel is inseparable to
/// the name heuristic, speculatively separable to the value-range tier,
/// and the derived speculative rewrite survives every gate.
#[test]
fn spec_scatter_upgrades_and_survives() {
    let rows = sweep();
    let r = rows
        .iter()
        .find(|r| r.kernel == "soplex_upd_like" && r.class == "speculatively separable")
        .expect("upgrade row present");
    assert_eq!(r.heuristic_class, "inseparable");
    assert_eq!(r.decision, "cfd-spec");
    assert_eq!((r.slice_loads, r.proven_safe_loads, r.unsafe_loads), (1, 1, 0));
    assert!(r.claims >= 1, "speculation must rest on explicit claims");
    assert_eq!(r.contradicted, 0, "claims contradicted dynamically");
    let a = r.applied.as_ref().expect("rewrite accepted");
    assert_eq!((a.decision.as_str(), a.hoisted_loads, a.lint_errors, a.equivalent), ("cfd-spec", 1, 0, true));
}

/// A selector rejection is recorded honestly, never silently dropped:
/// the non-canonical TQ nests stay in the table with their refusal.
#[test]
fn rejections_are_recorded() {
    let rows = sweep();
    let r = rows.iter().find(|r| r.kernel == "bzip2_tq_like" && r.decision == "cfd-tq").expect("tq row present");
    assert!(r.applied.is_none());
    assert!(r.error.as_deref().is_some_and(|e| e.contains("not canonical")));
}

/// The checked-in fixture is the byte-exact JSON of a passing sweep; a
/// diff means either nondeterminism or a verdict change, and both need
/// a deliberate fixture update alongside the code change.
#[test]
fn sweep_matches_checked_in_fixture() {
    let expected = include_str!("fixtures/separability.json");
    let actual = to_json(&sweep());
    assert_eq!(actual.trim(), expected.trim(), "separability sweep diverged from fixture");
}
