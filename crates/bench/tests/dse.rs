//! `experiments dse` integration: the tiny grid end-to-end (deterministic
//! across worker counts, structurally sound) and structural checks on the
//! checked-in flagship fixture — parsed and re-analyzed, never
//! re-simulated (the 216-point grid is release-binary work; verify.sh
//! regenerates it and `cmp`s the bytes).

use cfd_exec::{Engine, ExecConfig};
use cfd_serve::{frontier, run_sweep, DseRow, SweepConfig};

fn cacheless(jobs: usize) -> Engine {
    Engine::new(ExecConfig { jobs, use_cache: false, journal: false, ..ExecConfig::default() })
}

#[test]
fn tiny_sweep_report_is_deterministic_and_structured() {
    let cfg = SweepConfig::preset_tiny();
    let a = run_sweep(&cacheless(1), &cfg).unwrap();
    let b = run_sweep(&cacheless(2), &cfg).unwrap();
    assert_eq!(a, b, "report bytes must not depend on worker count");

    let points = cfg.expand().unwrap().len();
    assert!(a.starts_with(&format!("# DSE sweep: {}, {points} points\n", cfg.describe())));
    let (table, front) = parse_report(&a);
    assert_eq!(table.len(), points);
    assert!(!front.is_empty(), "a finite sweep always has a frontier");
    assert!(front.len() <= table.len());
}

/// The flagship fixture holds the contract the issue names: >= 200 grid
/// points, a non-empty frontier, and no dominated point on it. The rows
/// are parsed back from the rendered table and re-analyzed with the same
/// `frontier` the generator used — at table precision the rendered
/// digits round-trip exactly, so this re-derivation is lossless.
#[test]
fn flagship_fixture_has_full_grid_and_clean_frontier() {
    let text = std::fs::read_to_string("tests/fixtures/dse_default.txt")
        .expect("checked-in fixture tests/fixtures/dse_default.txt");
    let (table, front) = parse_report(&text);
    assert!(table.len() >= 200, "flagship grid must have >= 200 points, found {}", table.len());
    assert!(!front.is_empty(), "frontier must be non-empty");

    let recomputed = frontier(&table);
    let expected: Vec<String> = recomputed.iter().map(|&i| table[i].label.clone()).collect();
    let got: Vec<String> = front.iter().map(|r| r.label.clone()).collect();
    assert_eq!(got, expected, "fixture frontier must be exactly the non-dominated set, in grid order");

    // Every frontier row repeats a grid row verbatim.
    for f in &front {
        assert!(
            table.iter().any(|t| t.label == f.label && t.ipc == f.ipc && t.mpki == f.mpki && t.edp == f.edp),
            "frontier row {} not found in the grid table",
            f.label
        );
    }
}

/// Parses the rendered report back into (grid rows, frontier rows).
fn parse_report(text: &str) -> (Vec<DseRow>, Vec<DseRow>) {
    let mut table = Vec::new();
    let mut front = Vec::new();
    let mut in_front = false;
    for line in text.lines() {
        if line.starts_with("# Pareto frontier") {
            in_front = true;
            continue;
        }
        if line.starts_with('#') || line.starts_with("point") || line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split_whitespace().collect();
        assert!(cols.len() >= 4, "malformed row: {line}");
        let row = DseRow {
            label: cols[..cols.len() - 3].join(" "),
            ipc: cols[cols.len() - 3].parse().unwrap(),
            mpki: cols[cols.len() - 2].parse().unwrap(),
            edp: cols[cols.len() - 1].parse().unwrap(),
        };
        if in_front {
            front.push(row);
        } else {
            table.push(row);
        }
    }
    (table, front)
}
