//! Regression lock on the static verifier's catalog sweep: the full
//! `experiments lint` row set (every catalog variant plus the transform
//! outputs) must stay clean, deterministic, and honest about degraded
//! analyses.

use cfd_bench::lint::{error_count, lint_all, to_json};

/// Zero false positives across the whole catalog + transform sweep —
/// the ISSUE acceptance bar. Any error finding on a shipped kernel is
/// either a verifier regression or a genuine kernel bug; both must stop
/// the build.
#[test]
fn catalog_sweep_is_error_free() {
    let rows = lint_all();
    assert!(rows.len() >= 80, "sweep shrank to {} rows", rows.len());
    for r in &rows {
        assert!(r.report.clean(), "{} / {} regressed:\n{}", r.kernel, r.variant, r.report.table());
    }
    assert_eq!(error_count(&rows), 0);
}

/// A degraded analysis must not publish bounds it never finished
/// proving: every row carrying an `analysis-degraded` diagnostic has to
/// report all queue bounds as unknown. (The astar_r1 CFD variants hit
/// this path — their mark/forward mid-loop defeats loop summarization.)
#[test]
fn degraded_rows_claim_no_bounds() {
    let rows = lint_all();
    let mut degraded = 0;
    for r in &rows {
        if r.report.diagnostics.iter().any(|d| d.rule.name() == "analysis-degraded") {
            degraded += 1;
            assert!(
                r.report.bounds.bq.is_none() && r.report.bounds.vq.is_none() && r.report.bounds.tq.is_none(),
                "{} / {} degraded but claims bounds: {}",
                r.kernel,
                r.variant,
                r.report.table()
            );
        }
    }
    // The contract must actually be exercised by the catalog.
    assert!(degraded >= 1, "no degraded rows left in the catalog");
}

/// The checked-in fixture is the byte-exact JSON of a clean sweep; a
/// diff means either nondeterminism or a verdict change, and both need
/// a deliberate fixture update alongside the code change.
#[test]
fn sweep_matches_checked_in_fixture() {
    let expected = include_str!("fixtures/lint_catalog.json");
    let actual = to_json(&lint_all());
    assert_eq!(actual.trim(), expected.trim(), "lint sweep diverged from fixture");
}
