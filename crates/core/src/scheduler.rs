//! Issue/execute stage: event-driven wakeup, FU arbitration, and the
//! completion wheel.
//!
//! The scheduler never polls the IQ. Dispatch registers each backend
//! instruction via [`Pipeline::register_or_ready`]: instructions with all
//! sources computed go straight to `ready_list` (a `BTreeSet` of ROB
//! ordinals, so iteration is oldest-first); the rest park either on a
//! physical register's waiter list (value not computed yet) or on the
//! `wakeup_wheel` bucket of the cycle the value arrives. Producer writes go
//! through [`Pipeline::prf_write`], which drains waiter lists into the
//! wheel, and `issue` drains due wheel buckets before selecting.
//!
//! Timing is identical to a per-cycle polling scheduler by construction:
//! `issue` re-validates the full polling predicate (liveness + source
//! readiness) on every candidate it examines, so a stale ordinal — squashed,
//! reused after recovery, or re-blocked because fault injection pointed it
//! at a recycled register — is dropped or re-registered, never issued early.
//! Completion replaces the `exec_list` rescan with `completion_wheel`
//! buckets keyed by each instruction's `ready_at`.

use crate::fault::{FaultKind, FaultSite};
use crate::host::MemoryHost;
use crate::lsq::ForwardState;
use crate::pipeline::{extract, Pipeline};
use crate::rename::join_taint;
use cfd_isa::{eval_alu, Instr, Src2};

/// Function-unit class an instruction competes for at issue (the paper's
/// Sandy-Bridge-class port model). One classification used for both the
/// availability check and the port-count bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuClass {
    /// Simple ALU ops (including CFD queue pushes/pops executed as ALU ops).
    Simple,
    /// Complex ALU ops (mul/div class).
    Complex,
    /// Load ports (loads and non-binding prefetches).
    Load,
    /// Store (address-generation) ports.
    Store,
    /// Branch-resolution units.
    Branch,
    /// Not port-limited (never reaches the IQ in practice).
    Unbounded,
}

impl FuClass {
    /// Index into the per-cycle port-usage table (`None` = unlimited).
    fn slot(self) -> Option<usize> {
        match self {
            FuClass::Simple => Some(0),
            FuClass::Complex => Some(1),
            FuClass::Load => Some(2),
            FuClass::Store => Some(3),
            FuClass::Branch => Some(4),
            FuClass::Unbounded => None,
        }
    }
}

/// The single FU-classification map (availability check and port bump both
/// go through this).
pub(crate) fn fu_class(instr: &Instr) -> FuClass {
    match instr {
        Instr::Alu { op, .. } if op.is_complex() => FuClass::Complex,
        Instr::Alu { .. }
        | Instr::Li { .. }
        | Instr::PushBq { .. }
        | Instr::PushVq { .. }
        | Instr::PopVq { .. }
        | Instr::PushTq { .. } => FuClass::Simple,
        Instr::Load { .. } | Instr::Prefetch { .. } => FuClass::Load,
        Instr::Store { .. } => FuClass::Store,
        Instr::Branch { .. } | Instr::Jr { .. } => FuClass::Branch,
        _ => FuClass::Unbounded,
    }
}

impl Pipeline {
    // ------------------------------------------------------------------
    // Wakeup
    // ------------------------------------------------------------------

    /// Places a dispatched backend instruction under scheduler tracking:
    /// into `ready_list` when every source is computed, otherwise parked on
    /// its first blocking source (waiter list when the value has no
    /// completion time yet, wakeup wheel when it does). The readiness
    /// predicate is exactly the polling scheduler's: stores wait on address
    /// readiness alone.
    pub(crate) fn register_or_ready(&mut self, rob_seq: u64) {
        let Some(i) = self.rob_idx(rob_seq) else { return };
        let (psrc1, psrc2, is_store, live) = {
            let e = &self.rob[i];
            let is_store = matches!(e.instr, Instr::Store { .. });
            (e.psrc1, e.psrc2, is_store, e.dispatched && !e.issued && e.in_iq)
        };
        if !live {
            return;
        }
        let now = self.now;
        let srcs = [psrc1, if is_store { None } else { psrc2 }];
        for p in srcs.into_iter().flatten() {
            if !self.rename.is_ready(p, now) {
                let at = self.rename.ready_at(p);
                if at == u64::MAX {
                    self.rename.add_waiter(p, rob_seq);
                } else {
                    self.wakeup_wheel.entry(at).or_default().push(rob_seq);
                }
                return;
            }
        }
        self.ready_list.insert(rob_seq);
    }

    /// Moves every wakeup event due by now into the ready queue.
    fn drain_wakeups(&mut self) {
        while let Some(entry) = self.wakeup_wheel.first_entry() {
            if *entry.key() > self.now {
                break;
            }
            let seqs = entry.remove();
            for rob_seq in seqs {
                self.sched_wakeup_events += 1;
                self.register_or_ready(rob_seq);
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue (select)
    // ------------------------------------------------------------------

    pub(crate) fn issue(&mut self) {
        self.drain_wakeups();
        // What a polling scheduler would have scanned this cycle.
        self.sched_poll_equiv += self.iq_count as u64;
        let mut issued = 0usize;
        let mut in_use = [0usize; 5];
        let limits = [
            self.cfg.n_alu,
            self.cfg.n_complex,
            self.cfg.n_load_ports,
            self.cfg.n_store_ports,
            self.cfg.n_branch_units,
        ];
        let now = self.now;

        // Oldest-first select over the ready queue. The set is not mutated
        // inside the loop (issue never triggers recovery), so a snapshot of
        // the ordinals is safe; removals are applied after the scan.
        let candidates: Vec<u64> = self.ready_list.iter().copied().collect();
        let mut remove: Vec<u64> = Vec::new();
        let mut reregister: Vec<u64> = Vec::new();
        for seq in candidates {
            if issued >= self.cfg.issue_width {
                break;
            }
            self.sched_ready_checks += 1;
            // Liveness: recovery prunes `ready_list`, but a pruned-then-
            // reused ordinal or a lazily-dropped wheel entry can still
            // surface here. The checks below make such entries inert.
            let Some(i) = self.rob_idx(seq) else {
                remove.push(seq);
                continue;
            };
            {
                let e = &self.rob[i];
                if !(e.dispatched && !e.issued && e.in_iq) {
                    remove.push(seq);
                    continue;
                }
                debug_assert!(e.needs_backend());
            }
            // Source readiness, re-validated with the polling predicate:
            // a register can become un-ready after this entry was enqueued
            // (fault injection can point an operand at a register that a
            // younger instruction re-allocates). Stores issue on address
            // readiness alone (split agen/data, like a real LSQ): the data
            // may arrive later and is checked at forwarding/retire time.
            let e = &self.rob[i];
            let is_store = matches!(e.instr, Instr::Store { .. });
            let ready = e.psrc1.is_none_or(|p| self.rename.is_ready(p, now))
                && (is_store || e.psrc2.is_none_or(|p| self.rename.is_ready(p, now)));
            if !ready {
                remove.push(seq);
                reregister.push(seq);
                continue;
            }
            // FU availability.
            let class = fu_class(&e.instr);
            let fu_ok = class.slot().is_none_or(|k| in_use[k] < limits[k]);
            if !fu_ok {
                continue; // stays in the ready queue for next cycle
            }
            // Loads: conservative disambiguation (all older stores have
            // computed addresses; exact-match forwarding; partial overlap
            // waits for the store to drain).
            if matches!(e.instr, Instr::Load { .. }) && !self.load_may_issue(i) {
                continue;
            }

            // Issue.
            if let Some(k) = class.slot() {
                in_use[k] += 1;
            }
            if !self.execute_at(i) {
                // Transient structural refusal (e.g. MSHRs full): retry.
                if let Some(k) = class.slot() {
                    in_use[k] -= 1;
                }
                continue;
            }
            issued += 1;
            self.stats.issued += 1;
            remove.push(seq);
            let ready_at = self.rob[i].ready_at;
            self.completion_wheel.entry(ready_at).or_default().push(seq);
            if self.rob[i].on_wrong_path {
                self.stats.wrong_path_issued += 1;
            }
            self.events.iq_wakeups += 1;
            if self.rob[i].in_iq {
                self.rob[i].in_iq = false;
                self.iq_count -= 1;
            }
        }
        for seq in remove {
            self.ready_list.remove(&seq);
        }
        for seq in reregister {
            self.register_or_ready(seq);
        }
    }

    /// Computes the instruction at ROB index `i` and schedules its
    /// completion. Returns false when a structural resource (MSHR) refused
    /// it this cycle.
    fn execute_at(&mut self, i: usize) -> bool {
        let now = self.now;
        let (instr, pc, psrc1, psrc2) = {
            let e = &self.rob[i];
            (e.instr, e.pc, e.psrc1, e.psrc2)
        };
        let v1 = psrc1.map(|p| self.rename.read(p)).unwrap_or(0);
        let v2 = psrc2.map(|p| self.rename.read(p)).unwrap_or(0);
        let t1 = psrc1.and_then(|p| self.rename.taint(p));
        let t2 = psrc2.and_then(|p| self.rename.taint(p));
        let in_taint = join_taint(t1, t2);
        self.events.regfile_reads += psrc1.is_some() as u64 + psrc2.is_some() as u64;

        let mut value = 0i64;
        let mut out_taint = in_taint;
        let latency: u64;
        match instr {
            Instr::Alu { op, src2, .. } => {
                let b = match src2 {
                    Src2::Reg(_) => v2,
                    Src2::Imm(imm) => imm,
                };
                value = eval_alu(op, v1, b);
                latency = if op.is_complex() {
                    self.events.alu_complex += 1;
                    if matches!(op, cfd_isa::AluOp::Div | cfd_isa::AluOp::Rem) {
                        20
                    } else {
                        3
                    }
                } else {
                    self.events.alu_simple += 1;
                    1
                };
            }
            Instr::Li { imm, .. } => {
                value = imm;
                out_taint = None;
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::Load { offset, width, signed, .. } => {
                let addr = (v1 as u64).wrapping_add(offset as u64);
                self.events.lsq_ops += 1;
                // Store-to-load forwarding.
                match self.forwarding_source(i, addr, width) {
                    ForwardState::Forward { data, taint } => {
                        self.stats.lsq_forwards += 1;
                        value = extract(data, width, signed);
                        // The forwarded value carries the store data's taint.
                        out_taint = join_taint(in_taint, taint);
                        latency = 2;
                    }
                    ForwardState::Memory => {
                        let res = self.mem.data_access(pc as u64 * 4, addr, false, now);
                        if res.mshr_full {
                            return false;
                        }
                        value = self.oracle.mem.read(addr, width, signed);
                        out_taint = join_taint(in_taint, Some(res.level));
                        // Fault injection: a delayed memory response is a
                        // timing-only perturbation and must be masked.
                        let extra = match self.fault_at(FaultSite::LoadAccess) {
                            Some(FaultKind::MemDelay(n)) => n,
                            _ => 0,
                        };
                        latency = res.latency as u64 + extra;
                    }
                    ForwardState::MustWait => unreachable!("checked by load_may_issue"),
                }
                self.rob[i].eff_addr = Some(addr);
            }
            Instr::Prefetch { offset, .. } => {
                let addr = (v1 as u64).wrapping_add(offset as u64);
                let res = self.mem.data_access(pc as u64 * 4, addr, false, now);
                if res.mshr_full {
                    return false;
                }
                self.rob[i].eff_addr = Some(addr);
                latency = 1; // non-binding: completes immediately
                self.events.lsq_ops += 1;
            }
            Instr::Store { offset, .. } => {
                // Address generation only; data is read from the PRF when a
                // load forwards from this store (or implicitly at retire via
                // the oracle).
                let addr = (v1 as u64).wrapping_add(offset as u64);
                self.rob[i].eff_addr = Some(addr);
                latency = 1;
                self.events.lsq_ops += 1;
            }
            Instr::Branch { .. } | Instr::Jr { .. } => {
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::PushBq { .. } | Instr::PushTq { .. } => {
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::PushVq { .. } => {
                value = v1;
                latency = 1;
                self.events.alu_simple += 1;
                self.events.vq_ops += 1;
            }
            Instr::PopVq { .. } => {
                value = v1;
                latency = 1;
                self.events.alu_simple += 1;
                self.events.vq_ops += 1;
            }
            _ => unreachable!("execute_at on a fetch-resolved instruction"),
        }

        let pdest = {
            let e = &mut self.rob[i];
            e.issued = true;
            e.t_issue = now;
            e.ready_at = now + latency;
            e.taint = out_taint;
            e.pdest
        };
        if let Some(p) = pdest {
            // The waiter-draining write: consumers parked on `p` move to
            // the wakeup wheel at `ready_at`.
            self.prf_write(p, value, now + latency, out_taint);
            self.events.regfile_writes += 1;
        }
        true
    }

    // ------------------------------------------------------------------
    // Complete (writeback / resolve)
    // ------------------------------------------------------------------

    pub(crate) fn complete(&mut self) {
        // Drain every completion bucket due by now, oldest-first (recovery
        // squashes younger ones). A bucket entry is only a *hint*: the
        // liveness check below drops ordinals that were squashed (and
        // possibly reused) after their instruction issued.
        let mut completions: Vec<u64> = Vec::new();
        while let Some(entry) = self.completion_wheel.first_entry() {
            if *entry.key() > self.now {
                break;
            }
            completions.extend(entry.remove());
        }
        if completions.is_empty() {
            return;
        }
        completions.sort_unstable();
        for k in 0..completions.len() {
            let seq = completions[k];
            let Some(i) = self.rob_idx(seq) else { continue };
            if !(self.rob[i].issued && !self.rob[i].done && self.rob[i].ready_at <= self.now) {
                continue;
            }
            self.rob[i].done = true;
            self.rob[i].t_complete = self.now;
            let instr = self.rob[i].instr;
            let truncated = match instr {
                Instr::Branch { .. } | Instr::Jr { .. } => self.resolve_branch(i),
                Instr::PushBq { .. } => self.execute_push_bq(i),
                Instr::PushTq { .. } => {
                    let abs = self.rob[i].tq_abs.expect("tq push has index");
                    let src = self.rob[i].psrc1.expect("tq push has source");
                    let mut v = self.rename.read(src);
                    // Fault injection at the TQ write port: an off-by-one
                    // trip count makes `Branch_on_TCR` run the loop a wrong
                    // number of times (oracle mismatch at retire).
                    if self.fault_at(FaultSite::TqExecutePush) == Some(FaultKind::TqCorrupt) {
                        v = v.wrapping_add(1);
                    }
                    self.tq.execute_push(abs, v);
                    self.events.tq_ops += 1;
                    false
                }
                _ => false,
            };
            if truncated {
                // Immediate recovery truncated the ROB: older survivors
                // (e.g. instructions between a late push and its speculative
                // pop) must be re-examined next cycle, exactly as the old
                // exec_list kept unprocessed entries. Squashed ordinals in
                // the requeued tail are dropped by the liveness check then.
                if k + 1 < completions.len() {
                    self.completion_wheel.entry(self.now + 1).or_default().extend(&completions[k + 1..]);
                }
                break;
            }
        }
    }
}
