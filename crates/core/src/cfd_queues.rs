//! Fetch-resident CFD queues: the microarchitectural BQ and TQ.
//!
//! These implement §III-C and §IV-C of the paper. Each BQ entry carries,
//! beyond the software-visible predicate, a *pushed* bit, a *popped* bit
//! and the speculative predicate/pop-identity used to verify a late push.
//! Occupancy is `net_push_ctr + pending_push_ctr` and the fetch unit stalls
//! a push when it equals the BQ size. Head/tail/mark pointers are absolute
//! (monotonic) counters; recovery restores them from per-branch snapshots
//! and clears popped bits between head and tail.

/// One microarchitectural BQ entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct BqSlot {
    /// Absolute index this slot currently holds (guards stale writes from
    /// pushes squashed logically but still in flight).
    pub abs: u64,
    /// The predicate, valid once `pushed`.
    pub predicate: bool,
    /// Memory-level taint code of the predicate (0 = none, 1..=4 = L1..MEM);
    /// microarchitectural bookkeeping for the misprediction breakdowns.
    pub taint_code: u8,
    /// Set when the push executed.
    pub pushed: bool,
    /// Set when a speculative pop consumed this entry before the push.
    pub popped: bool,
    /// The speculative pop's predicted predicate.
    pub spec_predicate: bool,
    /// Sequence number of the speculative pop (for late-push recovery).
    pub pop_seq: u64,
}

/// Snapshot of BQ pointers for branch recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BqSnapshot {
    /// Head pointer (next pop position).
    pub head: u64,
    /// Tail pointer (next push position).
    pub tail: u64,
    /// Mark pointer.
    pub mark: Option<u64>,
    /// In-flight (fetched, unretired) pushes.
    pub pending_push_ctr: u64,
}

/// The fetch-resident Branch Queue.
#[derive(Debug, Clone)]
pub struct FetchBq {
    slots: Vec<BqSlot>,
    size: usize,
    /// Next pop position (absolute).
    pub head: u64,
    /// Next push position (absolute).
    pub tail: u64,
    /// Speculative mark (absolute), §IV-A.
    pub mark: Option<u64>,
    /// Retired pushes minus retired pops.
    pub net_push_ctr: u64,
    /// Fetched but unretired pushes.
    pub pending_push_ctr: u64,
    /// Committed pointers for exception-style recovery.
    pub committed_head: u64,
    /// Committed tail.
    pub committed_tail: u64,
    /// Committed mark.
    pub committed_mark: Option<u64>,
}

impl FetchBq {
    /// Creates a BQ of `size` entries.
    pub fn new(size: usize) -> FetchBq {
        assert!(size > 0);
        FetchBq {
            slots: vec![BqSlot::default(); size],
            size,
            head: 0,
            tail: 0,
            mark: None,
            net_push_ctr: 0,
            pending_push_ctr: 0,
            committed_head: 0,
            committed_tail: 0,
            committed_mark: None,
        }
    }

    /// Architected size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Occupancy per §III-C3: `net_push_ctr + pending_push_ctr`.
    pub fn length(&self) -> u64 {
        self.net_push_ctr + self.pending_push_ctr
    }

    /// Whether a push fetched now must stall.
    pub fn push_would_stall(&self) -> bool {
        self.length() >= self.size as u64
    }

    fn slot_mut(&mut self, abs: u64) -> &mut BqSlot {
        let idx = (abs % self.size as u64) as usize;
        &mut self.slots[idx]
    }

    fn slot(&self, abs: u64) -> &BqSlot {
        &self.slots[(abs % self.size as u64) as usize]
    }

    /// Fetch of a `Push_BQ`: allocates the tail entry (clearing its pushed
    /// and popped bits) and returns its absolute index.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check
    /// [`push_would_stall`](Self::push_would_stall)).
    pub fn fetch_push(&mut self) -> u64 {
        assert!(!self.push_would_stall(), "push fetched into a full BQ");
        let abs = self.tail;
        *self.slot_mut(abs) = BqSlot { abs, ..BqSlot::default() };
        self.tail += 1;
        self.pending_push_ctr += 1;
        abs
    }

    /// Whether a `Branch_on_BQ` fetched now would miss (its push has not
    /// executed yet). Read-only counterpart of [`fetch_pop`](Self::fetch_pop)
    /// for the stall-policy pre-check.
    pub fn pop_would_miss(&self) -> bool {
        let s = self.slot(self.head);
        !(s.pushed && s.abs == self.head)
    }

    /// Fetch of a `Branch_on_BQ`: reads the head entry. Returns
    /// `(abs_index, Some(predicate))` when the push has already executed
    /// (early push — non-speculative resolution), `(abs_index, None)` on a
    /// BQ miss. Advances the head either way; on a miss the caller decides
    /// to speculate (then call [`record_spec_pop`](Self::record_spec_pop))
    /// or to stall (then call [`unfetch_pop`](Self::unfetch_pop)).
    pub fn fetch_pop(&mut self) -> (u64, Option<bool>) {
        let abs = self.head;
        self.head += 1;
        let s = self.slot(abs);
        if s.pushed && s.abs == abs {
            (abs, Some(s.predicate))
        } else {
            (abs, None)
        }
    }

    /// Reverts a [`fetch_pop`](Self::fetch_pop) that the front end decided
    /// not to perform (stall policy).
    pub fn unfetch_pop(&mut self, abs: u64) {
        debug_assert_eq!(self.head, abs + 1);
        self.head = abs;
    }

    /// Records a speculative pop (BQ miss + speculate policy): stores the
    /// predicted predicate and the pop's sequence number in the entry.
    pub fn record_spec_pop(&mut self, abs: u64, predicted: bool, pop_seq: u64) {
        let s = self.slot_mut(abs);
        s.abs = abs;
        s.popped = true;
        s.spec_predicate = predicted;
        s.pop_seq = pop_seq;
    }

    /// Execution of a `Push_BQ` with the computed predicate.
    ///
    /// Returns `Some((pop_seq, spec_predicate))` when the entry was already
    /// speculatively popped (late push): the caller must verify the
    /// speculation and recover when `spec_predicate != predicate`.
    /// A stale write (the entry was reallocated or bulk-popped past) is
    /// dropped and returns `None`.
    pub fn execute_push(&mut self, abs: u64, predicate: bool) -> Option<(u64, bool)> {
        self.execute_push_tainted(abs, predicate, 0)
    }

    /// [`execute_push`](Self::execute_push) carrying the predicate's
    /// memory-level taint code for misprediction attribution.
    pub fn execute_push_tainted(&mut self, abs: u64, predicate: bool, taint_code: u8) -> Option<(u64, bool)> {
        let size = self.size as u64;
        // Stale if the slot has been reallocated to a newer absolute index.
        if self.slot(abs).abs != abs || abs + size < self.tail {
            return None;
        }
        let s = self.slot_mut(abs);
        let was_popped = s.popped;
        let spec = s.spec_predicate;
        let pop_seq = s.pop_seq;
        s.predicate = predicate;
        s.taint_code = taint_code;
        s.pushed = true;
        if was_popped {
            Some((pop_seq, spec))
        } else {
            None
        }
    }

    /// Observes the entry at `abs`: `Some(predicate)` when its push has
    /// executed. Used to verify a speculative pop that was still in the
    /// front pipe when its late push executed.
    pub fn peek_entry(&self, abs: u64) -> Option<bool> {
        let s = self.slot(abs);
        (s.pushed && s.abs == abs).then_some(s.predicate)
    }

    /// Like [`peek_entry`](Self::peek_entry) but also returns the pushed
    /// predicate's taint code.
    pub fn peek_entry_tainted(&self, abs: u64) -> Option<(bool, u8)> {
        let s = self.slot(abs);
        (s.pushed && s.abs == abs).then_some((s.predicate, s.taint_code))
    }

    /// Fetch of a `Mark`: marks the current tail.
    pub fn fetch_mark(&mut self) {
        self.mark = Some(self.tail);
    }

    /// Fetch of a `Forward`: advances the head to the most recent mark.
    /// Returns the number of skipped entries, or `None` without a mark.
    pub fn fetch_forward(&mut self) -> Option<u64> {
        let m = self.mark?;
        let skipped = m.saturating_sub(self.head);
        self.head = self.head.max(m);
        Some(skipped)
    }

    /// Takes a recovery snapshot (augments each branch checkpoint, §III-C4).
    pub fn snapshot(&self) -> BqSnapshot {
        BqSnapshot { head: self.head, tail: self.tail, mark: self.mark, pending_push_ctr: self.pending_push_ctr }
    }

    /// Restores a snapshot on misprediction recovery: pointers come back,
    /// popped bits between head and tail are cleared, and the pending-push
    /// counter drops by the number of squashed pushes.
    pub fn recover(&mut self, snap: &BqSnapshot) {
        let squashed_pushes = self.tail.saturating_sub(snap.tail);
        self.head = snap.head;
        self.tail = snap.tail;
        self.mark = snap.mark;
        self.pending_push_ctr = self.pending_push_ctr.saturating_sub(squashed_pushes);
        let mut a = self.head;
        while a < self.tail {
            let s = self.slot_mut(a);
            if s.abs == a {
                s.popped = false;
            }
            a += 1;
        }
    }

    /// Retirement of a push.
    pub fn retire_push(&mut self) {
        debug_assert!(self.pending_push_ctr > 0);
        self.pending_push_ctr -= 1;
        self.net_push_ctr += 1;
        self.committed_tail += 1;
    }

    /// Retirement of a pop.
    pub fn retire_pop(&mut self) {
        debug_assert!(self.net_push_ctr > 0, "pop retired before its push");
        self.net_push_ctr -= 1;
        self.committed_head += 1;
    }

    /// Retirement of a `Mark`.
    pub fn retire_mark(&mut self) {
        self.committed_mark = Some(self.committed_tail);
    }

    /// Retirement of a `Forward`: bulk-pop at the committed level.
    pub fn retire_forward(&mut self) {
        if let Some(m) = self.committed_mark {
            let skipped = m.saturating_sub(self.committed_head);
            self.committed_head = self.committed_head.max(m);
            self.net_push_ctr = self.net_push_ctr.saturating_sub(skipped);
        }
    }
}

/// Snapshot of TQ pointers + TCR for branch recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TqSnapshot {
    /// Head pointer.
    pub head: u64,
    /// Tail pointer.
    pub tail: u64,
    /// Trip-count register value.
    pub tcr: u32,
    /// In-flight pushes.
    pub pending_push_ctr: u64,
}

/// One microarchitectural TQ entry (trip count + pushed + overflow bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct TqSlot {
    abs: u64,
    trip: u32,
    overflow: bool,
    pushed: bool,
}

/// The fetch-resident Trip-count Queue and Trip-Count Register.
///
/// The paper stalls fetch on a TQ miss (§IV-C3): speculating through an
/// unknown trip count would need per-iteration recovery state.
#[derive(Debug, Clone)]
pub struct FetchTq {
    slots: Vec<TqSlot>,
    size: usize,
    max_trip: u32,
    /// Next pop position.
    pub head: u64,
    /// Next push position.
    pub tail: u64,
    /// The TCR (speculative, fetch-side).
    pub tcr: u32,
    /// Retired pushes minus retired pops.
    pub net_push_ctr: u64,
    /// Fetched but unretired pushes.
    pub pending_push_ctr: u64,
    /// Committed TCR (for exception recovery).
    pub committed_tcr: u32,
}

impl FetchTq {
    /// Creates a TQ of `size` entries with `trip_bits`-wide counts.
    pub fn new(size: usize, trip_bits: u32) -> FetchTq {
        assert!(size > 0 && (1..=32).contains(&trip_bits));
        let max_trip = if trip_bits == 32 { u32::MAX } else { (1 << trip_bits) - 1 };
        FetchTq {
            slots: vec![TqSlot::default(); size],
            size,
            max_trip,
            head: 0,
            tail: 0,
            tcr: 0,
            net_push_ctr: 0,
            pending_push_ctr: 0,
            committed_tcr: 0,
        }
    }

    /// Architected size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Occupancy.
    pub fn length(&self) -> u64 {
        self.net_push_ctr + self.pending_push_ctr
    }

    /// Whether a push fetched now must stall.
    pub fn push_would_stall(&self) -> bool {
        self.length() >= self.size as u64
    }

    /// Fetch of a `Push_TQ`: allocates the tail entry.
    ///
    /// # Panics
    ///
    /// Panics when full; check [`push_would_stall`](Self::push_would_stall).
    pub fn fetch_push(&mut self) -> u64 {
        assert!(!self.push_would_stall(), "push fetched into a full TQ");
        let abs = self.tail;
        let idx = (abs % self.size as u64) as usize;
        self.slots[idx] = TqSlot { abs, ..TqSlot::default() };
        self.tail += 1;
        self.pending_push_ctr += 1;
        abs
    }

    /// Execution of a `Push_TQ`: writes the (clamped) trip count and the
    /// overflow bit. Stale writes are dropped.
    pub fn execute_push(&mut self, abs: u64, count: i64) {
        let idx = (abs % self.size as u64) as usize;
        if self.slots[idx].abs != abs {
            return;
        }
        let clamped = count.max(0) as u64;
        if clamped > self.max_trip as u64 {
            self.slots[idx].trip = 0;
            self.slots[idx].overflow = true;
        } else {
            self.slots[idx].trip = clamped as u32;
            self.slots[idx].overflow = false;
        }
        self.slots[idx].pushed = true;
    }

    /// Whether a `Pop_TQ` fetched now would miss (stalling fetch, §IV-C3).
    pub fn pop_would_miss(&self) -> bool {
        let idx = (self.head % self.size as u64) as usize;
        let s = self.slots[idx];
        !(s.pushed && s.abs == self.head)
    }

    /// Fetch of a `Pop_TQ`: on a hit, loads the TCR and returns
    /// `(abs, Some(overflow_bit))`; on a TQ miss returns `(abs, None)`
    /// *without* advancing the head (the fetch unit stalls and retries).
    pub fn fetch_pop(&mut self) -> (u64, Option<bool>) {
        let abs = self.head;
        let idx = (abs % self.size as u64) as usize;
        let s = self.slots[idx];
        if s.pushed && s.abs == abs {
            self.head += 1;
            self.tcr = s.trip;
            (abs, Some(s.overflow))
        } else {
            (abs, None)
        }
    }

    /// Fetch of a `Branch_on_TCR`: non-zero TCR decrements and continues
    /// the loop (returns `true`); zero exits (returns `false`).
    pub fn fetch_branch_on_tcr(&mut self) -> bool {
        if self.tcr != 0 {
            self.tcr -= 1;
            true
        } else {
            false
        }
    }

    /// Takes a recovery snapshot (pointers + TCR, §IV-C3).
    pub fn snapshot(&self) -> TqSnapshot {
        TqSnapshot { head: self.head, tail: self.tail, tcr: self.tcr, pending_push_ctr: self.pending_push_ctr }
    }

    /// Restores a snapshot on misprediction recovery.
    pub fn recover(&mut self, snap: &TqSnapshot) {
        let squashed = self.tail.saturating_sub(snap.tail);
        self.head = snap.head;
        self.tail = snap.tail;
        self.tcr = snap.tcr;
        self.pending_push_ctr = self.pending_push_ctr.saturating_sub(squashed);
    }

    /// Retirement of a push.
    pub fn retire_push(&mut self) {
        debug_assert!(self.pending_push_ctr > 0);
        self.pending_push_ctr -= 1;
        self.net_push_ctr += 1;
    }

    /// Retirement of a pop (also commits the TCR load).
    pub fn retire_pop(&mut self, loaded_tcr: u32) {
        debug_assert!(self.net_push_ctr > 0, "pop retired before its push");
        self.net_push_ctr -= 1;
        self.committed_tcr = loaded_tcr;
    }

    /// Retirement of a `Branch_on_TCR` that continued the loop.
    pub fn retire_tcr_decrement(&mut self) {
        self.committed_tcr = self.committed_tcr.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_push_resolves_pop_at_fetch() {
        let mut bq = FetchBq::new(8);
        let p = bq.fetch_push();
        assert_eq!(bq.execute_push(p, true), None);
        let (abs, pred) = bq.fetch_pop();
        assert_eq!(abs, p);
        assert_eq!(pred, Some(true));
    }

    #[test]
    fn late_push_sees_spec_pop_and_returns_verification() {
        let mut bq = FetchBq::new(8);
        let p = bq.fetch_push();
        let (abs, pred) = bq.fetch_pop();
        assert_eq!(pred, None, "BQ miss");
        bq.record_spec_pop(abs, true, 42);
        // Push executes later and must verify the speculation.
        assert_eq!(bq.execute_push(p, false), Some((42, true)));
        // Matching speculation:
        let p2 = bq.fetch_push();
        let (abs2, _) = bq.fetch_pop();
        bq.record_spec_pop(abs2, true, 43);
        assert_eq!(bq.execute_push(p2, true), Some((43, true)));
    }

    #[test]
    fn length_counts_pending_and_net() {
        let mut bq = FetchBq::new(4);
        let a = bq.fetch_push();
        let b = bq.fetch_push();
        assert_eq!(bq.length(), 2);
        bq.execute_push(a, true);
        bq.execute_push(b, false);
        bq.retire_push();
        assert_eq!(bq.length(), 2); // one net + one pending
        bq.fetch_pop();
        bq.retire_push();
        bq.retire_pop();
        assert_eq!(bq.length(), 1);
    }

    #[test]
    fn push_stalls_at_capacity() {
        let mut bq = FetchBq::new(2);
        bq.fetch_push();
        bq.fetch_push();
        assert!(bq.push_would_stall());
    }

    #[test]
    fn recovery_restores_pointers_and_clears_popped() {
        let mut bq = FetchBq::new(8);
        let p = bq.fetch_push();
        bq.execute_push(p, true);
        let snap = bq.snapshot();
        // Wrong path: two pushes and a speculative pop.
        bq.fetch_push();
        let (abs, _) = bq.fetch_pop();
        bq.record_spec_pop(abs, false, 9);
        bq.fetch_push();
        bq.recover(&snap);
        assert_eq!(bq.head, snap.head);
        assert_eq!(bq.tail, snap.tail);
        assert_eq!(bq.pending_push_ctr, 1);
        // The surviving entry's popped bit is cleared; a real pop still works.
        let (_, pred) = bq.fetch_pop();
        assert_eq!(pred, Some(true));
    }

    #[test]
    fn mark_forward_skips_unpopped() {
        let mut bq = FetchBq::new(8);
        for _ in 0..3 {
            let a = bq.fetch_push();
            bq.execute_push(a, true);
        }
        bq.fetch_mark();
        bq.fetch_pop();
        assert_eq!(bq.fetch_forward(), Some(2));
        assert_eq!(bq.head, bq.tail);
    }

    #[test]
    fn stale_push_write_after_forward_is_dropped() {
        // A Forward skips an entry whose push is still in flight; the slot
        // is then reallocated by a newer push. The in-flight push's write
        // must not corrupt the new entry (§IV-A interaction).
        let mut bq = FetchBq::new(2);
        let a = bq.fetch_push(); // abs 0, never executes before being skipped
        let b = bq.fetch_push(); // abs 1
        bq.execute_push(b, true);
        bq.fetch_mark(); // mark at tail = 2
        bq.fetch_forward(); // head -> 2, both entries skipped
                            // Retire the skipped pushes so new pushes may allocate.
        bq.retire_push();
        bq.retire_push();
        bq.retire_mark();
        bq.retire_forward();
        let c = bq.fetch_push(); // abs 2, reuses slot 0
        assert_eq!(c % 2, a % 2, "slot reused");
        // The old push finally executes: stale, dropped.
        assert_eq!(bq.execute_push(a, true), None);
        bq.execute_push(c, false);
        let (_, pred) = bq.fetch_pop();
        assert_eq!(pred, Some(false), "new entry unharmed");
    }

    #[test]
    fn tq_pop_hits_only_after_push_executes() {
        let mut tq = FetchTq::new(4, 16);
        let a = tq.fetch_push();
        assert_eq!(tq.fetch_pop().1, None, "TQ miss stalls");
        tq.execute_push(a, 3);
        let (_, ovf) = tq.fetch_pop();
        assert_eq!(ovf, Some(false));
        assert_eq!(tq.tcr, 3);
    }

    #[test]
    fn tcr_drives_loop_iterations() {
        let mut tq = FetchTq::new(4, 16);
        let a = tq.fetch_push();
        tq.execute_push(a, 2);
        tq.fetch_pop();
        assert!(tq.fetch_branch_on_tcr());
        assert!(tq.fetch_branch_on_tcr());
        assert!(!tq.fetch_branch_on_tcr());
    }

    #[test]
    fn tq_overflow_bit_set_on_big_count() {
        let mut tq = FetchTq::new(4, 4);
        let a = tq.fetch_push();
        tq.execute_push(a, 100);
        let (_, ovf) = tq.fetch_pop();
        assert_eq!(ovf, Some(true));
        assert_eq!(tq.tcr, 0);
    }

    #[test]
    fn tq_recovery_restores_tcr() {
        let mut tq = FetchTq::new(4, 16);
        let a = tq.fetch_push();
        tq.execute_push(a, 5);
        tq.fetch_pop();
        tq.fetch_branch_on_tcr();
        let snap = tq.snapshot();
        tq.fetch_branch_on_tcr();
        tq.fetch_branch_on_tcr();
        tq.recover(&snap);
        assert_eq!(tq.tcr, 4);
    }
}
