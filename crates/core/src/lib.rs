//! # cfd-core — the cycle-level out-of-order core with Control-Flow Decoupling
//!
//! This crate is the paper's evaluation substrate *and* its primary
//! microarchitectural contribution in one place:
//!
//! * a Sandy-Bridge-class out-of-order pipeline ([`Core`], [`CoreConfig`]):
//!   4-wide fetch/rename/retire, 168-entry ROB, checkpointed misprediction
//!   recovery (confidence-guided, OoO reclamation), ISL-TAGE-lite front
//!   end, three-level cache hierarchy with MSHRs;
//! * the **CFD microarchitecture**: the Branch Queue and Trip-count Queue
//!   live in the fetch unit and resolve `Branch_on_BQ`/`Branch_on_TCR`
//!   non-speculatively at fetch; BQ misses speculate (verified by the late
//!   push, §III-C) or stall; `Mark`/`Forward` bulk-pops; the VQ renamer
//!   maps the architectural Value Queue onto the physical register file
//!   (§IV-B);
//! * instrumentation for every figure in the paper: per-branch MPKI,
//!   misprediction breakdown by feeding memory level (dataflow taint),
//!   MSHR occupancy histograms, wrong-path activity and an energy event
//!   stream ([`RunReport`]).
//!
//! # Example
//!
//! ```
//! use cfd_core::{Core, CoreConfig};
//! use cfd_isa::{Assembler, MemImage, Reg};
//!
//! // A loop with a data-dependent branch.
//! let (i, n, p, acc) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
//! let mut a = Assembler::new();
//! a.li(n, 200);
//! a.label("top");
//! a.xor(p, i, 5i64);
//! a.and(p, p, 1i64);
//! a.beqz(p, "skip");
//! a.addi(acc, acc, 1);
//! a.label("skip");
//! a.addi(i, i, 1);
//! a.blt(i, n, "top");
//! a.halt();
//!
//! let report = Core::new(CoreConfig::default(), a.finish()?, MemImage::new())?
//!     .run(1_000_000)?;
//! assert!(report.stats.retired > 1000);
//! assert!(report.ipc() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cfd_queues;
mod checkpoint;
mod commit;
mod config;
#[allow(clippy::module_inception)]
mod core;
mod dispatch;
pub mod fault;
mod frontend;
mod host;
mod kernel;
mod lsq;
mod pipeline;
mod rename;
mod sampled;
mod scheduler;
#[cfg(feature = "stage-profile")]
pub mod stage_profile;
mod stats;
mod trace;

pub use crate::core::{CancelToken, Core, CoreError};
pub use cfd_queues::{BqSnapshot, FetchBq, FetchTq, TqSnapshot};
pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use config::{BqMissPolicy, CheckpointPolicy, CoreConfig, PerfectMode};
pub use fault::{FailureReport, FaultKind, FaultSite, FaultSpec, InjectionRecord};
pub use host::{ControlHost, FaultHost, MemoryHost, TelemetryHost};
pub use kernel::{KernelEvent, YieldPolicy};
pub use rename::{join_taint, PhysReg, RenameState, Taint, VqRenamer, VqSnapshot};
pub use sampled::{run_sampled, SampleConfig, SampledReport};
#[cfg(feature = "stage-profile")]
pub use stage_profile::{Stage, StageProfile, STAGE_COUNT, STAGE_NAMES};
pub use stats::{level_index, BranchStat, CoreStats, RunReport};
pub use trace::{CycleSnap, PipeEvent, PipeTrace, SnapRing};

// Observability vocabulary, re-exported so downstream crates can arm
// telemetry and read CPI stacks without depending on cfd-obs directly.
pub use cfd_obs::{CpiComponent, CpiStack, TelemetryConfig, TelemetryReport, CPI_COMPONENTS};
