//! Per-instruction pipeline tracing (pipeview) and the post-mortem
//! snapshot ring.
//!
//! When enabled, the core records each instruction's stage timestamps —
//! fetch, dispatch, issue, completion, retirement (or squash) — and can
//! render them as a classic pipeline diagram. Invaluable for seeing the
//! CFD mechanism at work: `Branch_on_BQ` pops complete at dispatch (they
//! resolved at fetch), while baseline branches crawl through the backend.
//!
//! [`SnapRing`] is the complementary whole-pipeline view: a fixed-size
//! ring of per-cycle occupancy snapshots ([`CycleSnap`]), dumped when a
//! run dies (deadlock watchdog, oracle mismatch) so the last moments
//! before the failure are visible without re-running under a tracer.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Stage timestamps for one traced instruction.
#[derive(Debug, Clone)]
pub struct PipeEvent {
    /// Fetch sequence number.
    pub seq: u64,
    /// PC.
    pub pc: u32,
    /// Disassembled instruction.
    pub disasm: String,
    /// Fetch cycle.
    pub fetch: u64,
    /// Dispatch (rename) cycle.
    pub dispatch: Option<u64>,
    /// Issue cycle (backend instructions only).
    pub issue: Option<u64>,
    /// Completion cycle.
    pub complete: Option<u64>,
    /// Retirement cycle; `None` when squashed.
    pub retire: Option<u64>,
    /// Squashed on the wrong path.
    pub squashed: bool,
}

/// A bounded pipeline trace.
#[derive(Debug, Clone)]
pub struct PipeTrace {
    events: Vec<PipeEvent>,
    limit: usize,
}

impl PipeTrace {
    /// Creates a trace that keeps the first `limit` instructions.
    pub fn new(limit: usize) -> PipeTrace {
        PipeTrace { events: Vec::with_capacity(limit.min(4096)), limit }
    }

    /// Whether the trace still accepts events.
    pub fn accepting(&self) -> bool {
        self.events.len() < self.limit
    }

    /// Records an instruction's lifetime.
    pub fn record(&mut self, ev: PipeEvent) {
        if self.accepting() {
            self.events.push(ev);
        }
    }

    /// The recorded events, in fetch order.
    pub fn events(&self) -> &[PipeEvent] {
        &self.events
    }

    /// Renders a pipeline diagram: one row per instruction, one column per
    /// cycle (`F` fetch, `d` in front pipe, `D` dispatch, `w` waiting in
    /// the IQ, `I` issue, `e` executing, `C` complete, `.` waiting to
    /// retire, `R` retire, `x` squashed).
    pub fn render(&self) -> String {
        let Some(first) = self.events.first() else {
            return "(empty trace)\n".to_string();
        };
        let t0 = first.fetch;
        let t_end =
            self.events.iter().map(|e| e.retire.or(e.complete).or(e.dispatch).unwrap_or(e.fetch)).max().unwrap_or(t0)
                + 2; // room for retire plus a squash marker
        let width = ((t_end - t0) as usize).min(160);
        let mut out = String::new();
        let _ = writeln!(out, "cycles {t0}..{}  (one column per cycle)", t0 + width as u64);
        // Events are recorded at retire/squash time; show them in fetch order.
        let mut ordered: Vec<&PipeEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| (e.fetch, e.seq));
        for e in ordered {
            let mut row = vec![b' '; width];
            let col = |t: u64| -> Option<usize> {
                let c = t.checked_sub(t0)? as usize;
                (c < width).then_some(c)
            };
            let span = |row: &mut [u8], from: u64, to: u64, ch: u8| {
                for t in from..to {
                    if let Some(c) = col(t) {
                        if row[c] == b' ' {
                            row[c] = ch;
                        }
                    }
                }
            };
            if let Some(c) = col(e.fetch) {
                row[c] = b'F';
            }
            if let Some(d) = e.dispatch {
                span(&mut row, e.fetch + 1, d, b'd');
                if let Some(c) = col(d) {
                    row[c] = b'D';
                }
                if let Some(i) = e.issue {
                    span(&mut row, d + 1, i, b'w');
                    if let Some(c) = col(i) {
                        row[c] = b'I';
                    }
                    if let Some(done) = e.complete {
                        span(&mut row, i + 1, done, b'e');
                        if let Some(c) = col(done) {
                            row[c] = b'C';
                        }
                    }
                }
                if let Some(r) = e.retire {
                    let after = e.complete.or(e.issue).unwrap_or(d);
                    span(&mut row, after + 1, r, b'.');
                    if let Some(c) = col(r) {
                        row[c] = b'R';
                    }
                }
            }
            if e.squashed {
                // Mark the tail of a squashed instruction's row.
                if let Some(last) = row.iter().rposition(|&b| b != b' ') {
                    if last + 1 < width {
                        row[last + 1] = b'x';
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:5} {:4} {:28} |{}|",
                e.seq,
                e.pc,
                truncate(&e.disasm, 28),
                String::from_utf8_lossy(&row)
            );
        }
        out
    }
}

/// One cycle's pipeline occupancy snapshot (post-mortem ring entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSnap {
    /// Cycle number.
    pub cycle: u64,
    /// Next fetch PC.
    pub fetch_pc: u32,
    /// Instructions retired so far.
    pub retired: u64,
    /// ROB occupancy.
    pub rob: usize,
    /// Issue-queue occupancy.
    pub iq: usize,
    /// Load/store-queue occupancy.
    pub lsq: usize,
    /// Front-pipe (fetched, not yet dispatched) occupancy.
    pub front_q: usize,
    /// Fetch-resident BQ occupancy.
    pub bq_len: u64,
    /// Fetch-resident TQ occupancy.
    pub tq_len: u64,
    /// Current TCR value.
    pub tcr: u32,
    /// Free physical registers.
    pub free_regs: usize,
    /// Free checkpoints.
    pub ckpt_free: usize,
}

/// A fixed-size ring buffer of per-cycle pipeline snapshots.
///
/// The core pushes one [`CycleSnap`] per simulated cycle when
/// `CoreConfig::post_mortem_depth > 0`; on any failure the ring holds the
/// last `depth` cycles for the post-mortem dump.
#[derive(Debug, Clone)]
pub struct SnapRing {
    buf: VecDeque<CycleSnap>,
    depth: usize,
}

impl SnapRing {
    /// A ring keeping the most recent `depth` snapshots.
    pub fn new(depth: usize) -> SnapRing {
        SnapRing { buf: VecDeque::with_capacity(depth.min(4096)), depth }
    }

    /// Appends a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snap: CycleSnap) {
        if self.depth == 0 {
            return;
        }
        if self.buf.len() == self.depth {
            self.buf.pop_front();
        }
        self.buf.push_back(snap);
    }

    /// The retained snapshots, oldest first.
    pub fn snaps(&self) -> impl Iterator<Item = &CycleSnap> {
        self.buf.iter()
    }

    /// Renders the ring as a fixed-width table, oldest cycle first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>10} {:>5} {:>4} {:>4} {:>7} {:>5} {:>5} {:>6} {:>5} {:>5}",
            "cycle", "fetch_pc", "retired", "rob", "iq", "lsq", "front_q", "bq", "tq", "tcr", "pregs", "ckpt"
        );
        for s in &self.buf {
            let _ = writeln!(
                out,
                "{:>10} {:>8} {:>10} {:>5} {:>4} {:>4} {:>7} {:>5} {:>5} {:>6} {:>5} {:>5}",
                s.cycle,
                s.fetch_pc,
                s.retired,
                s.rob,
                s.iq,
                s.lsq,
                s.front_q,
                s.bq_len,
                s.tq_len,
                s.tcr,
                s.free_regs,
                s.ckpt_free
            );
        }
        if self.buf.is_empty() {
            out.push_str("(no snapshots; set post_mortem_depth > 0)\n");
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        format!("{s:n$}")
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, fetch: u64) -> PipeEvent {
        PipeEvent {
            seq,
            pc: seq as u32,
            disasm: format!("instr{seq}"),
            fetch,
            dispatch: Some(fetch + 8),
            issue: Some(fetch + 9),
            complete: Some(fetch + 10),
            retire: Some(fetch + 12),
            squashed: false,
        }
    }

    #[test]
    fn bounded_capacity() {
        let mut t = PipeTrace::new(2);
        t.record(ev(0, 0));
        t.record(ev(1, 1));
        assert!(!t.accepting());
        t.record(ev(2, 2));
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn render_marks_stages() {
        let mut t = PipeTrace::new(4);
        t.record(ev(0, 0));
        let s = t.render();
        assert!(s.contains('F'));
        assert!(s.contains('D'));
        assert!(s.contains('I'));
        assert!(s.contains('C'));
        assert!(s.contains('R'));
    }

    #[test]
    fn squashed_instruction_marked() {
        let mut t = PipeTrace::new(4);
        let mut e = ev(0, 0);
        e.retire = None;
        e.squashed = true;
        t.record(e);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn empty_trace_renders() {
        assert!(PipeTrace::new(4).render().contains("empty"));
    }

    fn snap(cycle: u64) -> CycleSnap {
        CycleSnap {
            cycle,
            fetch_pc: 7,
            retired: cycle * 2,
            rob: 10,
            iq: 3,
            lsq: 2,
            front_q: 4,
            bq_len: 1,
            tq_len: 0,
            tcr: 0,
            free_regs: 100,
            ckpt_free: 8,
        }
    }

    #[test]
    fn snap_ring_keeps_last_depth() {
        let mut r = SnapRing::new(3);
        for c in 0..10 {
            r.push(snap(c));
        }
        let cycles: Vec<u64> = r.snaps().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        let table = r.render();
        assert!(table.contains("fetch_pc"));
        assert!(table.contains('9'));
    }

    #[test]
    fn zero_depth_ring_stays_empty() {
        let mut r = SnapRing::new(0);
        r.push(snap(1));
        assert_eq!(r.snaps().count(), 0);
        assert!(r.render().contains("no snapshots"));
    }
}
