//! Per-instruction pipeline tracing (pipeview).
//!
//! When enabled, the core records each instruction's stage timestamps —
//! fetch, dispatch, issue, completion, retirement (or squash) — and can
//! render them as a classic pipeline diagram. Invaluable for seeing the
//! CFD mechanism at work: `Branch_on_BQ` pops complete at dispatch (they
//! resolved at fetch), while baseline branches crawl through the backend.

use std::fmt::Write as _;

/// Stage timestamps for one traced instruction.
#[derive(Debug, Clone)]
pub struct PipeEvent {
    /// Fetch sequence number.
    pub seq: u64,
    /// PC.
    pub pc: u32,
    /// Disassembled instruction.
    pub disasm: String,
    /// Fetch cycle.
    pub fetch: u64,
    /// Dispatch (rename) cycle.
    pub dispatch: Option<u64>,
    /// Issue cycle (backend instructions only).
    pub issue: Option<u64>,
    /// Completion cycle.
    pub complete: Option<u64>,
    /// Retirement cycle; `None` when squashed.
    pub retire: Option<u64>,
    /// Squashed on the wrong path.
    pub squashed: bool,
}

/// A bounded pipeline trace.
#[derive(Debug, Clone)]
pub struct PipeTrace {
    events: Vec<PipeEvent>,
    limit: usize,
}

impl PipeTrace {
    /// Creates a trace that keeps the first `limit` instructions.
    pub fn new(limit: usize) -> PipeTrace {
        PipeTrace { events: Vec::with_capacity(limit.min(4096)), limit }
    }

    /// Whether the trace still accepts events.
    pub fn accepting(&self) -> bool {
        self.events.len() < self.limit
    }

    /// Records an instruction's lifetime.
    pub fn record(&mut self, ev: PipeEvent) {
        if self.accepting() {
            self.events.push(ev);
        }
    }

    /// The recorded events, in fetch order.
    pub fn events(&self) -> &[PipeEvent] {
        &self.events
    }

    /// Renders a pipeline diagram: one row per instruction, one column per
    /// cycle (`F` fetch, `d` in front pipe, `D` dispatch, `w` waiting in
    /// the IQ, `I` issue, `e` executing, `C` complete, `.` waiting to
    /// retire, `R` retire, `x` squashed).
    pub fn render(&self) -> String {
        let Some(first) = self.events.first() else {
            return "(empty trace)\n".to_string();
        };
        let t0 = first.fetch;
        let t_end = self
            .events
            .iter()
            .map(|e| e.retire.or(e.complete).or(e.dispatch).unwrap_or(e.fetch))
            .max()
            .unwrap_or(t0)
            + 2; // room for retire plus a squash marker
        let width = ((t_end - t0) as usize).min(160);
        let mut out = String::new();
        let _ = writeln!(out, "cycles {t0}..{}  (one column per cycle)", t0 + width as u64);
        // Events are recorded at retire/squash time; show them in fetch order.
        let mut ordered: Vec<&PipeEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| (e.fetch, e.seq));
        for e in ordered {
            let mut row = vec![b' '; width];
            let col = |t: u64| -> Option<usize> {
                let c = t.checked_sub(t0)? as usize;
                (c < width).then_some(c)
            };
            let span = |row: &mut [u8], from: u64, to: u64, ch: u8| {
                for t in from..to {
                    if let Some(c) = col(t) {
                        if row[c] == b' ' {
                            row[c] = ch;
                        }
                    }
                }
            };
            if let Some(c) = col(e.fetch) {
                row[c] = b'F';
            }
            if let Some(d) = e.dispatch {
                span(&mut row, e.fetch + 1, d, b'd');
                if let Some(c) = col(d) {
                    row[c] = b'D';
                }
                if let Some(i) = e.issue {
                    span(&mut row, d + 1, i, b'w');
                    if let Some(c) = col(i) {
                        row[c] = b'I';
                    }
                    if let Some(done) = e.complete {
                        span(&mut row, i + 1, done, b'e');
                        if let Some(c) = col(done) {
                            row[c] = b'C';
                        }
                    }
                }
                if let Some(r) = e.retire {
                    let after = e.complete.or(e.issue).unwrap_or(d);
                    span(&mut row, after + 1, r, b'.');
                    if let Some(c) = col(r) {
                        row[c] = b'R';
                    }
                }
            }
            if e.squashed {
                // Mark the tail of a squashed instruction's row.
                if let Some(last) = row.iter().rposition(|&b| b != b' ') {
                    if last + 1 < width {
                        row[last + 1] = b'x';
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:5} {:4} {:28} |{}|",
                e.seq,
                e.pc,
                truncate(&e.disasm, 28),
                String::from_utf8_lossy(&row)
            );
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        format!("{s:n$}")
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, fetch: u64) -> PipeEvent {
        PipeEvent {
            seq,
            pc: seq as u32,
            disasm: format!("instr{seq}"),
            fetch,
            dispatch: Some(fetch + 8),
            issue: Some(fetch + 9),
            complete: Some(fetch + 10),
            retire: Some(fetch + 12),
            squashed: false,
        }
    }

    #[test]
    fn bounded_capacity() {
        let mut t = PipeTrace::new(2);
        t.record(ev(0, 0));
        t.record(ev(1, 1));
        assert!(!t.accepting());
        t.record(ev(2, 2));
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn render_marks_stages() {
        let mut t = PipeTrace::new(4);
        t.record(ev(0, 0));
        let s = t.render();
        assert!(s.contains('F'));
        assert!(s.contains('D'));
        assert!(s.contains('I'));
        assert!(s.contains('C'));
        assert!(s.contains('R'));
    }

    #[test]
    fn squashed_instruction_marked() {
        let mut t = PipeTrace::new(4);
        let mut e = ev(0, 0);
        e.retire = None;
        e.squashed = true;
        t.record(e);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn empty_trace_renders() {
        assert!(PipeTrace::new(4).render().contains("empty"));
    }
}
