//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultSpec`] names one fault class and the dynamic occurrence of its
//! injection site at which it fires. The core threads injection points
//! through the pipeline (predictor lookup, BQ/TQ execute-side pushes, the
//! VQ renamer's pop mapping, load latency); when the armed site is reached
//! for the `nth` time, the fault fires exactly once and is tagged with the
//! cycle and site in an [`InjectionRecord`].
//!
//! The detection contract (exercised by `cfd-harden`): every injected
//! fault must end in one of
//!
//! * an architecturally identical result (the fault was masked),
//! * a typed [`CoreError`] naming the faulting structure
//!   (oracle mismatch, program error), or
//! * a bounded-latency watchdog trip
//!   ([`CoreError::Deadlock`](crate::CoreError)).
//!
//! Silent divergence — a run that completes with wrong architectural
//! state — is a harness failure, not an acceptable outcome.

use crate::core::CoreError;

/// The class of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Invert the direction predictor's prediction at a predict site
    /// (plain branch or speculative BQ pop). Must be masked: a flipped
    /// prediction is indistinguishable from a misprediction and recovers
    /// through the normal checkpoint/retire machinery.
    PredictorFlip,
    /// Invert the predicate value the executing `Push_BQ` writes into its
    /// BQ entry. The fetch-resident pop steers the wrong way, so the
    /// retired path diverges from the functional oracle.
    BqCorrupt,
    /// Drop the `Push_BQ` execute-side write: the BQ entry never fills,
    /// its pop is never verified, and commit stalls until the watchdog
    /// trips.
    BqDrop,
    /// Corrupt the trip count the executing `Push_TQ` writes (off by one).
    /// `Branch_on_TCR` runs the loop a wrong number of times and the
    /// retired path diverges from the oracle.
    TqCorrupt,
    /// Corrupt the VQ renamer's pop mapping at dispatch: the `Pop_VQ`
    /// reads a different physical register than the one its push wrote.
    VqRemapCorrupt,
    /// Delay one load's memory response by this many cycles. Timing-only:
    /// must be architecturally masked.
    MemDelay(u64),
}

/// A pipeline location where faults can be injected.
///
/// Each site is threaded through exactly one stage module (DESIGN.md
/// §12), so a fault's blast radius is bounded by that stage's writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Direction-predictor lookup at fetch (`frontend.rs`).
    PredictorPredict,
    /// `Push_BQ` writing its predicate at execute (`commit.rs`,
    /// `execute_push_bq` — BQ pushes resolve on the retire/verify side).
    BqExecutePush,
    /// `Push_TQ` writing its trip count at execute (`scheduler.rs`,
    /// `execute_at`).
    TqExecutePush,
    /// `Pop_VQ` reading the renamer mapping at dispatch (`dispatch.rs`).
    VqRenamePop,
    /// Load accessing the data-cache hierarchy at execute
    /// (`scheduler.rs`, `execute_at`).
    LoadAccess,
}

impl FaultSite {
    /// Stable, machine-readable site name (used in verdict tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PredictorPredict => "fetch.predictor",
            FaultSite::BqExecutePush => "execute.push_bq",
            FaultSite::TqExecutePush => "execute.push_tq",
            FaultSite::VqRenamePop => "dispatch.pop_vq",
            FaultSite::LoadAccess => "execute.load",
        }
    }
}

impl FaultKind {
    /// The pipeline site this fault class targets.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::PredictorFlip => FaultSite::PredictorPredict,
            FaultKind::BqCorrupt | FaultKind::BqDrop => FaultSite::BqExecutePush,
            FaultKind::TqCorrupt => FaultSite::TqExecutePush,
            FaultKind::VqRemapCorrupt => FaultSite::VqRenamePop,
            FaultKind::MemDelay(_) => FaultSite::LoadAccess,
        }
    }

    /// Stable, machine-readable class name (used in verdict tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PredictorFlip => "predictor_flip",
            FaultKind::BqCorrupt => "bq_corrupt",
            FaultKind::BqDrop => "bq_drop",
            FaultKind::TqCorrupt => "tq_corrupt",
            FaultKind::VqRemapCorrupt => "vq_remap_corrupt",
            FaultKind::MemDelay(_) => "mem_delay",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::MemDelay(n) => write!(f, "mem_delay({n})"),
            k => f.write_str(k.name()),
        }
    }
}

/// One fault to inject: a class and the dynamic occurrence (0-based) of
/// its site at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Fire at the `nth` dynamic visit of the targeted site (0-based).
    pub nth: u64,
}

/// Proof that a fault actually fired: the class, the cycle, and the site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The injected fault class.
    pub kind: FaultKind,
    /// Cycle at which it fired.
    pub cycle: u64,
    /// Stable site name (see [`FaultSite::name`]).
    pub site: &'static str,
}

/// Runtime state of a configured fault: occurrence counting plus the
/// injection record once fired.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    seen: u64,
    fired: Option<InjectionRecord>,
}

impl FaultState {
    /// Arms `spec`; nothing fires until the site's `nth` visit.
    pub fn new(spec: FaultSpec) -> FaultState {
        FaultState { spec, seen: 0, fired: None }
    }

    /// The configured fault.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// The injection record, once the fault has fired.
    pub fn fired(&self) -> Option<&InjectionRecord> {
        self.fired.as_ref()
    }

    /// Called by the core at each visit of `site` on cycle `now`; returns
    /// the fault kind exactly once, at the armed occurrence.
    pub(crate) fn visit(&mut self, site: FaultSite, now: u64) -> Option<FaultKind> {
        if self.fired.is_some() || self.spec.kind.site() != site {
            return None;
        }
        let n = self.seen;
        self.seen += 1;
        if n == self.spec.nth {
            self.fired = Some(InjectionRecord { kind: self.spec.kind, cycle: now, site: site.name() });
            Some(self.spec.kind)
        } else {
            None
        }
    }
}

/// Everything [`Core::run_diag`](crate::Core::run_diag) returns on a
/// failed run: the typed error plus post-mortem diagnostics.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The failure, naming the faulting structure.
    pub error: CoreError,
    /// Rendered post-mortem: the final pipeline state line plus the
    /// per-cycle snapshot ring (when `post_mortem_depth > 0`).
    pub post_mortem: String,
    /// The injected fault, when one was configured and actually fired.
    pub injection: Option<InjectionRecord>,
    /// Telemetry captured up to the failure, when the run was armed via
    /// [`Core::with_telemetry`](crate::Core::with_telemetry) — the trace
    /// holds the fault instant and the recoveries leading to the failure.
    pub telemetry: Option<cfd_obs::TelemetryReport>,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "core failure: {}", self.error)?;
        if let Some(inj) = &self.injection {
            writeln!(f, "injected fault: {} at cycle {} site {}", inj.kind, inj.cycle, inj.site)?;
        }
        f.write_str(&self.post_mortem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_nth_visit() {
        let mut s = FaultState::new(FaultSpec { kind: FaultKind::BqCorrupt, nth: 2 });
        assert_eq!(s.visit(FaultSite::BqExecutePush, 10), None);
        assert_eq!(s.visit(FaultSite::BqExecutePush, 11), None);
        assert_eq!(s.visit(FaultSite::BqExecutePush, 12), Some(FaultKind::BqCorrupt));
        assert_eq!(s.visit(FaultSite::BqExecutePush, 13), None);
        let rec = s.fired().unwrap();
        assert_eq!(rec.cycle, 12);
        assert_eq!(rec.site, "execute.push_bq");
    }

    #[test]
    fn other_sites_do_not_count() {
        let mut s = FaultState::new(FaultSpec { kind: FaultKind::TqCorrupt, nth: 0 });
        assert_eq!(s.visit(FaultSite::BqExecutePush, 1), None);
        assert_eq!(s.visit(FaultSite::LoadAccess, 2), None);
        assert_eq!(s.visit(FaultSite::TqExecutePush, 3), Some(FaultKind::TqCorrupt));
    }

    #[test]
    fn site_names_are_stable() {
        assert_eq!(FaultKind::PredictorFlip.site().name(), "fetch.predictor");
        assert_eq!(FaultKind::MemDelay(7).site().name(), "execute.load");
        assert_eq!(FaultKind::MemDelay(7).to_string(), "mem_delay(7)");
        assert_eq!(FaultKind::BqDrop.site(), FaultKind::BqCorrupt.site());
    }
}
