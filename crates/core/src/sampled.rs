//! Sampled simulation: functional fast-forward + detailed intervals.
//!
//! A SMARTS-style estimator over the stepping kernel: the instruction
//! stream is divided into periods; each period is mostly executed on the
//! functional [`Machine`] (fast), then a short stretch runs on the full
//! timing pipeline — first a *warmup* slice whose cycles are discarded
//! while caches, predictors and queues fill, then a *measured* slice
//! whose retired-instructions/cycles ratio contributes to the IPC
//! estimate.
//!
//! The bridge from functional to detailed state is
//! [`Pipeline::from_machine`]: a drained pipeline whose oracles, PC,
//! architectural registers and committed CFD-queue contents (BQ/TQ/TCR/VQ)
//! are rebuilt from the machine, using the same reconstruction idiom as
//! the `Restore_*` context-switch macro-ops.
//!
//! Microarchitectural state the machine does not model — caches, BTB,
//! predictor tables — is *functionally warmed* during fast-forward (the
//! SMARTS recipe): every functional retirement probes the warm L1I,
//! replays its data access through a warm hierarchy, trains a warm
//! direction predictor with immediate update (the same replay idiom as
//! `cfd-profile`) and fills a warm BTB; each detailed slice starts from
//! clones of these warm structures. The warmup slice then only has to
//! refill short-lived pipeline state, and the residual warming error is
//! the dominant error term. `cfd-bench`'s `simperf --sampled`
//! cross-checks the estimate against full-detail IPC per catalog workload
//! and enforces the error bound stated there.

use crate::config::CoreConfig;
use crate::core::CoreError;
use crate::host::{MemoryHost, MemoryPort};
use crate::kernel::NullClock;
use crate::pipeline::Pipeline;
use cfd_isa::{Machine, MemImage, Program, QueueConfig, Reg, RetireEvent};
use cfd_predictor::{predictor_by_name, BranchKind, Btb, BtbEntry, DirectionPredictor};

/// Shape of one sampling period, in instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConfig {
    /// Instructions executed functionally (no timing) per period.
    pub ff_instructions: u64,
    /// Detailed instructions whose cycles are discarded (cold-start
    /// warmup for caches/predictors) at the head of each detailed slice.
    pub warmup_instructions: u64,
    /// Detailed instructions measured per period.
    pub detail_instructions: u64,
}

impl Default for SampleConfig {
    /// Defaults tuned for the catalog's ~0.2–0.5M-instruction workloads:
    /// ~25% of the stream runs detailed, split over 6–15 periods.
    fn default() -> SampleConfig {
        SampleConfig { ff_instructions: 25_000, warmup_instructions: 4_000, detail_instructions: 6_000 }
    }
}

/// Result of a sampled run. All stored quantities are integer counters;
/// the estimates are derived at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledReport {
    /// Instructions retired inside measured detail slices.
    pub measured_instructions: u64,
    /// Cycles spent inside measured detail slices.
    pub measured_cycles: u64,
    /// Instructions executed functionally (fast-forward only).
    pub ff_instructions: u64,
    /// Detailed instructions whose cycles were discarded as warmup.
    pub warmup_instructions: u64,
    /// Total instructions in the workload (functional ground truth).
    pub total_instructions: u64,
    /// Measured detail slices contributing to the estimate.
    pub intervals: u64,
}

impl SampledReport {
    /// The IPC estimate: measured instructions over measured cycles.
    pub fn ipc_estimate(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        self.measured_instructions as f64 / self.measured_cycles as f64
    }

    /// Projected cycle count for the whole workload at the estimated IPC.
    pub fn estimated_cycles(&self) -> u64 {
        if self.measured_instructions == 0 {
            return 0;
        }
        // total * cycles / instructions, in u128 to dodge overflow.
        u64::try_from(
            u128::from(self.total_instructions) * u128::from(self.measured_cycles)
                / u128::from(self.measured_instructions),
        )
        .unwrap_or(u64::MAX)
    }
}

impl Pipeline {
    /// Builds a drained pipeline mid-program from a functional machine:
    /// both oracles resume from clones of `m`, fetch starts at the
    /// machine's PC, the architectural registers seed the freshly-mapped
    /// physical registers, and the committed CFD-queue state (BQ contents,
    /// TQ contents + TCR, VQ values) is reconstructed exactly as the
    /// `Restore_*` context-switch macro-ops do it.
    pub(crate) fn from_machine(cfg: CoreConfig, m: &Machine) -> Result<Pipeline, CoreError> {
        let mut p = Pipeline::new(cfg, m.program().clone(), MemImage::new())?;
        p.oracle = m.clone();
        p.fetch_oracle = m.clone();
        p.fetch_pc = m.pc();
        for r in Reg::all() {
            let phys = p.rename.map(r);
            p.prf_write(phys, m.regs.read(r), 0, None);
        }
        for (k, taken) in m.bq.contents().iter().enumerate() {
            let abs = p.bq.fetch_push();
            debug_assert_eq!(abs, k as u64);
            p.bq.execute_push(abs, *taken);
            p.bq.retire_push();
        }
        let tcr = m.tq.tcr();
        for entry in m.tq.contents() {
            let abs = p.tq.fetch_push();
            let v = if entry.overflow { (p.tq.size() as i64) << 33 } else { entry.trip_count as i64 };
            p.tq.execute_push(abs, v);
            p.tq.retire_push();
        }
        p.tq.tcr = tcr;
        p.tq.committed_tcr = tcr;
        for v in m.vq.contents() {
            let phys = p
                .rename
                .alloc_phys()
                .expect("PRF exhausted during sampled reconstruction; prf_size must exceed 32 + vq_size");
            p.prf_write(phys, v, 0, None);
            p.vq.rename_push(phys);
            p.vq.retire_push();
        }
        Ok(p)
    }

    /// Steps the kernel until `target` instructions have retired (or the
    /// pipeline halts), through the same single step loop as every other
    /// entry point.
    fn run_detail_until(&mut self, target: u64, cycle_limit: u64) -> Result<(), CoreError> {
        while self.stats.retired < target && !self.halted {
            self.step_cycle(cycle_limit, &mut NullClock)?;
        }
        Ok(())
    }
}

/// Long-lived microarchitectural state warmed functionally during
/// fast-forward, so detailed slices start from realistic caches and
/// predictors instead of cold ones. The warm clock counts functional
/// instructions; it only orders hierarchy events, and each detailed slice
/// continues time from it so in-flight warm MSHRs drain naturally.
struct Warmer {
    mem: MemoryPort,
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    clock: u64,
}

impl Warmer {
    fn new(cfg: &CoreConfig) -> Result<Warmer, CoreError> {
        let predictor = predictor_by_name(&cfg.predictor)
            .ok_or_else(|| CoreError::Config(format!("unknown predictor `{}`", cfg.predictor)))?;
        Ok(Warmer { mem: MemoryPort::new(cfg.hierarchy.clone()), predictor, btb: Btb::new(10, 4), clock: 0 })
    }

    /// Observes one functional retirement: L1I probe, data-hierarchy
    /// replay, BTB fill, and immediate-update predictor training (the
    /// same predict/repair/train sequence the profiler replays).
    fn observe(&mut self, ev: &RetireEvent) {
        self.clock += 1;
        let now = self.clock;
        self.mem.fetch_probe(u64::from(ev.pc) * 4);
        if let Some(a) = &ev.mem {
            self.mem.data_access(u64::from(ev.pc) * 4, a.addr, a.is_store, now);
            self.mem.advance(now);
        }
        if ev.instr.is_control() && self.btb.lookup(u64::from(ev.pc)).is_none() {
            self.btb.insert(
                u64::from(ev.pc),
                BtbEntry {
                    target: ev.instr.direct_target().unwrap_or(ev.next_pc),
                    kind: match ev.instr {
                        cfd_isa::Instr::Branch { .. } => BranchKind::Conditional,
                        cfd_isa::Instr::BranchOnBq { .. } => BranchKind::CfdPop,
                        cfd_isa::Instr::BranchOnTcr { .. } | cfd_isa::Instr::PopTqBrOvf { .. } => BranchKind::CfdTcr,
                        cfd_isa::Instr::Jr { .. } => BranchKind::Indirect,
                        _ => BranchKind::Unconditional,
                    },
                },
            );
        }
        if ev.instr.is_plain_conditional() {
            if let Some(taken) = ev.taken {
                let bpc = Pipeline::bpc(ev.pc);
                let (pred, meta) = self.predictor.predict(bpc);
                if pred != taken {
                    self.predictor.recover(bpc, taken, &meta);
                }
                self.predictor.train(bpc, taken, &meta);
            }
        }
    }

    /// Seeds a freshly reconstructed pipeline with the warm structures and
    /// resumes its clock from the warm clock (keeping hierarchy time
    /// monotonic across the functional/detailed boundary).
    fn seed(&self, p: &mut Pipeline) {
        p.mem = self.mem.clone();
        p.predictor = self.predictor.clone();
        p.btb = self.btb.clone();
        p.now = self.clock;
        p.last_retired = (p.now, 0);
    }
}

/// Runs `program` in sampled mode and returns the estimator's counters.
///
/// `cycle_limit` bounds each detailed slice individually (slices start
/// their own cycle clocks); the functional portions are bounded by the
/// program's own termination.
///
/// # Errors
///
/// [`CoreError::Config`] for invalid configurations,
/// [`CoreError::Program`] if the functional machine faults, and any
/// [`CoreError`] a detailed slice can produce.
pub fn run_sampled(
    cfg: CoreConfig,
    program: Program,
    mem: MemImage,
    sample: SampleConfig,
    cycle_limit: u64,
) -> Result<SampledReport, CoreError> {
    if sample.ff_instructions == 0 || sample.detail_instructions == 0 {
        return Err(CoreError::Config("sampled mode needs non-zero ff and detail intervals".into()));
    }
    let qc = QueueConfig {
        bq_size: cfg.bq_size,
        vq_size: cfg.vq_size,
        tq_size: cfg.tq_size,
        tq_trip_bits: cfg.tq_trip_bits,
    };
    let mut m = Machine::with_queues(program, mem, qc);
    let mut report = SampledReport {
        measured_instructions: 0,
        measured_cycles: 0,
        ff_instructions: 0,
        warmup_instructions: 0,
        total_instructions: 0,
        intervals: 0,
    };
    let err = |e: cfd_isa::SimError| CoreError::Program(e.to_string());
    let mut warm = Warmer::new(&cfg)?;
    loop {
        // Functional fast-forward through the period's untimed stretch,
        // warming caches/BTB/predictor as it goes.
        let mut skipped = 0u64;
        while skipped < sample.ff_instructions && !m.halted() {
            m.step(&mut |ev: &RetireEvent| warm.observe(ev)).map_err(err)?;
            skipped += 1;
        }
        report.ff_instructions += skipped;
        if m.halted() {
            break;
        }
        // Detailed slice from warm structures: warmup (discarded) then
        // measurement.
        let mut p = Pipeline::from_machine(cfg.clone(), &m)?;
        warm.seed(&mut p);
        let slice_limit = p.now.saturating_add(cycle_limit);
        p.run_detail_until(sample.warmup_instructions, slice_limit)?;
        let (c0, r0) = (p.now, p.stats.retired);
        report.warmup_instructions += r0;
        p.run_detail_until(sample.warmup_instructions + sample.detail_instructions, slice_limit)?;
        if p.stats.retired > r0 {
            report.measured_instructions += p.stats.retired - r0;
            report.measured_cycles += p.now - c0;
            report.intervals += 1;
        }
        // The machine re-executes the detailed slice's instructions (still
        // warming) so the next period resumes where detailed timing
        // stopped.
        let consumed = p.stats.retired;
        let mut advanced = 0u64;
        while advanced < consumed && !m.halted() {
            m.step(&mut |ev: &RetireEvent| warm.observe(ev)).map_err(err)?;
            advanced += 1;
        }
        if m.halted() {
            break;
        }
    }
    report.total_instructions = m.retired();
    Ok(report)
}
