//! Simulation statistics and the run report.

use crate::fault::InjectionRecord;
use crate::trace::PipeTrace;
use cfd_energy::{EnergyBreakdown, EnergyModel, EventCounts};
use cfd_mem::{CacheStats, MemLevel};
use cfd_obs::{CpiStack, TelemetryReport, CPI_COMPONENTS};
use std::collections::BTreeMap;

/// Per-static-branch statistics (retired instances only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStat {
    /// Retired executions.
    pub executed: u64,
    /// Retired taken outcomes.
    pub taken: u64,
    /// Mispredictions (counted at resolution of retired branches).
    pub mispredicted: u64,
    /// Mispredictions by the furthest memory level feeding the branch:
    /// index 0 = no memory dependence ("NoData"), 1..=4 = L1/L2/L3/MEM.
    pub mispredicted_by_level: [u64; 5],
}

/// Index into [`BranchStat::mispredicted_by_level`] for a taint.
pub fn level_index(taint: Option<MemLevel>) -> usize {
    match taint {
        None => 0,
        Some(MemLevel::L1) => 1,
        Some(MemLevel::L2) => 2,
        Some(MemLevel::L3) => 3,
        Some(MemLevel::Mem) => 4,
    }
}

/// Aggregate core statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions fetched (correct + wrong path).
    pub fetched: u64,
    /// Instructions fetched on the wrong path (later squashed).
    pub wrong_path_fetched: u64,
    /// Instructions issued to function units.
    pub issued: u64,
    /// Wrong-path instructions issued.
    pub wrong_path_issued: u64,
    /// Conditional control instructions retired (plain + CFD pops).
    pub retired_branches: u64,
    /// Retired branches that had mispredicted.
    pub mispredictions: u64,
    /// `Branch_on_BQ` pops resolved non-speculatively at fetch.
    pub bq_hits: u64,
    /// `Branch_on_BQ` pops that missed (late push).
    pub bq_misses: u64,
    /// Late-push verifications that failed (speculative pop recovery).
    pub bq_spec_recoveries: u64,
    /// Cycles fetch stalled on a full BQ (push side).
    pub bq_push_stall_cycles: u64,
    /// Cycles fetch stalled on a BQ miss under the stall policy.
    pub bq_miss_stall_cycles: u64,
    /// `Pop_TQ`s that hit at fetch.
    pub tq_hits: u64,
    /// Cycles fetch stalled on a TQ miss.
    pub tq_miss_stall_cycles: u64,
    /// Cycles fetch stalled on a full TQ (push side).
    pub tq_push_stall_cycles: u64,
    /// Recoveries performed immediately (checkpointed branches).
    pub immediate_recoveries: u64,
    /// Recoveries deferred to retirement (no checkpoint available).
    pub retire_recoveries: u64,
    /// Checkpoints allocated.
    pub checkpoints_allocated: u64,
    /// Checkpoint wanted but none free.
    pub checkpoints_denied: u64,
    /// Checkpoint not wanted (confident branch).
    pub checkpoints_unwanted: u64,
    /// BTB misfetch bubbles (taken control instruction missing in BTB).
    pub btb_misfetches: u64,
    /// L1 instruction-cache misses (fetch bubbles).
    pub icache_misses: u64,
    /// Store-to-load forwards in the LSQ.
    pub lsq_forwards: u64,
    /// Maximum architectural BQ occupancy observed at retirement.
    pub max_bq_occupancy: u64,
    /// Maximum architectural VQ occupancy observed at retirement.
    pub max_vq_occupancy: u64,
    /// Maximum architectural TQ occupancy observed at retirement.
    pub max_tq_occupancy: u64,
    /// Faults injected by the fault-injection harness (0 in normal runs).
    pub faults_injected: u64,
    /// Recoveries attributable to an injected fault: recovery events
    /// (immediate, retire-time or BQ-speculation) observed after the
    /// injection cycle. Bounds the fault's recovery latency in events.
    pub post_fault_recoveries: u64,
    /// CPI-stack slot attribution, indexed by
    /// [`cfd_obs::CpiComponent::index`]. Every retire-width slot of every
    /// counted cycle lands in exactly one component, so the array sums to
    /// exactly `cycles × width` (see [`CoreStats::cpi_stack`]).
    pub cpi_slots: [u64; CPI_COMPONENTS],
    /// Per-PC branch statistics.
    pub branches: BTreeMap<u32, BranchStat>,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per 1000 retired instructions.
    pub fn mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            1000.0 * self.mispredictions as f64 / self.retired as f64
        }
    }

    /// The CPI stack over this run's slot attribution.
    ///
    /// Invariant (enforced by a `debug_assert` when the report is built
    /// and by a tier-1 test): `cpi_stack().check(cycles, width)` holds
    /// with **zero slack**. The core attributes each of the `width` retire
    /// slots of every counted cycle to exactly one component; the final
    /// (halting) cycle is excluded from `cycles` and from the attribution
    /// alike, so the sum is exact.
    pub fn cpi_stack(&self) -> CpiStack {
        CpiStack::from_slots(self.cpi_slots)
    }

    /// Misprediction breakdown by feeding memory level, summed over all
    /// branches: `[NoData, L1, L2, L3, MEM]`.
    pub fn mispredictions_by_level(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for b in self.branches.values() {
            for (o, v) in out.iter_mut().zip(b.mispredicted_by_level) {
                *o += v;
            }
        }
        out
    }
}

/// Everything a finished simulation reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Core statistics.
    pub stats: CoreStats,
    /// Energy event counters.
    pub events: EventCounts,
    /// (L1D, L2, L3) cache statistics.
    pub cache_stats: (CacheStats, CacheStats, CacheStats),
    /// L1 MSHR occupancy histogram (cycles at each occupancy).
    pub mshr_histogram: Vec<u64>,
    /// Demand accesses serviced per level `[L1, L2, L3, MEM]`.
    pub level_counts: [u64; 4],
    /// Pipeline trace, when enabled via `Core::with_pipe_trace`.
    pub pipe_trace: Option<PipeTrace>,
    /// The injected fault that fired during this run, if any. A completed
    /// run with a fired injection means the fault was architecturally
    /// masked (the retirement oracle verified every instruction).
    pub injection: Option<InjectionRecord>,
    /// Telemetry artifacts (registry, time series, trace), when enabled
    /// via `Core::with_telemetry`.
    pub telemetry: Option<TelemetryReport>,
}

impl RunReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Total energy under `model`.
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.breakdown(&self.events)
    }

    /// Speedup of this run over `baseline` for the *same work*
    /// (cycles_baseline / cycles_self), the paper's §VII definition.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.stats.cycles as f64 / self.stats.cycles.max(1) as f64
    }

    /// Effective IPC against a reference instruction count
    /// (`instructions_baseline / cycles_self`, §VII).
    pub fn effective_ipc(&self, baseline_instructions: u64) -> f64 {
        baseline_instructions as f64 / self.stats.cycles.max(1) as f64
    }

    /// Instruction overhead factor versus a baseline run of the same
    /// region (Table III).
    pub fn overhead_over(&self, baseline: &RunReport) -> f64 {
        self.stats.retired as f64 / baseline.stats.retired.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let s = CoreStats { cycles: 100, retired: 250, mispredictions: 5, ..Default::default() };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
    }

    #[test]
    fn level_breakdown_sums_branches() {
        let mut s = CoreStats::default();
        let b1 = BranchStat { mispredicted_by_level: [1, 0, 2, 0, 3], ..Default::default() };
        let b2 = BranchStat { mispredicted_by_level: [0, 1, 0, 0, 1], ..Default::default() };
        s.branches.insert(4, b1);
        s.branches.insert(9, b2);
        assert_eq!(s.mispredictions_by_level(), [1, 1, 2, 0, 4]);
    }

    #[test]
    fn cpi_stack_wraps_slot_array() {
        let mut s = CoreStats::default();
        s.cpi_slots[0] = 10; // base
        s.cpi_slots[8] = 2; // backend
        assert_eq!(s.cpi_stack().total(), 12);
        assert!(s.cpi_stack().check(3, 4).is_ok());
        assert!(s.cpi_stack().check(3, 5).is_err());
    }

    #[test]
    fn level_index_mapping() {
        assert_eq!(level_index(None), 0);
        assert_eq!(level_index(Some(MemLevel::L1)), 1);
        assert_eq!(level_index(Some(MemLevel::Mem)), 4);
    }
}
