//! Dispatch stage: decode/rename and ROB/IQ/LSQ allocation.
//!
//! Pulls from `front_q` once the front-pipe delay elapses, renames sources
//! and destinations through [`RenameState`](crate::rename::RenameState) and
//! the VQ renamer, assigns dense `rob_seq` ordinals, and hands backend
//! instructions to the scheduler by registering them for event-driven
//! wakeup ([`Pipeline::register_or_ready`]). Fetch-resolved instructions
//! complete here. Also re-verifies speculative BQ pops whose push executed
//! while they sat in the front pipe.

use crate::fault::{FaultKind, FaultSite};
use crate::pipeline::{taint_from_index, Pipeline};
use crate::rename::PhysReg;
use cfd_isa::Instr;

impl Pipeline {
    pub(crate) fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.front_q.front() else { return };
            if front.dispatch_at > self.now {
                return;
            }
            if self.rob.len() >= self.cfg.rob_size {
                return;
            }
            let needs_backend = front.needs_backend();
            if needs_backend && self.iq_count >= self.cfg.iq_size {
                return;
            }
            let is_mem = front.is_mem_op();
            if is_mem && self.lsq_count >= self.cfg.lsq_size {
                return;
            }
            // VQ renamer hazards.
            match front.instr {
                Instr::PushVq { .. } if self.vq.push_would_stall() => return,
                Instr::PopVq { .. } if self.vq.pop_would_underflow() => return,
                _ => {}
            }
            // Register renaming: guarantee a free physical register up
            // front so no rename below can fail after mutating queue state.
            if self.rename.free_regs() < 1 {
                return;
            }
            let mut e = self.front_q.pop_front().expect("checked");
            let instr = e.instr;
            let (s1, s2) = instr.sources();
            e.psrc1 = s1.map(|r| self.rename.map(r));
            e.psrc2 = s2.map(|r| self.rename.map(r));
            match instr {
                Instr::PushVq { .. } => {
                    let Some(p) = self.rename.alloc_phys() else { return };
                    e.pdest = Some(p);
                    self.vq.rename_push(p);
                    self.events.vq_ops += 1;
                }
                Instr::PopVq { .. } => {
                    // Source comes from the VQ renamer head (the push's
                    // physical register); the destination renames normally.
                    // `pop_vq r0` is ISA-legal (consume and discard): it
                    // still pops the mapping but writes no register.
                    let mut vq_src = self.vq.rename_pop();
                    e.vq_free = Some(vq_src);
                    // Fault injection at the VQ rename map: the pop latches
                    // a different physical register than its push wrote.
                    // The wrong value either reaches control flow (oracle
                    // mismatch), wedges on a never-ready register
                    // (watchdog), or is overwritten downstream (masked —
                    // committed memory comes from the retire oracle). The
                    // free at retirement uses the true mapping (`vq_free`)
                    // either way.
                    if self.fault_at(FaultSite::VqRenamePop) == Some(FaultKind::VqRemapCorrupt) {
                        vq_src = (vq_src ^ 1) % self.cfg.prf_size as PhysReg;
                    }
                    e.psrc1 = Some(vq_src);
                    self.events.vq_ops += 1;
                    if let Some(rd) = instr.dest() {
                        let Some((p, prev)) = self.rename.rename_dest(rd) else { return };
                        e.pdest = Some(p);
                        e.prev_phys = Some(prev);
                    }
                }
                _ => {
                    if let Some(rd) = instr.dest() {
                        let Some((p, prev)) = self.rename.rename_dest(rd) else { return };
                        e.pdest = Some(p);
                        e.prev_phys = Some(prev);
                    }
                }
            }
            e.dispatched = true;
            e.t_dispatch = self.now;
            e.rob_seq = self.next_rob_seq;
            self.next_rob_seq += 1;
            self.events.decoded += 1;
            self.events.renamed += 1;
            let rob_seq = e.rob_seq;
            if needs_backend {
                e.in_iq = true;
                self.iq_count += 1;
                self.events.iq_writes += 1;
            } else {
                // Fetch-resolved instructions complete at dispatch.
                e.done = true;
                e.ready_at = self.now;
                e.t_complete = self.now;
                if let Instr::Jal { .. } = instr {
                    // Link value is known statically.
                    if let Some(p) = e.pdest {
                        self.prf_write(p, (e.pc + 1) as i64, self.now, None);
                        self.events.regfile_writes += 1;
                    }
                }
            }
            if is_mem {
                e.in_lsq = true;
                self.lsq_count += 1;
                if matches!(instr, Instr::Store { .. }) {
                    self.store_list.push_back(e.rob_seq);
                }
            }
            self.events.rob_ops += 1;
            let spec_pop_unverified = e.spec_pop && !e.verified;
            self.rob.push_back(e);
            if needs_backend {
                // Hand the instruction to the scheduler: straight to the
                // ready queue, or parked on its first blocking source.
                self.register_or_ready(rob_seq);
            }
            // The corrected path reached the ROB: misprediction refill over.
            self.refill_after_recovery = false;
            // A late push may have executed while this speculative pop sat
            // in the front pipe; its ROB scan could not find the pop then,
            // so verify against the BQ entry now.
            if spec_pop_unverified {
                let idx = self.rob.len() - 1;
                if self.verify_spec_pop_at_dispatch(idx) {
                    return; // recovery truncated the ROB
                }
            }
        }
    }

    /// Re-checks a just-dispatched speculative pop against its BQ entry.
    /// Returns true when a failed verification triggered immediate recovery.
    fn verify_spec_pop_at_dispatch(&mut self, idx: usize) -> bool {
        let abs = self.rob[idx].bq_abs.expect("spec pop has a BQ index");
        let Some((predicate, taint_code)) = self.bq.peek_entry_tainted(abs) else { return false };
        self.rob[idx].verified = true;
        self.rob[idx].taint = taint_from_index(taint_code);
        let spec_taken = self.rob[idx].fetch_taken.expect("spec pop chose a direction");
        let actual_taken = !predicate;
        if spec_taken == actual_taken {
            self.release_checkpoint(idx);
            return false;
        }
        // Degenerate pop: both directions continue at the same PC (see
        // `execute_push_bq`) — the fetched path is already correct.
        if let Instr::BranchOnBq { target } = self.rob[idx].instr {
            if target == self.rob[idx].pc + 1 {
                self.rob[idx].resolved_taken = Some(actual_taken);
                self.release_checkpoint(idx);
                return false;
            }
        }
        self.stats.bq_spec_recoveries += 1;
        self.rob[idx].mispredict = true;
        self.rob[idx].resolved_taken = Some(actual_taken);
        let truncated = self.begin_recovery(idx, 0, actual_taken);
        self.release_checkpoint(if truncated { self.rob.len() - 1 } else { idx });
        truncated
    }
}
