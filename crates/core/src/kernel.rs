//! The yield-based stepping kernel: one step loop for every entry point.
//!
//! Historically `run`, `run_diag` and `run_profiled` each owned a copy of
//! the per-cycle loop body, and the cfd-exec engine could only consume a
//! whole run at once. This module inverts the control: the kernel advances
//! cycle by cycle ([`Pipeline::step_cycle`]) and *yields* structured
//! [`KernelEvent`]s ([`Pipeline::pump`]) whenever the armed
//! [`YieldPolicy`] says something interesting happened. All public entry
//! points — [`Core::run`](crate::Core::run),
//! [`Core::run_diag`](crate::Core::run_diag),
//! [`Core::run_profiled`](crate::Core::run_profiled), the engine's
//! cancellable jobs, checkpointed stepping and sampled simulation — drive
//! this one loop, so the per-cycle guard logic ([`Pipeline::cycle_gate`])
//! exists in exactly one place.
//!
//! The default policy yields nothing until [`KernelEvent::Halted`]: the
//! event plumbing then costs two branch tests per cycle, which is what
//! keeps the plain-`run` KIPS floor intact (`scripts/verify.sh` gates on
//! it).
//!
//! Stage wall-time attribution is a compile-time choice through
//! [`StageClock`]: the null clock inlines to nothing; the profiling clock
//! (`stage-profile` feature) reads one `Instant` per stage group exactly
//! as the old dedicated profiled loop did.

use crate::core::{Core, CoreError};
use crate::fault::InjectionRecord;
use crate::host::ControlHost;
use crate::pipeline::Pipeline;

/// A structured event yielded by the kernel's step loop.
///
/// Events are *observations*, not control transfers: the kernel's state is
/// whatever the last step left it as, and the caller resumes it by pumping
/// again. `Halted` is terminal — pumping after it returns it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// At least [`YieldPolicy::retire_batch`] instructions retired since
    /// the previous `RetireBatch` yield.
    RetireBatch {
        /// Cycle after which the batch threshold was crossed.
        cycle: u64,
        /// Total instructions retired so far.
        retired: u64,
    },
    /// A misprediction recovery squashed the pipeline.
    Recovery {
        /// Cycle the recovery ran.
        cycle: u64,
        /// PC of the recovering instruction.
        pc: u32,
        /// Fetch sequence number of the recovering instruction.
        seq: u64,
        /// Corrected fetch target.
        target: u32,
        /// Instructions squashed (ROB + front pipe).
        squashed: u64,
    },
    /// The armed fault injection fired.
    FaultDetected {
        /// Proof of injection: kind, cycle, and site.
        record: InjectionRecord,
    },
    /// [`YieldPolicy::heartbeat_interval`] cycles elapsed.
    Heartbeat {
        /// Current cycle.
        cycle: u64,
        /// Total instructions retired so far.
        retired: u64,
    },
    /// `Halt` retired: the run is architecturally complete. Terminal.
    Halted {
        /// Final cycle count (the halting cycle is not counted).
        cycle: u64,
        /// Total instructions retired.
        retired: u64,
    },
}

/// What the kernel yields besides the terminal [`KernelEvent::Halted`].
///
/// The default is everything off: the pump then runs straight to halt and
/// the per-cycle event overhead is two always-false branch tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct YieldPolicy {
    /// Yield [`KernelEvent::RetireBatch`] each time this many instructions
    /// have retired since the last batch yield (0 = off).
    pub retire_batch: u64,
    /// Yield [`KernelEvent::Recovery`] on every misprediction recovery.
    pub on_recovery: bool,
    /// Yield [`KernelEvent::FaultDetected`] when the armed fault fires.
    pub on_fault: bool,
    /// Yield [`KernelEvent::Heartbeat`] every this many cycles (0 = off).
    pub heartbeat_interval: u64,
}

impl YieldPolicy {
    /// The silent policy: only [`KernelEvent::Halted`] is ever yielded.
    pub fn silent() -> YieldPolicy {
        YieldPolicy::default()
    }
}

// Stage indices for [`StageClock::lap`], matching
// `stage_profile::STAGE_NAMES` order (frontend first, commit last) so the
// profiling clock can index the profile arrays directly.
pub(crate) const STAGE_FRONTEND: usize = 0;
pub(crate) const STAGE_DISPATCH: usize = 1;
pub(crate) const STAGE_SCHEDULER: usize = 2;
pub(crate) const STAGE_LSQ: usize = 3;
pub(crate) const STAGE_COMMIT: usize = 4;

/// Compile-time switch for per-stage wall-time attribution in the step
/// loop. The null implementation inlines away; the profiling one reads an
/// `Instant` per lap.
pub(crate) trait StageClock {
    /// Marks the start of a cycle's stage sequence.
    #[inline]
    fn start(&mut self) {}
    /// Charges the time since the previous mark to `stage`.
    #[inline]
    fn lap(&mut self, _stage: usize) {}
}

/// The zero-cost clock for unprofiled runs.
pub(crate) struct NullClock;

impl StageClock for NullClock {}

/// The profiling clock: one `Instant` read per stage group, accumulated
/// into a [`StageProfile`](crate::stage_profile::StageProfile) exactly as
/// the old dedicated profiled loop did.
#[cfg(feature = "stage-profile")]
pub(crate) struct ProfClock<'a> {
    profile: &'a mut crate::stage_profile::StageProfile,
    last: std::time::Instant,
}

#[cfg(feature = "stage-profile")]
impl<'a> ProfClock<'a> {
    pub(crate) fn new(profile: &'a mut crate::stage_profile::StageProfile) -> ProfClock<'a> {
        ProfClock { profile, last: std::time::Instant::now() }
    }
}

#[cfg(feature = "stage-profile")]
impl StageClock for ProfClock<'_> {
    #[inline]
    fn start(&mut self) {
        self.last = std::time::Instant::now();
    }

    #[inline]
    fn lap(&mut self, stage: usize) {
        let now = std::time::Instant::now();
        self.profile.ns[stage] += u64::try_from((now - self.last).as_nanos()).unwrap_or(u64::MAX);
        self.profile.calls[stage] += 1;
        self.last = now;
    }
}

impl Pipeline {
    /// Per-cycle guards, in one place for every entry point: cycle limit,
    /// the control host (budget/cancel/heartbeat), the retirement
    /// watchdog, and the post-mortem snapshot ring.
    fn cycle_gate(&mut self, cycle_limit: u64) -> Result<(), CoreError> {
        if self.now >= cycle_limit {
            return Err(CoreError::CycleLimit(cycle_limit));
        }
        self.control.poll(self.now)?;
        if self.stats.retired != self.last_retired.1 {
            self.last_retired = (self.now, self.stats.retired);
        } else if self.now - self.last_retired.0 > self.cfg.watchdog_cycles {
            return Err(CoreError::Deadlock { cycle: self.now, state: self.dump_state() });
        }
        if self.cfg.post_mortem_depth > 0 {
            self.snap_ring.push(self.cycle_snap());
        }
        Ok(())
    }

    /// Advances the pipeline by one cycle: the guard gate, then the stages
    /// in reverse pipeline order so each stage observes the state the
    /// younger stages left at the end of the previous cycle. On the
    /// halting cycle, commit runs alone and the cycle is neither counted
    /// nor accounted (matching the architectural definition of `cycles`).
    pub(crate) fn step_cycle<C: StageClock>(&mut self, cycle_limit: u64, clock: &mut C) -> Result<(), CoreError> {
        self.cycle_gate(cycle_limit)?;
        let retired_before = self.stats.retired;
        clock.start();
        self.commit()?;
        clock.lap(STAGE_COMMIT);
        if self.halted {
            return Ok(());
        }
        self.complete();
        clock.lap(STAGE_LSQ);
        self.issue();
        clock.lap(STAGE_SCHEDULER);
        self.dispatch();
        clock.lap(STAGE_DISPATCH);
        self.fetch()?;
        clock.lap(STAGE_FRONTEND);
        self.account_cycle(retired_before);
        self.now += 1;
        // Periodic yields. With the default (silent) policy these are two
        // always-false tests — the step loop's only event overhead.
        if self.yield_policy.retire_batch > 0 {
            self.retire_acc += self.stats.retired - retired_before;
            if self.retire_acc >= self.yield_policy.retire_batch {
                self.retire_acc = 0;
                self.pending_events
                    .push_back(KernelEvent::RetireBatch { cycle: self.now, retired: self.stats.retired });
            }
        }
        if self.yield_policy.heartbeat_interval > 0 && self.now.is_multiple_of(self.yield_policy.heartbeat_interval) {
            self.pending_events.push_back(KernelEvent::Heartbeat { cycle: self.now, retired: self.stats.retired });
        }
        Ok(())
    }

    /// Steps until the next yield: drains pending events first, then runs
    /// cycles until an event is produced or the pipeline halts.
    pub(crate) fn pump<C: StageClock>(&mut self, cycle_limit: u64, clock: &mut C) -> Result<KernelEvent, CoreError> {
        loop {
            if let Some(ev) = self.pending_events.pop_front() {
                return Ok(ev);
            }
            if self.halted {
                return Ok(KernelEvent::Halted { cycle: self.now, retired: self.stats.retired });
            }
            self.step_cycle(cycle_limit, clock)?;
        }
    }
}

impl Core {
    /// Arms the kernel's yield policy: [`Core::next_event`] returns the
    /// selected [`KernelEvent`]s as the run progresses. The default policy
    /// is silent (only `Halted`), which is also what keeps
    /// [`Core::run`](crate::Core::run) at full speed.
    #[must_use]
    pub fn with_yield_policy(mut self, policy: YieldPolicy) -> Self {
        self.p.yield_policy = policy;
        self
    }

    /// Advances the kernel until it yields the next [`KernelEvent`] (per
    /// the armed [`YieldPolicy`]) or halts. The kernel is resumable: call
    /// again to continue from exactly where the last event was yielded.
    /// After [`KernelEvent::Halted`], call [`Core::finish`] for the
    /// [`RunReport`](crate::RunReport) — further `next_event` calls just
    /// repeat `Halted`.
    ///
    /// # Errors
    ///
    /// The same [`CoreError`]s as [`Core::run`](crate::Core::run); the
    /// kernel is dead after an error.
    pub fn next_event(&mut self, cycle_limit: u64) -> Result<KernelEvent, CoreError> {
        self.p.pump(cycle_limit, &mut NullClock)
    }

    /// Finalizes counters and packages the [`RunReport`](crate::RunReport)
    /// after the kernel halted (the event-driven twin of the tail of
    /// [`Core::run`](crate::Core::run)).
    pub fn finish(self) -> crate::stats::RunReport {
        self.into_report()
    }
}
