//! Commit stage: in-order retirement against the functional oracle,
//! predictor training, branch resolution, and misprediction recovery.
//!
//! Branch resolution (`resolve_branch`, `execute_push_bq`) lives here with
//! recovery rather than in the scheduler because its only side effects are
//! commit-side: verdicts, checkpoint reclamation, and the squash walk.
//! `recover_at` restores fetch-side queue snapshots, rewinds the predictor,
//! prunes the scheduler's ready queue, and repairs the rename state by
//! walking squashed instructions youngest-first.

use crate::core::CoreError;
use crate::fault::{FaultKind, FaultSite};
use crate::host::{FaultHost, MemoryHost, TelemetryHost};
use crate::pipeline::{DynInst, Pipeline};
use crate::rename::join_taint;
use crate::stats::level_index;
use cfd_isa::{eval_branch, Instr, NullSink};

impl Pipeline {
    pub(crate) fn commit(&mut self) -> Result<(), CoreError> {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else { return Ok(()) };
            if !head.dispatched || !head.done || !head.verified {
                return Ok(());
            }
            // Deferred (retirement-time) misprediction recovery.
            if head.mispredict && head.recover_at_retire {
                self.stats.retire_recoveries += 1;
                self.recover_at(0);
            }
            let mut e = self.rob.pop_front().expect("head exists");
            self.trace_record(&e, Some(self.now));

            // Oracle cross-check: the retired stream must match functional
            // execution exactly.
            if self.cfg.verify_retirement {
                let opc = self.oracle.pc();
                if opc != e.pc {
                    return Err(CoreError::OracleMismatch { seq: e.seq, core_pc: e.pc, oracle_pc: opc });
                }
            }
            self.oracle.step(&mut NullSink).map_err(|err| CoreError::Program(err.to_string()))?;

            // Architectural queue high-water marks, sampled on the committed
            // (oracle) state so speculation never inflates them. cfd-harden
            // checks these against the static bounds from cfd-lint.
            self.stats.max_bq_occupancy = self.stats.max_bq_occupancy.max(self.oracle.bq.len() as u64);
            self.stats.max_vq_occupancy = self.stats.max_vq_occupancy.max(self.oracle.vq.len() as u64);
            self.stats.max_tq_occupancy = self.stats.max_tq_occupancy.max(self.oracle.tq.len() as u64);
            // The registry gauges sample the same committed state at the
            // same point, so each gauge's high-water mark equals the
            // `max_*_occupancy` counter above by construction.
            if self.telem.armed() {
                self.telem.gauge_set("core.bq_occupancy", self.oracle.bq.len() as u64);
                self.telem.gauge_set("core.vq_occupancy", self.oracle.vq.len() as u64);
                self.telem.gauge_set("core.tq_occupancy", self.oracle.tq.len() as u64);
            }

            self.stats.retired += 1;
            self.events.rob_ops += 1;
            if e.in_lsq {
                self.lsq_count -= 1;
            }
            if let Some(prev) = e.prev_phys {
                self.rename.free_phys(prev);
            }
            match e.instr {
                Instr::PushBq { .. } => self.bq.retire_push(),
                Instr::BranchOnBq { .. } => {
                    self.bq.retire_pop();
                    self.events.bq_ops += 1;
                }
                Instr::MarkBq => self.bq.retire_mark(),
                Instr::ForwardBq => self.bq.retire_forward(),
                Instr::PushVq { .. } => self.vq.retire_push(),
                Instr::PopVq { .. } => {
                    self.vq.retire_pop();
                    // The push's physical register is freed when the pop
                    // that references it retires (§IV-B).
                    if let Some(p) = e.vq_free {
                        self.rename.free_phys(p);
                    }
                }
                Instr::PushTq { .. } => self.tq.retire_push(),
                Instr::PopTq | Instr::PopTqBrOvf { .. } => self.tq.retire_pop(e.tq_loaded_tcr),
                Instr::BranchOnTcr { .. } => {
                    if e.fetch_taken == Some(true) {
                        self.tq.retire_tcr_decrement();
                    }
                    self.events.tq_ops += 1;
                }
                Instr::Store { .. } => {
                    // The oracle step above performed the store on committed
                    // memory; charge the cache access here (store buffer
                    // drains at retirement). Under MSHR saturation the fill
                    // is dropped rather than retried — a deliberate
                    // store-buffer simplification: correctness lives in the
                    // oracle memory, and retirement never stalls on stores.
                    if let Some(addr) = e.eff_addr {
                        self.mem.data_access(e.pc as u64 * 4, addr, true, self.now);
                    }
                    debug_assert_eq!(self.store_list.front(), Some(&e.rob_seq));
                    self.store_list.pop_front();
                }
                Instr::Halt => {
                    self.halted = true;
                }
                _ => {}
            }

            // Branch bookkeeping + predictor training.
            if e.fetch_taken.is_some() || matches!(e.instr, Instr::Jr { .. }) {
                self.retire_branch(&mut e);
            }
            if e.has_checkpoint {
                self.checkpoints_free += 1;
            }
            if self.halted {
                return Ok(());
            }
        }
        Ok(())
    }

    fn retire_branch(&mut self, e: &mut DynInst) {
        let taken = e.resolved_taken.or(e.fetch_taken).unwrap_or(false);
        if e.instr.is_conditional() {
            self.stats.retired_branches += 1;
        }
        let stat = self.stats.branches.entry(e.pc).or_default();
        stat.executed += 1;
        if taken {
            stat.taken += 1;
        }
        if e.mispredict {
            stat.mispredicted += 1;
            stat.mispredicted_by_level[level_index(e.taint)] += 1;
            self.stats.mispredictions += 1;
        }
        if let Some(meta) = &e.pred_meta {
            self.predictor.train(Self::bpc(e.pc), taken, meta);
            self.events.bpred_ops += 1;
        }
        if e.instr.is_plain_conditional() {
            self.confidence.update(Self::bpc(e.pc), !e.mispredict);
        }
    }

    /// Resolves a plain branch or indirect jump at ROB index `i`. Returns
    /// true if an immediate recovery truncated the ROB.
    pub(crate) fn resolve_branch(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        let (actual_taken, actual_target) = match e.instr {
            Instr::Branch { cond, target, .. } => {
                let a = self.rename.read(e.psrc1.expect("branch src1"));
                let b = self.rename.read(e.psrc2.expect("branch src2"));
                let t = eval_branch(cond, a, b);
                (t, if t { target } else { e.pc + 1 })
            }
            Instr::Jr { .. } => {
                let t = self.rename.read(e.psrc1.expect("jr src")) as u32;
                (true, t)
            }
            _ => unreachable!("resolve_branch on non-branch"),
        };
        let taint = {
            let mut t = None;
            if let Some(p) = e.psrc1 {
                t = join_taint(t, self.rename.taint(p));
            }
            if let Some(p) = e.psrc2 {
                t = join_taint(t, self.rename.taint(p));
            }
            t
        };
        let predicted_target = e.fetch_target;
        let mispredicted = match e.instr {
            // A branch targeting its own fall-through has a single successor:
            // a wrong direction cannot take fetch down a wrong path, and the
            // fetch oracle (which tracks the *path*) never diverges on it.
            Instr::Branch { target, .. } => e.fetch_taken != Some(actual_taken) && target != e.pc + 1,
            _ => predicted_target != actual_target,
        };
        let idx = i;
        {
            let e = &mut self.rob[idx];
            e.resolved_taken = Some(actual_taken);
            e.taint = taint;
        }
        if mispredicted {
            self.rob[idx].mispredict = true;
            let truncated = self.begin_recovery(idx, actual_target, actual_taken);
            // OoO checkpoint reclamation: the checkpoint was consumed by the
            // recovery (or was never held); release it now, not at retire.
            self.release_checkpoint(idx);
            truncated
        } else {
            // Correctly-predicted branch: its checkpoint is no longer needed
            // (aggressive OoO reclamation, the paper's best policy, §VI).
            self.release_checkpoint(idx);
            false
        }
    }

    /// Frees the checkpoint held by the ROB entry at `idx`, if any.
    pub(crate) fn release_checkpoint(&mut self, idx: usize) {
        if self.rob[idx].has_checkpoint {
            self.rob[idx].has_checkpoint = false;
            self.checkpoints_free += 1;
        }
    }

    /// Executes a `Push_BQ` at ROB index `i`; handles late-push
    /// verification. Returns true if recovery truncated the ROB.
    pub(crate) fn execute_push_bq(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        let abs = e.bq_abs.expect("bq push has index");
        let src = e.psrc1.expect("bq push has source");
        let mut predicate = self.rename.read(src) != 0;
        let taint = self.rename.taint(src);
        // Fault injection at the BQ write port: a corrupted predicate
        // steers the pop down the wrong path (oracle mismatch at retire);
        // a dropped write leaves the pop unverifiable (watchdog trip).
        match self.fault_at(FaultSite::BqExecutePush) {
            Some(FaultKind::BqCorrupt) => predicate = !predicate,
            Some(FaultKind::BqDrop) => return false,
            _ => {}
        }
        self.events.bq_ops += 1;
        let r = self.bq.execute_push_tainted(abs, predicate, level_index(taint) as u8);
        if self.trace {
            eprintln!("[{}] EXEC_PUSH seq={} abs={} pred={} result={:?}", self.now, self.rob[i].seq, abs, predicate, r);
        }
        let Some((pop_seq, spec_pred)) = r else {
            return false;
        };
        // Late push: find the speculative pop and verify it.
        let Some(pop_idx) = self.rob.iter().position(|x| x.seq == pop_seq) else {
            return false; // the pop was squashed
        };
        {
            let pop = &mut self.rob[pop_idx];
            pop.verified = true;
            pop.taint = taint;
        }
        if spec_pred == predicate {
            self.release_checkpoint(pop_idx);
            return false;
        }
        let actual_taken = !predicate;
        let taken_target = match self.rob[pop_idx].instr {
            Instr::BranchOnBq { target } => target,
            _ => unreachable!("spec pop is a Branch_on_BQ"),
        };
        // Degenerate pop (taken target == fall-through): the predicate was
        // wrong but both directions continue at the same PC, so the fetched
        // path is already correct — no squash, and the fetch oracle (which
        // never diverged) must not be rewound.
        if taken_target == self.rob[pop_idx].pc + 1 {
            self.rob[pop_idx].resolved_taken = Some(actual_taken);
            self.release_checkpoint(pop_idx);
            return false;
        }
        // Speculation failed: the pop's direction flips (taken = !predicate).
        self.stats.bq_spec_recoveries += 1;
        let target = if actual_taken { taken_target } else { self.rob[pop_idx].pc + 1 };
        self.rob[pop_idx].mispredict = true;
        self.rob[pop_idx].resolved_taken = Some(actual_taken);
        let truncated = self.begin_recovery(pop_idx, target, actual_taken);
        self.release_checkpoint(pop_idx);
        truncated
    }

    /// Starts recovery for the mispredicted instruction at ROB index `i`:
    /// immediately when it holds a checkpoint, else deferred to retirement.
    /// Returns true when the ROB was truncated now.
    pub(crate) fn begin_recovery(&mut self, i: usize, _target: u32, _actual_taken: bool) -> bool {
        if self.fault_has_fired() {
            self.stats.post_fault_recoveries += 1;
        }
        if self.rob[i].has_checkpoint {
            self.stats.immediate_recoveries += 1;
            self.events.checkpoint_ops += 1;
            self.recover_at(i);
            true
        } else {
            self.rob[i].recover_at_retire = true;
            false
        }
    }

    /// Squashes everything younger than ROB index `i` and restores front-end
    /// state from its snapshot; fetch resumes at the corrected target.
    pub(crate) fn recover_at(&mut self, i: usize) {
        let squashed = (self.rob.len() - (i + 1)) as u64 + self.front_q.len() as u64;
        // Squash the front pipe entirely (younger than everything in ROB),
        // returning any checkpoints its branches hold.
        for e in &self.front_q {
            if e.has_checkpoint {
                self.checkpoints_free += 1;
            }
        }
        self.front_q.clear();
        // Walk youngest -> oldest undoing renames.
        while self.rob.len() > i + 1 {
            let mut victim = self.rob.pop_back().expect("len > i+1");
            self.squash_entry(&mut victim);
        }
        let max_rob_seq = self.rob.back().expect("recovery target survives").rob_seq;
        self.next_rob_seq = max_rob_seq + 1;
        // Prune squashed ordinals from the ready queue. Wakeup/completion
        // wheels and PRF waiter lists are pruned lazily instead: a stale
        // ordinal there (even one later reused, since `next_rob_seq` resets)
        // only triggers a spurious liveness re-check — every issue and
        // completion re-validates against the live ROB entry.
        self.ready_list.split_off(&(max_rob_seq + 1));
        self.store_list.retain(|&s| s <= max_rob_seq);
        let (snap, pc, seq, instr, resolved_taken, psrc1, pred_meta) = {
            let e = &self.rob[i];
            (
                e.snapshot.as_ref().expect("recovering instruction has a snapshot").clone(),
                e.pc,
                e.seq,
                e.instr,
                e.resolved_taken,
                e.psrc1,
                e.pred_meta.clone(),
            )
        };
        if self.trace {
            eprintln!(
                "[{}] BQ_RECOVER to snap head={} tail={} (was h={} t={})",
                self.now, snap.bq.head, snap.bq.tail, self.bq.head, self.bq.tail
            );
        }
        self.bq.recover(&snap.bq);
        self.tq.recover(&snap.tq);
        // The VQ renamer was already repaired by the squash walk (it is a
        // rename-stage structure; fetch-time snapshots do not apply).
        self.ras.restore(&snap.ras);

        // Predictor history rewinds to this branch and learns the outcome.
        if let Some(meta) = pred_meta {
            self.predictor.recover(Self::bpc(pc), resolved_taken.unwrap_or(false), &meta);
        }

        // Correct next PC.
        let target = match instr {
            Instr::Branch { target, .. } | Instr::BranchOnBq { target } => {
                if resolved_taken == Some(true) {
                    target
                } else {
                    pc + 1
                }
            }
            Instr::Jr { .. } => self.rename.read(psrc1.expect("jr src")) as u32,
            _ => pc + 1,
        };
        self.fetch_pc = target;
        self.fetch_resume_at = self.now + 1;
        self.fetch_halted = false;
        self.refill_after_recovery = true;
        if self.telem.armed() {
            self.telem.counter_add("core.recoveries", 1);
            self.telem.histogram_record("core.squash_depth", squashed);
            self.telem.trace_instant(
                "recovery",
                "pipe",
                self.now,
                vec![
                    ("pc", (pc as u64).into()),
                    ("seq", seq.into()),
                    ("target", (target as u64).into()),
                    ("squashed", squashed.into()),
                ],
            );
        }
        if self.yield_policy.on_recovery {
            self.pending_events.push_back(crate::kernel::KernelEvent::Recovery {
                cycle: self.now,
                pc,
                seq,
                target,
                squashed,
            });
        }
        if self.trace {
            eprintln!(
                "[{}] RECOVER seq={} pc={} `{}` -> target {} (diverged={:?})",
                self.now, seq, pc, instr, target, self.diverged_at
            );
        }

        // Resynchronize the fetch oracle when the diverging instruction
        // itself recovers.
        if self.diverged_at == Some(seq) {
            self.diverged_at = None;
            debug_assert_eq!(self.fetch_oracle.pc(), target, "fetch oracle resync mismatch");
        } else if self.diverged_at.is_none() && self.fetch_oracle.pc() != target {
            // A "recovery" that leaves the oracle's path can only come from
            // corrupted state (fault injection): an on-path branch resolved
            // with a wrong value. Mark fetch as diverged so the retirement
            // oracle reports the mismatch instead of the fetch-side
            // divergence tracker asserting.
            debug_assert!(self.fault.armed(), "off-oracle recovery without fault injection");
            self.diverged_at = Some(seq);
        }
    }

    fn squash_entry(&mut self, victim: &mut DynInst) {
        self.trace_record(victim, None);
        if victim.in_iq && !victim.issued {
            self.iq_count -= 1;
        }
        if victim.in_lsq {
            self.lsq_count -= 1;
        }
        if victim.has_checkpoint {
            self.checkpoints_free += 1;
        }
        match victim.instr {
            Instr::PushVq { .. } => {
                // No RMT update; roll the VQ renamer tail back and return
                // the mapping's register.
                self.vq.unrename_push();
                if let Some(p) = victim.pdest {
                    self.rename.free_phys(p);
                }
            }
            Instr::PopVq { .. } => {
                self.vq.unrename_pop();
                if let (Some(rd), Some(p), Some(prev)) = (victim.instr.dest(), victim.pdest, victim.prev_phys) {
                    self.rename.unrename(rd, p, prev);
                }
            }
            _ => {
                if let (Some(rd), Some(p), Some(prev)) = (victim.instr.dest(), victim.pdest, victim.prev_phys) {
                    self.rename.unrename(rd, p, prev);
                }
            }
        }
    }
}
