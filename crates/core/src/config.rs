//! Core configuration (paper Fig. 17a: Sandy-Bridge-like baseline).

use cfd_mem::HierarchyConfig;
use std::collections::BTreeSet;

/// What the front end does on a BQ miss (a `Branch_on_BQ` fetched before its
/// `Push_BQ` executed — the "late push" of §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BqMissPolicy {
    /// Predict the predicate with the branch predictor (speculative pop);
    /// the late push verifies and recovers on a mismatch. The paper's
    /// default design.
    Speculate,
    /// Stall fetch until the push executes (evaluated in Fig. 21c).
    Stall,
}

/// Which branches receive oracle predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfectMode {
    /// No oracle assistance: the configured predictor serves all branches.
    None,
    /// Every conditional branch is predicted perfectly (Fig. 1, Fig. 2b).
    All,
    /// Only the listed branch PCs are perfect (Base + PerfectCFD, Fig. 19).
    Pcs(BTreeSet<u32>),
}

impl PerfectMode {
    /// Whether the branch at `pc` gets an oracle prediction.
    pub fn covers(&self, pc: u32) -> bool {
        match self {
            PerfectMode::None => false,
            PerfectMode::All => true,
            PerfectMode::Pcs(set) => set.contains(&pc),
        }
    }
}

/// Checkpoint (shadow-state) allocation policy for branch recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Allocate to every branch while checkpoints are free.
    AllBranches,
    /// Allocate only to low-confidence branches (JRS estimator) while free
    /// — the paper's best-performing baseline policy (§VI).
    ConfidenceGuided,
    /// Never allocate: every misprediction recovers at retirement.
    None,
}

/// Full configuration of the out-of-order core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Fetch/decode/rename/retire width.
    pub width: usize,
    /// Issue width (per cycle, across all FU classes).
    pub issue_width: usize,
    /// Reorder buffer entries (Sandy Bridge: 168).
    pub rob_size: usize,
    /// Issue queue (scheduler) entries (Sandy Bridge: 54).
    pub iq_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Physical register file size.
    pub prf_size: usize,
    /// Cycles between fetch and dispatch (decode+rename pipeline). The
    /// minimum fetch-to-execute latency is `front_depth + 2`; the default
    /// of 8 gives the paper's conservative 10 cycles (Table II).
    pub front_depth: u32,
    /// Number of branch checkpoints (paper: gains level off at 8).
    pub n_checkpoints: usize,
    /// Checkpoint allocation policy.
    pub checkpoint_policy: CheckpointPolicy,
    /// Simple ALU count.
    pub n_alu: usize,
    /// Complex (mul/div) unit count.
    pub n_complex: usize,
    /// Load ports.
    pub n_load_ports: usize,
    /// Store ports.
    pub n_store_ports: usize,
    /// Branch unit count.
    pub n_branch_units: usize,
    /// Direction predictor: `"isl-tage"`, `"gshare"`, `"perceptron"`,
    /// `"bimodal"`, `"always-taken"`.
    pub predictor: String,
    /// Oracle-assist mode.
    pub perfect: PerfectMode,
    /// BQ size (ISA parameter; paper: 128).
    pub bq_size: usize,
    /// VQ size (paper: 128).
    pub vq_size: usize,
    /// TQ size (paper: 256).
    pub tq_size: usize,
    /// Architected trip-count width in bits.
    pub tq_trip_bits: u32,
    /// BQ miss handling.
    pub bq_miss_policy: BqMissPolicy,
    /// Memory hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Model the L1 instruction cache (32 KB, 64 B blocks): an I-miss
    /// bubbles fetch for the L2 latency. Our kernels fit comfortably, so
    /// this mainly charges cold-start bubbles, but it completes the model.
    pub model_icache: bool,
    /// Verify the retired instruction stream against the functional oracle
    /// (cheap; catches simulator bugs — keep on).
    pub verify_retirement: bool,
    /// Watchdog: declare a deadlock when no instruction retires for this
    /// many cycles. Bounds the detection latency of dropped-entry faults.
    pub watchdog_cycles: u64,
    /// Keep the last N per-cycle pipeline snapshots for post-mortem dumps
    /// (see [`Core::run_diag`](crate::Core::run_diag)); 0 disables the
    /// ring.
    pub post_mortem_depth: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 4,
            issue_width: 6,
            rob_size: 168,
            iq_size: 54,
            lsq_size: 64,
            prf_size: 224,
            front_depth: 8,
            n_checkpoints: 8,
            checkpoint_policy: CheckpointPolicy::ConfidenceGuided,
            n_alu: 3,
            n_complex: 1,
            n_load_ports: 2,
            n_store_ports: 1,
            n_branch_units: 2,
            predictor: "isl-tage".to_string(),
            perfect: PerfectMode::None,
            bq_size: 128,
            vq_size: 128,
            tq_size: 256,
            tq_trip_bits: 16,
            bq_miss_policy: BqMissPolicy::Speculate,
            hierarchy: HierarchyConfig::default(),
            model_icache: true,
            verify_retirement: true,
            watchdog_cycles: 100_000,
            post_mortem_depth: 0,
        }
    }
}

impl CoreConfig {
    /// The paper's large-window projections (Fig. 21b/23): scales the ROB
    /// and the window-proportional structures.
    pub fn with_window(mut self, rob: usize) -> Self {
        let scale = rob as f64 / 168.0;
        self.rob_size = rob;
        self.iq_size = ((54.0 * scale) as usize).max(8);
        self.lsq_size = ((64.0 * scale) as usize).max(8);
        self.prf_size = rob + 56;
        self
    }

    /// Minimum fetch-to-execute latency implied by this configuration.
    pub fn fetch_to_execute(&self) -> u32 {
        self.front_depth + 2
    }

    /// Design-space axis: front-end/retire width and issue width. The
    /// execution-port mix scales with the issue width so a wide config is
    /// not silently port-starved (DSE sweeps vary this axis; see
    /// `cfd-serve`).
    pub fn with_widths(mut self, width: usize, issue_width: usize) -> Self {
        self.width = width.max(1);
        self.issue_width = issue_width.max(self.width);
        self.n_alu = (self.issue_width / 2).max(1);
        self.n_branch_units = (self.issue_width / 3).max(1);
        self
    }

    /// Design-space axis: CFD queue depths (BQ, VQ, TQ entries).
    pub fn with_queue_depths(mut self, bq: usize, vq: usize, tq: usize) -> Self {
        self.bq_size = bq.max(1);
        self.vq_size = vq.max(1);
        self.tq_size = tq.max(1);
        self
    }

    /// Design-space axis: direction predictor by registry name
    /// (`"isl-tage"`, `"gshare"`, `"perceptron"`, `"bimodal"`,
    /// `"always-taken"`). Name validity is checked where the core is
    /// constructed, not here, so grid expansion stays infallible.
    pub fn with_predictor(mut self, name: &str) -> Self {
        self.predictor = name.to_string();
        self
    }

    /// Design-space axis: L1D capacity in KB (geometry otherwise
    /// unchanged — the paper's cache-sensitivity style of sweep).
    pub fn with_l1_kb(mut self, kb: usize) -> Self {
        self.hierarchy.l1.size_bytes = kb.max(1) * 1024;
        self
    }

    /// A stable, content-complete textual serialization of the
    /// configuration, for content-addressed result fingerprinting
    /// (`cfd-exec`).
    ///
    /// Uses the derived `Debug` form: every field (and every field of the
    /// nested [`HierarchyConfig`] and [`PerfectMode`]) is plain scalar or
    /// ordered-collection data, so the rendering is deterministic, and a
    /// newly added field automatically changes the representation —
    /// which conservatively invalidates any cached simulation results
    /// keyed on it.
    pub fn stable_repr(&self) -> String {
        format!("{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_sandy_bridge_class() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 168);
        assert_eq!(c.fetch_to_execute(), 10);
        assert_eq!(c.bq_size, 128);
        assert_eq!(c.tq_size, 256);
    }

    #[test]
    fn window_scaling_scales_structures() {
        let c = CoreConfig::default().with_window(512);
        assert_eq!(c.rob_size, 512);
        assert!(c.iq_size > 100);
        assert!(c.prf_size > 512);
    }

    #[test]
    fn stable_repr_distinguishes_configs() {
        let a = CoreConfig::default();
        assert_eq!(a.stable_repr(), CoreConfig::default().stable_repr());
        let b = CoreConfig { bq_size: 64, ..Default::default() };
        assert_ne!(a.stable_repr(), b.stable_repr());
        let mut c = CoreConfig::default();
        c.hierarchy.stride_prefetch = true;
        assert_ne!(a.stable_repr(), c.stable_repr());
        // Field names are present, so the repr is self-describing.
        assert!(a.stable_repr().contains("bq_size"));
    }

    #[test]
    fn grid_axis_builders_cover_the_dse_axes() {
        let c = CoreConfig::default().with_widths(8, 8).with_queue_depths(16, 32, 64).with_predictor("gshare");
        assert_eq!((c.width, c.issue_width), (8, 8));
        assert!(c.n_alu >= 4 && c.n_branch_units >= 2, "port mix scales with issue width");
        assert_eq!((c.bq_size, c.vq_size, c.tq_size), (16, 32, 64));
        assert_eq!(c.predictor, "gshare");
        let c = CoreConfig::default().with_l1_kb(16);
        assert_eq!(c.hierarchy.l1.size_bytes, 16 * 1024);
        // Degenerate requests clamp instead of producing a 0-wide core.
        let c = CoreConfig::default().with_widths(0, 0).with_queue_depths(0, 0, 0);
        assert!(c.width >= 1 && c.issue_width >= 1 && c.bq_size >= 1);
        // Every axis must land in the fingerprint-bearing repr.
        let a = CoreConfig::default().stable_repr();
        for b in [
            CoreConfig::default().with_widths(2, 4),
            CoreConfig::default().with_queue_depths(8, 128, 256),
            CoreConfig::default().with_predictor("bimodal"),
            CoreConfig::default().with_l1_kb(64),
        ] {
            assert_ne!(a, b.stable_repr());
        }
    }

    #[test]
    fn perfect_mode_coverage() {
        assert!(!PerfectMode::None.covers(4));
        assert!(PerfectMode::All.covers(4));
        let pcs = PerfectMode::Pcs([4u32, 9].into_iter().collect());
        assert!(pcs.covers(9));
        assert!(!pcs.covers(10));
    }
}
