//! Shared pipeline state and cross-stage plumbing.
//!
//! [`Pipeline`] owns every piece of simulated state — front end, rename,
//! ROB, scheduler wheels, hierarchy, statistics, telemetry — and each stage
//! module ([`frontend`](crate::frontend), [`dispatch`](crate::dispatch),
//! [`scheduler`](crate::scheduler), [`lsq`](crate::lsq),
//! [`commit`](crate::commit)) contributes an `impl Pipeline` block with its
//! stage function plus that stage's private helpers. `core.rs` wraps the
//! struct in the public [`Core`](crate::Core) API and owns only the
//! cycle-step conductor.
//!
//! What lives *here* is the state struct itself and everything more than
//! one stage touches: the `DynInst` in-flight record, ROB indexing, the
//! PRF-write wakeup hook, fault-site visiting, CPI-stack accounting and
//! telemetry sampling, and the post-mortem renderers.

use crate::cfd_queues::{BqSnapshot, FetchBq, FetchTq, TqSnapshot};
use crate::config::CoreConfig;
use crate::core::CoreError;
use crate::fault::{FaultKind, FaultSite};
use crate::host::{ControlPort, FaultHost, FaultPort, MemoryHost, MemoryPort, TelemetryHost, TelemetryPort};
use crate::kernel::{KernelEvent, YieldPolicy};
use crate::rename::{PhysReg, RenameState, Taint, VqRenamer};
use crate::stats::CoreStats;
use crate::trace::{CycleSnap, PipeEvent, PipeTrace, SnapRing};
use cfd_energy::EventCounts;
use cfd_isa::{Instr, Machine, MemImage, MemWidth, Program, QueueConfig};
use cfd_mem::MemLevel;
use cfd_obs::CpiComponent;
use cfd_predictor::{predictor_by_name, Btb, ConfidenceEstimator, DirectionPredictor, PredMeta, Ras, RasSnapshot};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Recovery snapshot attached to instructions that can mispredict.
/// (The VQ renamer is a rename-stage structure repaired by the squash walk,
/// so no VQ pointers are snapshotted here.)
#[derive(Debug, Clone)]
pub(crate) struct Snapshot {
    pub(crate) bq: BqSnapshot,
    pub(crate) tq: TqSnapshot,
    pub(crate) ras: RasSnapshot,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    pub(crate) seq: u64,
    /// Dense ROB ordinal assigned at dispatch (fetch seqs have gaps when
    /// the front pipe is squashed; ROB indexing needs contiguity).
    pub(crate) rob_seq: u64,
    pub(crate) pc: u32,
    pub(crate) instr: Instr,
    /// Cycle at which the instruction may dispatch (front-pipe delay).
    pub(crate) dispatch_at: u64,
    /// Fetched while fetch was known to be on the wrong path.
    pub(crate) on_wrong_path: bool,
    /// Direction chosen at fetch for conditional control.
    pub(crate) fetch_taken: Option<bool>,
    /// Predicted target for indirect jumps.
    pub(crate) fetch_target: u32,
    /// Predictor metadata (plain branches and speculative pops).
    pub(crate) pred_meta: Option<PredMeta>,
    /// This `Branch_on_BQ` was resolved speculatively (BQ miss).
    pub(crate) spec_pop: bool,
    /// Speculative pop verified by its push.
    pub(crate) verified: bool,
    /// BQ absolute index (pushes and pops).
    pub(crate) bq_abs: Option<u64>,
    /// TQ absolute index (pushes and pops).
    pub(crate) tq_abs: Option<u64>,
    /// TCR value loaded by a `Pop_TQ` at fetch.
    pub(crate) tq_loaded_tcr: u32,
    /// Recovery snapshot.
    pub(crate) snapshot: Option<Box<Snapshot>>,
    pub(crate) has_checkpoint: bool,
    // Rename results.
    pub(crate) pdest: Option<PhysReg>,
    /// Previous mapping of the destination (RMT-updating instructions).
    pub(crate) prev_phys: Option<PhysReg>,
    pub(crate) psrc1: Option<PhysReg>,
    pub(crate) psrc2: Option<PhysReg>,
    /// The VQ mapping a `Pop_VQ` frees at retirement. Normally equals
    /// `psrc1`; kept separate so the free list stays consistent when
    /// fault injection corrupts the operand mapping.
    pub(crate) vq_free: Option<PhysReg>,
    /// Occupies an IQ slot until issued.
    pub(crate) in_iq: bool,
    pub(crate) in_lsq: bool,
    pub(crate) dispatched: bool,
    pub(crate) issued: bool,
    pub(crate) done: bool,
    pub(crate) ready_at: u64,
    // Memory.
    pub(crate) eff_addr: Option<u64>,
    // Stage timestamps (pipeline tracing).
    pub(crate) t_fetch: u64,
    pub(crate) t_dispatch: u64,
    pub(crate) t_issue: u64,
    pub(crate) t_complete: u64,
    // Resolution.
    pub(crate) resolved_taken: Option<bool>,
    pub(crate) mispredict: bool,
    pub(crate) recover_at_retire: bool,
    pub(crate) taint: Taint,
}

impl DynInst {
    pub(crate) fn new(seq: u64, pc: u32, instr: Instr, dispatch_at: u64, on_wrong_path: bool) -> DynInst {
        DynInst {
            seq,
            rob_seq: 0,
            pc,
            instr,
            dispatch_at,
            on_wrong_path,
            fetch_taken: None,
            fetch_target: 0,
            pred_meta: None,
            spec_pop: false,
            verified: true,
            bq_abs: None,
            tq_abs: None,
            tq_loaded_tcr: 0,
            snapshot: None,
            has_checkpoint: false,
            pdest: None,
            prev_phys: None,
            psrc1: None,
            psrc2: None,
            vq_free: None,
            in_iq: false,
            in_lsq: false,
            dispatched: false,
            issued: false,
            done: false,
            ready_at: u64::MAX,
            eff_addr: None,
            t_fetch: 0,
            t_dispatch: 0,
            t_issue: 0,
            t_complete: 0,
            resolved_taken: None,
            mispredict: false,
            recover_at_retire: false,
            taint: None,
        }
    }

    /// Executes in the backend (needs an IQ slot and a function unit).
    pub(crate) fn needs_backend(&self) -> bool {
        match self.instr {
            Instr::Alu { .. }
            | Instr::Li { .. }
            | Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Prefetch { .. }
            | Instr::Branch { .. }
            | Instr::Jr { .. }
            | Instr::PushBq { .. }
            | Instr::PushVq { .. }
            | Instr::PopVq { .. }
            | Instr::PushTq { .. } => true,
            Instr::Jump { .. }
            | Instr::Jal { .. }
            | Instr::BranchOnBq { .. }
            | Instr::MarkBq
            | Instr::ForwardBq
            | Instr::PopTq
            | Instr::BranchOnTcr { .. }
            | Instr::PopTqBrOvf { .. }
            | Instr::Nop
            | Instr::Halt
            | Instr::SaveBq { .. }
            | Instr::RestoreBq { .. }
            | Instr::SaveVq { .. }
            | Instr::RestoreVq { .. }
            | Instr::SaveTq { .. }
            | Instr::RestoreTq { .. } => false,
        }
    }

    pub(crate) fn is_mem_op(&self) -> bool {
        matches!(self.instr, Instr::Load { .. } | Instr::Store { .. } | Instr::Prefetch { .. })
    }
}

/// All simulated state, shared by the stage modules.
///
/// `Clone` is the checkpoint mechanism (see [`crate::checkpoint`]): every
/// field is either simulated state that deep-copies, or a host port whose
/// clone semantics are documented on the port (the control port's
/// [`CancelToken`](crate::CancelToken) clone intentionally *shares* the
/// supervisor's token).
#[derive(Clone)]
pub(crate) struct Pipeline {
    pub(crate) cfg: CoreConfig,
    pub(crate) program: Program,
    /// Retire-side oracle; its memory is the committed data memory.
    pub(crate) oracle: Machine,
    /// Fetch-side oracle (perfect prediction + divergence detection).
    pub(crate) fetch_oracle: Machine,
    /// Sequence number of the instruction where fetch diverged.
    pub(crate) diverged_at: Option<u64>,
    // Front end.
    pub(crate) fetch_pc: u32,
    pub(crate) fetch_resume_at: u64,
    pub(crate) fetch_halted: bool,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) predictor: Box<dyn DirectionPredictor>,
    pub(crate) confidence: ConfidenceEstimator,
    pub(crate) bq: FetchBq,
    pub(crate) tq: FetchTq,
    pub(crate) vq: VqRenamer,
    pub(crate) front_q: VecDeque<DynInst>,
    // Back end.
    pub(crate) rename: RenameState,
    pub(crate) rob: VecDeque<DynInst>,
    /// ROB ordinals of dispatched instructions whose sources are all
    /// computed, in age order (the scheduler's ready queue). Entries are
    /// re-validated at issue; stale ordinals (squashed or re-blocked by a
    /// corrupted remap) are dropped or re-registered there.
    pub(crate) ready_list: BTreeSet<u64>,
    /// Wakeup wheel: cycle -> ROB ordinals whose blocking source becomes
    /// ready that cycle. Drained into `ready_list` at the head of `issue`.
    pub(crate) wakeup_wheel: BTreeMap<u64, Vec<u64>>,
    /// Completion wheel: cycle -> ROB ordinals of issued instructions whose
    /// `ready_at` lands there. Replaces an every-cycle `exec_list` rescan.
    pub(crate) completion_wheel: BTreeMap<u64, Vec<u64>>,
    /// Sequence numbers of in-flight stores, in age order.
    pub(crate) store_list: VecDeque<u64>,
    pub(crate) iq_count: usize,
    pub(crate) lsq_count: usize,
    pub(crate) checkpoints_free: usize,
    /// Memory host: the data hierarchy and L1I tags, behind
    /// [`MemoryHost`].
    pub(crate) mem: MemoryPort,
    pub(crate) now: u64,
    pub(crate) next_seq: u64,
    pub(crate) next_rob_seq: u64,
    /// Event tracing enabled (CFD_TRACE env var, cached).
    pub(crate) trace: bool,
    pub(crate) halted: bool,
    pub(crate) stats: CoreStats,
    pub(crate) events: EventCounts,
    pub(crate) pipe_trace: Option<PipeTrace>,
    /// Fault host: the deterministic injector, behind [`FaultHost`]; null
    /// unless armed (see [`crate::fault`]).
    pub(crate) fault: FaultPort,
    /// Control host: progress heartbeat + cooperative cancellation, behind
    /// [`ControlHost`](crate::host::ControlHost); polled once per cycle by
    /// the step loop.
    pub(crate) control: ControlPort,
    /// Post-mortem snapshot ring (empty unless `post_mortem_depth > 0`).
    pub(crate) snap_ring: SnapRing,
    /// Why fetch most recently failed to supply instructions: CPI-stack
    /// attribution for empty-ROB cycles outside misprediction refill.
    pub(crate) front_block: CpiComponent,
    /// A recovery squashed the ROB and the corrected path has not reached
    /// dispatch yet: empty-ROB cycles are misprediction penalty.
    pub(crate) refill_after_recovery: bool,
    /// Telemetry host: registry/series/trace, behind [`TelemetryHost`];
    /// null unless armed.
    pub(crate) telem: TelemetryPort,
    // Host-side scheduler-efficiency counters (never affect simulation).
    /// Ready-queue entries examined by `issue` across the run.
    pub(crate) sched_ready_checks: u64,
    /// Wakeup-wheel events processed across the run.
    pub(crate) sched_wakeup_events: u64,
    /// IQ entries a per-cycle polling scheduler would have scanned
    /// (`iq_count` summed over cycles): the baseline the event-driven
    /// counters are compared against.
    pub(crate) sched_poll_equiv: u64,
    // Kernel stepping state (see [`crate::kernel`]). Lives on the pipeline
    // rather than in a loop frame so a run is resumable mid-flight.
    /// Which [`KernelEvent`]s the step loop yields (default: none).
    pub(crate) yield_policy: YieldPolicy,
    /// Events produced but not yet yielded to the driver.
    pub(crate) pending_events: VecDeque<KernelEvent>,
    /// Instructions retired since the last `RetireBatch` yield.
    pub(crate) retire_acc: u64,
    /// Retirement-watchdog state: cycle and count of the last observed
    /// forward progress.
    pub(crate) last_retired: (u64, u64),
}

impl Pipeline {
    pub(crate) fn new(cfg: CoreConfig, program: Program, mem: MemImage) -> Result<Pipeline, CoreError> {
        if cfg.bq_size == 0 || cfg.vq_size == 0 || cfg.tq_size == 0 {
            return Err(CoreError::Config("queue sizes must be non-zero".into()));
        }
        let qc = QueueConfig {
            bq_size: cfg.bq_size,
            vq_size: cfg.vq_size,
            tq_size: cfg.tq_size,
            tq_trip_bits: cfg.tq_trip_bits,
        };
        let oracle = Machine::with_queues(program.clone(), mem, qc);
        let fetch_oracle = oracle.clone();
        let predictor = predictor_by_name(&cfg.predictor)
            .ok_or_else(|| CoreError::Config(format!("unknown predictor `{}`", cfg.predictor)))?;
        Ok(Pipeline {
            program,
            oracle,
            fetch_oracle,
            diverged_at: None,
            fetch_pc: 0,
            fetch_resume_at: 0,
            fetch_halted: false,
            btb: Btb::new(10, 4),
            ras: Ras::new(16),
            predictor,
            confidence: ConfidenceEstimator::new(12, 15),
            bq: FetchBq::new(cfg.bq_size),
            tq: FetchTq::new(cfg.tq_size, cfg.tq_trip_bits),
            vq: VqRenamer::new(cfg.vq_size),
            front_q: VecDeque::new(),
            rename: RenameState::new(cfg.prf_size),
            rob: VecDeque::new(),
            ready_list: BTreeSet::new(),
            wakeup_wheel: BTreeMap::new(),
            completion_wheel: BTreeMap::new(),
            store_list: VecDeque::new(),
            iq_count: 0,
            lsq_count: 0,
            checkpoints_free: cfg.n_checkpoints,
            mem: MemoryPort::new(cfg.hierarchy.clone()),
            now: 0,
            next_seq: 0,
            next_rob_seq: 0,
            trace: std::env::var_os("CFD_TRACE").is_some(),
            halted: false,
            stats: CoreStats::default(),
            events: EventCounts::default(),
            pipe_trace: None,
            fault: FaultPort::unarmed(),
            control: ControlPort::disengaged(),
            snap_ring: SnapRing::new(cfg.post_mortem_depth),
            front_block: CpiComponent::Frontend,
            refill_after_recovery: false,
            telem: TelemetryPort::unarmed(),
            sched_ready_checks: 0,
            sched_wakeup_events: 0,
            sched_poll_equiv: 0,
            yield_policy: YieldPolicy::default(),
            pending_events: VecDeque::new(),
            retire_acc: 0,
            last_retired: (0, 0),
            cfg,
        })
    }

    // ------------------------------------------------------------------
    // CPI-stack accounting + telemetry sampling
    // ------------------------------------------------------------------

    /// Attributes this cycle's `width` retire slots: one Base slot per
    /// instruction retired this cycle, all remaining slots to the single
    /// blocking cause [`Pipeline::idle_cause`] identifies. Runs at the end
    /// of every counted cycle (the halting cycle is neither counted in
    /// `cycles` nor accounted here), so the components sum to exactly
    /// `cycles × width`.
    pub(crate) fn account_cycle(&mut self, retired_before: u64) {
        let width = self.cfg.width as u64;
        let r = (self.stats.retired - retired_before).min(width);
        self.stats.cpi_slots[CpiComponent::Base.index()] += r;
        let idle = width - r;
        if idle > 0 {
            let cause = self.idle_cause();
            self.stats.cpi_slots[cause.index()] += idle;
        }
        if self.telem.armed() {
            self.sample_telemetry(self.now + 1, false);
        }
    }

    /// The single component charged for this cycle's idle retire slots,
    /// classified from the end-of-cycle ROB head (or its absence).
    fn idle_cause(&self) -> CpiComponent {
        if let Some(head) = self.rob.front() {
            // A resolved speculative BQ pop waiting for its late push.
            if head.done && !head.verified {
                return CpiComponent::CfdStall;
            }
            // A load in (or just out of) flight: charge the furthest
            // memory level feeding it.
            if matches!(head.instr, Instr::Load { .. }) && head.issued {
                match head.taint {
                    Some(MemLevel::L1) => return CpiComponent::MemL1,
                    Some(MemLevel::L2) => return CpiComponent::MemL2,
                    Some(MemLevel::L3) => return CpiComponent::MemL3,
                    Some(MemLevel::Mem) => return CpiComponent::MemDram,
                    None => {}
                }
            }
            CpiComponent::Backend
        } else if self.refill_after_recovery {
            CpiComponent::Mispredict
        } else {
            // Pipeline fill: whatever last blocked fetch (a CFD queue
            // stall or a plain front-end bubble).
            self.front_block
        }
    }

    /// Pushes one time-series row stamped `cycle` when due (or `force`d).
    pub(crate) fn sample_telemetry(&mut self, cycle: u64, force: bool) {
        if !self.telem.sample_due(cycle, force) {
            return;
        }
        let (l1, l2, l3) = self.mem.cache_stats();
        let bq = self.bq.length();
        let vq = self.vq.length();
        let tq = self.tq.length();
        let rob = self.rob.len() as u64;
        let mut row = vec![
            cycle,
            self.stats.retired,
            self.stats.fetched,
            self.stats.mispredictions,
            self.stats.retired_branches,
            rob,
            self.iq_count as u64,
            self.lsq_count as u64,
            self.front_q.len() as u64,
            bq,
            vq,
            tq,
            l1.accesses,
            l1.hits,
            l2.accesses,
            l2.hits,
            l3.accesses,
            l3.hits,
        ];
        row.extend_from_slice(&self.stats.cpi_slots);
        self.telem.record_sample(cycle, row);
        if self.telem.trace_enabled() {
            self.telem.trace_counter(
                "occupancy",
                "pipe",
                cycle,
                vec![("bq", bq.into()), ("vq", vq.into()), ("tq", tq.into()), ("rob", rob.into())],
            );
        }
    }

    /// Final series row at end of run, skipped if sampling already landed
    /// exactly there.
    pub(crate) fn final_sample(&mut self) {
        if self.telem.needs_final_sample(self.now) {
            self.sample_telemetry(self.now, true);
        }
    }

    // ------------------------------------------------------------------
    // Shared plumbing
    // ------------------------------------------------------------------

    /// One post-mortem ring entry for the current cycle.
    pub(crate) fn cycle_snap(&self) -> CycleSnap {
        CycleSnap {
            cycle: self.now,
            fetch_pc: self.fetch_pc,
            retired: self.stats.retired,
            rob: self.rob.len(),
            iq: self.iq_count,
            lsq: self.lsq_count,
            front_q: self.front_q.len(),
            bq_len: self.bq.length(),
            tq_len: self.tq.length(),
            tcr: self.tq.tcr,
            free_regs: self.rename.free_regs(),
            ckpt_free: self.checkpoints_free,
        }
    }

    /// Visits a fault-injection site: returns the armed fault's kind when
    /// it fires at this visit (see [`crate::fault`]).
    pub(crate) fn fault_at(&mut self, site: FaultSite) -> Option<FaultKind> {
        if !self.fault.armed() {
            return None;
        }
        let fired = self.fault.visit(site, self.now);
        if let Some(kind) = fired {
            self.stats.faults_injected += 1;
            if self.telem.armed() {
                self.telem.trace_instant(
                    "fault",
                    "fault",
                    self.now,
                    vec![("site", format!("{site:?}").into()), ("kind", format!("{kind:?}").into())],
                );
            }
            if self.yield_policy.on_fault {
                if let Some(record) = self.fault.fired_record() {
                    self.pending_events.push_back(KernelEvent::FaultDetected { record });
                }
            }
        }
        fired
    }

    /// Whether the armed fault has fired by now (recovery attribution).
    pub(crate) fn fault_has_fired(&self) -> bool {
        self.fault.has_fired()
    }

    /// Branch PC as presented to predictor structures: instruction indices
    /// are word-granular, but the predictor/confidence hash functions expect
    /// byte-granular PCs (`pc >> 2` etc.), so scale by 4 to avoid aliasing
    /// adjacent branches.
    #[inline]
    pub(crate) fn bpc(pc: u32) -> u64 {
        (pc as u64) << 2
    }

    /// ROB index of the instruction with dense ordinal `rob_seq`.
    #[inline]
    pub(crate) fn rob_idx(&self, rob_seq: u64) -> Option<usize> {
        let front = self.rob.front()?.rob_seq;
        let idx = rob_seq.checked_sub(front)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    /// Writes a physical register and moves its waiters to the wakeup
    /// wheel at the value's ready cycle. Every producer-side PRF write goes
    /// through here so no registered consumer can miss its wakeup.
    pub(crate) fn prf_write(&mut self, p: PhysReg, value: i64, ready_at: u64, taint: Taint) {
        self.rename.write(p, value, ready_at, taint);
        let waiters = self.rename.take_waiters(p);
        if !waiters.is_empty() {
            self.wakeup_wheel.entry(ready_at).or_default().extend(waiters);
        }
    }

    /// Records a finished (retired or squashed) instruction into the trace.
    pub(crate) fn trace_record(&mut self, e: &DynInst, retired: Option<u64>) {
        if let Some(t) = &mut self.pipe_trace {
            if t.accepting() && e.seq < u64::MAX {
                t.record(PipeEvent {
                    seq: e.seq,
                    pc: e.pc,
                    disasm: e.instr.to_string(),
                    fetch: e.t_fetch,
                    dispatch: e.dispatched.then_some(e.t_dispatch),
                    issue: e.issued.then_some(e.t_issue),
                    complete: e.done.then_some(e.t_complete),
                    retire: retired,
                    squashed: retired.is_none(),
                });
            }
        }
    }

    /// One-line pipeline state summary for deadlock diagnostics.
    pub(crate) fn dump_state(&self) -> String {
        let head = self.rob.front().map(|e| {
            format!(
                "head seq={} pc={} `{}` disp={} issued={} done={} verified={} spec_pop={} bq_abs={:?}",
                e.seq, e.pc, e.instr, e.dispatched, e.issued, e.done, e.verified, e.spec_pop, e.bq_abs
            )
        });
        format!(
            "rob={} iq={} lsq={} front_q={} fetch_pc={} fetch_halted={} resume_at={} diverged={:?}              bq[h={} t={} net={} pend={}] tq[h={} t={} tcr={}] vq[h={} t={}] free_regs={} | {:?}",
            self.rob.len(),
            self.iq_count,
            self.lsq_count,
            self.front_q.len(),
            self.fetch_pc,
            self.fetch_halted,
            self.fetch_resume_at,
            self.diverged_at,
            self.bq.head,
            self.bq.tail,
            self.bq.net_push_ctr,
            self.bq.pending_push_ctr,
            self.tq.head,
            self.tq.tail,
            self.tq.tcr,
            self.vq.head,
            self.vq.tail,
            self.rename.free_regs(),
            head
        ) + &format!(
            " | front_head: {:?} vq_net={} vq_pend={} bq_len={} ckpt_free={}",
            self.front_q.front().map(|e| format!("seq={} pc={} `{}` disp_at={}", e.seq, e.pc, e.instr, e.dispatch_at)),
            self.vq.net_ctr,
            self.vq.pending_ctr,
            self.bq.length(),
            self.checkpoints_free
        )
    }
}

/// Inverse of [`level_index`](crate::stats::level_index): reconstructs a
/// taint from its code.
pub(crate) fn taint_from_index(code: u8) -> Taint {
    match code {
        1 => Some(MemLevel::L1),
        2 => Some(MemLevel::L2),
        3 => Some(MemLevel::L3),
        4 => Some(MemLevel::Mem),
        _ => None,
    }
}

/// Narrows a stored 64-bit value to `width` with sign/zero extension.
pub(crate) fn extract(stored: i64, width: MemWidth, signed: bool) -> i64 {
    let n = width.bytes() as u32;
    if n == 8 {
        return stored;
    }
    let shift = 64 - 8 * n;
    if signed {
        (stored << shift) >> shift
    } else {
        ((stored as u64) << shift >> shift) as i64
    }
}
