//! Full-state checkpoint/restore for the stepping kernel.
//!
//! A [`Checkpoint`] is a deep copy of the entire [`Pipeline`] — both
//! functional oracles (including the committed memory image), the front
//! end with its CFD queues, rename state, ROB, scheduler wheels, cache
//! hierarchy, statistics, and the kernel's own stepping state — sealed
//! with a version tag and an FNV-1a digest of an architectural state
//! summary.
//!
//! **Determinism contract:** the simulator is a deterministic function of
//! (config, program, memory image), so a core restored from a checkpoint
//! taken at cycle *C* and run to completion produces a [`RunReport`]
//! byte-identical to the uninterrupted run's — every counter, histogram
//! and telemetry artifact, not just the headline IPC. `scripts/verify.sh`
//! gates on this (`experiments ckpt`), and `crates/core/tests/checkpoint.rs`
//! exercises it at every quarter point of every catalog workload.
//!
//! Two host-port caveats, both deliberate:
//!
//! * a restored core *shares* the original's
//!   [`CancelToken`](crate::CancelToken) (tokens are `Arc`-backed
//!   supervisor handles, not simulated state), so a supervisor's cancel
//!   reaches restored descendants too;
//! * telemetry state is copied, so a restored run's artifacts continue the
//!   original's — which is exactly what the byte-determinism contract
//!   requires.
//!
//! [`RunReport`]: crate::RunReport

use crate::core::{Core, CoreError};
use crate::pipeline::Pipeline;

/// Format version for [`Checkpoint`] validation; bumped whenever the
/// digest summary or clone semantics change incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A resumable full-state snapshot of a [`Core`] mid-run.
///
/// Produced by [`Core::checkpoint`], consumed by [`Core::restore`]. The
/// snapshot is self-contained: it carries the configuration and program,
/// so restore needs no other inputs.
pub struct Checkpoint {
    version: u32,
    config_repr: String,
    cycle: u64,
    digest: u64,
    state: Box<Pipeline>,
}

impl Checkpoint {
    /// Simulated cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Debug rendering of the captured core configuration (provenance for
    /// stored checkpoints).
    pub fn config_repr(&self) -> &str {
        &self.config_repr
    }

    /// The sealed FNV-1a digest of the architectural state summary.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Corrupts the captured state without resealing the digest, so that
    /// [`Core::restore`] must reject this checkpoint. Test hook only.
    #[doc(hidden)]
    pub fn corrupt_state_for_test(&mut self) {
        self.state.stats.retired = self.state.stats.retired.wrapping_add(1);
    }

    /// Corrupts the version tag. Test hook only.
    #[doc(hidden)]
    pub fn corrupt_version_for_test(&mut self) {
        self.version = self.version.wrapping_add(1);
    }
}

/// Incremental FNV-1a over little-endian `u64` words: cheap, stable
/// across platforms, and adequate for tamper detection (not security).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn put(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Digest of an architectural state summary: cheap relative to a run
/// (linear in occupancy, not memory size) yet covering every structure
/// whose corruption could silently change simulated behavior — fetch
/// state, both oracle PCs, CFD queue occupancies, the full ROB and front
/// pipe, scheduler bookkeeping, and the headline statistics.
fn state_digest(p: &Pipeline) -> u64 {
    let mut h = Fnv::new();
    h.put(p.now);
    h.put(p.next_seq);
    h.put(p.next_rob_seq);
    h.put(u64::from(p.fetch_pc));
    h.put(p.fetch_resume_at);
    h.put(u64::from(p.fetch_halted));
    h.put(u64::from(p.halted));
    h.put(u64::from(p.oracle.pc()));
    h.put(u64::from(p.fetch_oracle.pc()));
    h.put(p.diverged_at.unwrap_or(u64::MAX));
    h.put(p.stats.retired);
    h.put(p.stats.fetched);
    h.put(p.stats.mispredictions);
    h.put(p.stats.retired_branches);
    h.put(p.bq.length());
    h.put(p.tq.length());
    h.put(p.vq.length());
    h.put(p.iq_count as u64);
    h.put(p.lsq_count as u64);
    h.put(p.checkpoints_free as u64);
    h.put(p.front_q.len() as u64);
    for d in &p.front_q {
        h.put(d.seq);
        h.put(u64::from(d.pc));
    }
    h.put(p.rob.len() as u64);
    for d in &p.rob {
        h.put(d.seq);
        h.put(d.rob_seq);
        h.put(u64::from(d.pc));
        h.put(u64::from(d.done) | u64::from(d.issued) << 1 | u64::from(d.verified) << 2);
    }
    h.put(p.store_list.len() as u64);
    for s in &p.store_list {
        h.put(*s);
    }
    h.put(p.retire_acc);
    h.put(p.last_retired.0);
    h.put(p.last_retired.1);
    h.0
}

impl Core {
    /// Snapshots the complete simulated state mid-run (any yield point of
    /// [`Core::next_event`], or before the first). Restoring the snapshot
    /// and running to completion is byte-identical to never having
    /// stopped — see the module docs for the contract and its host-port
    /// caveats.
    pub fn checkpoint(&self) -> Checkpoint {
        let state = Box::new(self.p.clone());
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config_repr: format!("{:?}", self.p.cfg),
            cycle: self.p.now,
            digest: state_digest(&state),
            state,
        }
    }

    /// Rebuilds a runnable core from a checkpoint, validating the version
    /// tag and resealing the state digest first.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the version tag is unknown or the
    /// digest does not match the captured state (corruption or tampering).
    pub fn restore(ckpt: Checkpoint) -> Result<Core, CoreError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CoreError::Checkpoint(format!(
                "unsupported checkpoint version {} (supported: {CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        let actual = state_digest(&ckpt.state);
        if actual != ckpt.digest {
            return Err(CoreError::Checkpoint(format!(
                "state digest mismatch at cycle {}: sealed {:#018x}, computed {:#018x}",
                ckpt.cycle, ckpt.digest, actual
            )));
        }
        Ok(Core { p: *ckpt.state })
    }

    /// The architectural-state digest of the live core, for lockstep
    /// differential testing: two cores on the same inputs must report
    /// identical fingerprints at identical cycles.
    pub fn fingerprint(&self) -> u64 {
        state_digest(&self.p)
    }
}
