//! Fetch stage: BTB + RAS + direction predictor, the fetch-resident BQ/TQ
//! (the paper's central mechanism — `Branch_on_BQ` / `Branch_on_TCR`
//! resolve non-speculatively when their producers have executed), BQ-miss
//! speculation, I-cache modeling, fetch-oracle divergence tracking, and the
//! context-switch macro-ops.
//!
//! Reads/writes the front half of [`Pipeline`]: `fetch_pc`,
//! `fetch_resume_at`, `fetch_halted`, `btb`, `ras`, `predictor`,
//! `confidence`, `bq`, `tq`, `front_q`, `icache`, `front_block`. The only
//! backend state it touches is via `macro_queue_op` (drained pipeline by
//! construction).

use crate::cfd_queues::{FetchBq, FetchTq};
use crate::config::{BqMissPolicy, CheckpointPolicy};
use crate::core::CoreError;
use crate::host::MemoryHost;
use crate::pipeline::{DynInst, Pipeline, Snapshot};
use crate::rename::VqRenamer;
use cfd_isa::Instr;
use cfd_obs::CpiComponent;
use cfd_predictor::{BranchKind, BtbEntry};

/// Result of fetching one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStop {
    Continue,
    BundleEnd,
    Bubble,
    Halt,
}

impl Pipeline {
    fn front_cap(&self) -> usize {
        (self.cfg.front_depth as usize + 2) * self.cfg.width
    }

    pub(crate) fn fetch(&mut self) -> Result<(), CoreError> {
        if self.fetch_halted || self.now < self.fetch_resume_at {
            return Ok(());
        }
        let mut fetched = 0;
        while fetched < self.cfg.width && self.front_q.len() < self.front_cap() {
            let pc = self.fetch_pc;
            let Some(instr) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the program: wait for recovery.
                return Ok(());
            };

            // Queue-full stalls (§III-C3).
            match instr {
                Instr::PushBq { .. } if self.bq.push_would_stall() => {
                    self.stats.bq_push_stall_cycles += 1;
                    self.front_block = CpiComponent::CfdStall;
                    return Ok(());
                }
                Instr::PushTq { .. } if self.tq.push_would_stall() => {
                    self.stats.tq_push_stall_cycles += 1;
                    self.front_block = CpiComponent::CfdStall;
                    return Ok(());
                }
                // Context-switch macro-ops drain the pipeline first.
                Instr::SaveBq { .. }
                | Instr::RestoreBq { .. }
                | Instr::SaveVq { .. }
                | Instr::RestoreVq { .. }
                | Instr::SaveTq { .. }
                | Instr::RestoreTq { .. }
                    if (!self.rob.is_empty() || !self.front_q.is_empty()) =>
                {
                    self.front_block = CpiComponent::Frontend;
                    return Ok(());
                }
                _ => {}
            }
            // TQ miss stalls fetch (§IV-C3).
            if matches!(instr, Instr::PopTq | Instr::PopTqBrOvf { .. }) && self.tq.pop_would_miss() {
                self.stats.tq_miss_stall_cycles += 1;
                self.front_block = CpiComponent::CfdStall;
                return Ok(());
            }
            // BQ miss stalls fetch under the stall policy (Fig. 21c).
            if self.bq_stall_precheck(&instr) {
                self.stats.bq_miss_stall_cycles += 1;
                self.front_block = CpiComponent::CfdStall;
                return Ok(());
            }

            // L1I probe: a miss bubbles fetch for the L2 latency.
            if self.cfg.model_icache && !self.mem.fetch_probe(pc as u64 * 4) {
                self.stats.icache_misses += 1;
                self.fetch_resume_at = self.now + self.cfg.hierarchy.l2_latency as u64;
                self.front_block = CpiComponent::Frontend;
                return Ok(());
            }
            let seq = self.next_seq;
            let was_diverged = self.diverged_at.is_some();
            let stop = self.fetch_instr(seq, pc, instr)?;
            self.next_seq += 1;
            fetched += 1;
            self.stats.fetched += 1;
            self.events.fetched += 1;
            if was_diverged {
                self.stats.wrong_path_fetched += 1;
            }
            match stop {
                FetchStop::Continue => {}
                FetchStop::BundleEnd => break,
                FetchStop::Bubble => {
                    self.fetch_resume_at = self.now + 2;
                    self.front_block = CpiComponent::Frontend;
                    break;
                }
                FetchStop::Halt => {
                    self.fetch_halted = true;
                    break;
                }
            }
        }
        if fetched > 0 {
            // Fetch supplied instructions this cycle: any subsequent
            // empty-ROB cycles are plain pipeline fill until something
            // blocks again.
            self.front_block = CpiComponent::Frontend;
        }
        Ok(())
    }

    /// Fetches one instruction: resolves/predicts control, steps the fetch
    /// oracle, and enqueues the `DynInst`.
    fn fetch_instr(&mut self, seq: u64, pc: u32, instr: Instr) -> Result<FetchStop, CoreError> {
        let on_wrong_path = self.diverged_at.is_some();
        let mut e = DynInst::new(seq, pc, instr, self.now + self.cfg.front_depth as u64, on_wrong_path);
        e.t_fetch = self.now;
        let mut next_pc = pc + 1;
        let mut stop = FetchStop::Continue;
        let mut is_taken_control = false;

        // Step the fetch oracle along the correct path.
        let oracle_ev = if self.diverged_at.is_none() {
            debug_assert_eq!(self.fetch_oracle.pc(), pc, "fetch oracle out of sync");
            let mut ev = None;
            let mut sink = |r: &cfd_isa::RetireEvent| ev = Some(*r);
            self.fetch_oracle.step(&mut sink).map_err(|err| CoreError::Program(err.to_string()))?;
            ev
        } else {
            None
        };

        match instr {
            Instr::Branch { target, .. } => {
                let dir = if self.cfg.perfect.covers(pc) {
                    if let Some(ev) = &oracle_ev {
                        ev.taken.expect("branch has outcome")
                    } else {
                        // Wrong path: the oracle cannot help; fall back.
                        let (d, meta) = self.predictor.predict(Self::bpc(pc));
                        e.pred_meta = Some(meta);
                        d
                    }
                } else {
                    let (d, meta) = self.predictor.predict(Self::bpc(pc));
                    e.pred_meta = Some(meta);
                    d
                };
                // Fault injection: an inverted prediction must be masked by
                // the normal misprediction-recovery machinery.
                let dir = dir
                    ^ (self.fault_at(crate::fault::FaultSite::PredictorPredict)
                        == Some(crate::fault::FaultKind::PredictorFlip));
                self.events.bpred_ops += 1;
                e.fetch_taken = Some(dir);
                e.fetch_target = target;
                e.snapshot = Some(Box::new(self.take_snapshot()));
                self.maybe_checkpoint(&mut e, pc);
                if dir {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::Jump { target } | Instr::Jal { target, .. } => {
                if let Instr::Jal { .. } = instr {
                    self.ras.push(pc + 1);
                }
                next_pc = target;
                is_taken_control = true;
            }
            Instr::Jr { .. } => {
                let predicted = self.ras.pop();
                e.fetch_target = predicted;
                e.snapshot = Some(Box::new(self.take_snapshot()));
                self.maybe_checkpoint(&mut e, pc);
                next_pc = predicted;
                is_taken_control = true;
            }
            Instr::PushBq { .. } => {
                e.bq_abs = Some(self.bq.fetch_push());
                if self.trace {
                    eprintln!("[{}] FETCH_PUSH seq={} abs={:?}", self.now, seq, e.bq_abs);
                }
                self.events.bq_ops += 1;
            }
            Instr::BranchOnBq { target } => {
                self.events.bq_ops += 1;
                let (abs, pred) = self.bq.fetch_pop();
                e.bq_abs = Some(abs);
                let dir = match pred {
                    Some(p) => {
                        // Early push: timely, non-speculative branching.
                        self.stats.bq_hits += 1;
                        !p
                    }
                    None => {
                        // BQ miss.
                        self.stats.bq_misses += 1;
                        match self.cfg.bq_miss_policy {
                            BqMissPolicy::Stall => {
                                // Pre-checked in fetch(); a miss never
                                // reaches this point under the stall policy.
                                unreachable!("BQ stall is pre-checked in fetch()")
                            }
                            BqMissPolicy::Speculate => {
                                let predicted_pred =
                                    if let (true, Some(ev)) = (self.cfg.perfect.covers(pc), oracle_ev.as_ref()) {
                                        // ev.taken is the pop direction (= !predicate)
                                        !ev.taken.expect("pop outcome")
                                    } else {
                                        // The predictor predicts the pop's *taken
                                        // direction*; the predicate is its
                                        // complement (taken = !predicate under the
                                        // skip-if-false idiom). Training and
                                        // recovery also use the taken domain.
                                        let (d, meta) = self.predictor.predict(Self::bpc(pc));
                                        e.pred_meta = Some(meta);
                                        self.events.bpred_ops += 1;
                                        !d
                                    };
                                // Fault injection: a flipped speculative-pop
                                // prediction must be caught by late-push
                                // verification.
                                let predicted_pred = predicted_pred
                                    ^ (self.fault_at(crate::fault::FaultSite::PredictorPredict)
                                        == Some(crate::fault::FaultKind::PredictorFlip));
                                if self.trace {
                                    eprintln!(
                                        "[{}] SPEC_POP seq={} abs={} pred={}",
                                        self.now, seq, abs, predicted_pred
                                    );
                                }
                                e.spec_pop = true;
                                if abs < self.bq.tail {
                                    // A push owns this entry: link for late-push
                                    // verification.
                                    self.bq.record_spec_pop(abs, predicted_pred, seq);
                                    e.verified = false;
                                } else {
                                    // No push was ever fetched for this pop, so
                                    // the ISA ordering rules place it on the
                                    // wrong path: speculate without recording
                                    // (recording would clobber a live slot).
                                    // It retires only if the program is buggy,
                                    // which the retirement oracle flags.
                                }
                                e.snapshot = Some(Box::new(self.take_snapshot()));
                                self.maybe_checkpoint(&mut e, pc);
                                !predicted_pred
                            }
                        }
                    }
                };
                e.fetch_taken = Some(dir);
                e.fetch_target = target;
                if dir {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::MarkBq => {
                self.bq.fetch_mark();
                self.events.bq_ops += 1;
            }
            Instr::ForwardBq => {
                self.bq.fetch_forward();
                self.events.bq_ops += 1;
            }
            Instr::PushTq { .. } => {
                e.tq_abs = Some(self.tq.fetch_push());
                self.events.tq_ops += 1;
            }
            Instr::PopTq => {
                let (abs, ovf) = self.tq.fetch_pop();
                debug_assert!(ovf.is_some(), "TQ miss pre-checked in fetch()");
                e.tq_abs = Some(abs);
                e.tq_loaded_tcr = self.tq.tcr;
                self.stats.tq_hits += 1;
                self.events.tq_ops += 1;
            }
            Instr::PopTqBrOvf { target } => {
                let (abs, ovf) = self.tq.fetch_pop();
                let overflow = ovf.expect("TQ miss pre-checked in fetch()");
                e.tq_abs = Some(abs);
                e.tq_loaded_tcr = self.tq.tcr;
                e.fetch_taken = Some(overflow);
                e.fetch_target = target;
                self.stats.tq_hits += 1;
                self.events.tq_ops += 1;
                if overflow {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::BranchOnTcr { target } => {
                let cont = self.tq.fetch_branch_on_tcr();
                e.fetch_taken = Some(cont);
                e.fetch_target = target;
                self.events.tq_ops += 1;
                if cont {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::Halt => {
                stop = FetchStop::Halt;
            }
            Instr::SaveBq { .. }
            | Instr::RestoreBq { .. }
            | Instr::SaveVq { .. }
            | Instr::RestoreVq { .. }
            | Instr::SaveTq { .. }
            | Instr::RestoreTq { .. } => {
                self.macro_queue_op(&mut e, &oracle_ev);
            }
            _ => {}
        }

        // Divergence detection against the fetch oracle.
        if let Some(ev) = &oracle_ev {
            let actually_next = ev.next_pc;
            if next_pc != actually_next && self.diverged_at.is_none() {
                self.diverged_at = Some(seq);
                if self.trace {
                    eprintln!(
                        "[{}] DIVERGE seq={} pc={} `{}` chose next={} oracle next={}",
                        self.now, seq, pc, instr, next_pc, actually_next
                    );
                }
            }
        }

        // BTB modeling: taken control instructions missing from the BTB pay
        // a one-cycle misfetch bubble.
        if instr.is_control() {
            let hit = self.btb.lookup(pc as u64).is_some();
            if !hit {
                self.btb.insert(
                    pc as u64,
                    BtbEntry {
                        target: instr.direct_target().unwrap_or(e.fetch_target),
                        kind: match instr {
                            Instr::Branch { .. } => BranchKind::Conditional,
                            Instr::BranchOnBq { .. } => BranchKind::CfdPop,
                            Instr::BranchOnTcr { .. } | Instr::PopTqBrOvf { .. } => BranchKind::CfdTcr,
                            Instr::Jr { .. } => BranchKind::Indirect,
                            _ => BranchKind::Unconditional,
                        },
                    },
                );
                if is_taken_control {
                    self.stats.btb_misfetches += 1;
                    stop = FetchStop::Bubble;
                }
            }
        }

        self.fetch_pc = next_pc;
        if is_taken_control && stop == FetchStop::Continue {
            stop = FetchStop::BundleEnd;
        }
        self.front_q.push_back(e);
        Ok(stop)
    }

    /// Pre-checks whether fetching `instr` would stall this cycle under the
    /// BQ-miss stall policy (the oracle must not step for a stalled fetch).
    fn bq_stall_precheck(&self, instr: &Instr) -> bool {
        matches!(instr, Instr::BranchOnBq { .. })
            && self.cfg.bq_miss_policy == BqMissPolicy::Stall
            && self.bq.pop_would_miss()
    }

    pub(crate) fn take_snapshot(&self) -> Snapshot {
        Snapshot { bq: self.bq.snapshot(), tq: self.tq.snapshot(), ras: self.ras.snapshot() }
    }

    fn maybe_checkpoint(&mut self, e: &mut DynInst, pc: u32) {
        let want = match self.cfg.checkpoint_policy {
            CheckpointPolicy::AllBranches => true,
            CheckpointPolicy::ConfidenceGuided => !self.confidence.is_confident(Self::bpc(pc)),
            CheckpointPolicy::None => false,
        };
        if want && self.checkpoints_free > 0 {
            self.checkpoints_free -= 1;
            e.has_checkpoint = true;
            self.stats.checkpoints_allocated += 1;
            self.events.checkpoint_ops += 1;
        } else if want {
            self.stats.checkpoints_denied += 1;
        } else {
            self.stats.checkpoints_unwanted += 1;
        }
    }

    /// Context-switch macro-ops (`Save_*`/`Restore_*`): the pipeline is
    /// drained (enforced by the caller); execute the operation through the
    /// fetch oracle and resynchronize the fetch-side queue structures.
    fn macro_queue_op(&mut self, e: &mut DynInst, oracle_ev: &Option<cfd_isa::RetireEvent>) {
        e.done = true;
        e.dispatched = true;
        e.ready_at = self.now;
        if oracle_ev.is_none() {
            // Wrong path: will be squashed; do nothing microarchitectural.
            return;
        }
        match e.instr {
            Instr::RestoreBq { .. } => {
                let contents = self.fetch_oracle.bq.contents();
                self.bq = FetchBq::new(self.cfg.bq_size);
                for (k, p) in contents.iter().enumerate() {
                    let abs = self.bq.fetch_push();
                    debug_assert_eq!(abs, k as u64);
                    self.bq.execute_push(abs, *p);
                    self.bq.retire_push();
                }
            }
            Instr::RestoreTq { .. } => {
                let contents = self.fetch_oracle.tq.contents();
                let tcr = self.fetch_oracle.tq.tcr();
                self.tq = FetchTq::new(self.cfg.tq_size, self.cfg.tq_trip_bits);
                for entry in contents {
                    let abs = self.tq.fetch_push();
                    let v = if entry.overflow { (self.tq.size() as i64) << 33 } else { entry.trip_count as i64 };
                    self.tq.execute_push(abs, v);
                    self.tq.retire_push();
                }
                self.tq.tcr = tcr;
                self.tq.committed_tcr = tcr;
            }
            Instr::RestoreVq { .. } => {
                // Free the physical registers still held by the old VQ's
                // live mappings (they are normally freed when their pops
                // retire, which will now never happen).
                while !self.vq.pop_would_underflow() {
                    let p = self.vq.rename_pop();
                    self.rename.free_phys(p);
                }
                let contents = self.fetch_oracle.vq.contents();
                self.vq = VqRenamer::new(self.cfg.vq_size);
                for v in contents {
                    // The pipeline is drained here, so at most vq_size live
                    // registers are needed; the PRF is sized well above that.
                    let p = self
                        .rename
                        .alloc_phys()
                        .expect("PRF exhausted during Restore_VQ; prf_size must exceed 32 + vq_size");
                    self.prf_write(p, v, self.now, None);
                    self.vq.rename_push(p);
                    self.vq.retire_push();
                }
            }
            _ => {}
        }
        // Timing: drained + serialized; charge a latency proportional to
        // the queue length by delaying fetch.
        self.fetch_resume_at = self.now + 4;
    }
}
