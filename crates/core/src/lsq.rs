//! Load/store disambiguation and store-to-load forwarding.
//!
//! Conservative disambiguation over `store_list` (in-flight stores in age
//! order): a load issues only when every older store has a computed
//! address; an exact-match older store with ready data forwards, a partial
//! overlap (or unready data) blocks the load until the store drains.

use crate::pipeline::Pipeline;
use crate::rename::Taint;
use cfd_isa::{Instr, MemWidth};

/// What a load sees when probing the older in-flight stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ForwardState {
    /// Load can read committed memory.
    Memory,
    /// Load forwards this in-flight store's value (with its data taint).
    Forward { data: i64, taint: Taint },
    /// Load must wait (unknown or partially overlapping older store).
    MustWait,
}

impl Pipeline {
    /// Whether the load at ROB index `i` may issue under conservative
    /// disambiguation.
    pub(crate) fn load_may_issue(&self, i: usize) -> bool {
        let Instr::Load { offset, width, .. } = self.rob[i].instr else { return true };
        let base = self.rob[i].psrc1.expect("load base renamed");
        if !self.rename.is_ready(base, self.now) {
            return false;
        }
        let addr = (self.rename.read(base) as u64).wrapping_add(offset as u64);
        !matches!(self.forwarding_probe(i, addr, width), ForwardState::MustWait)
    }

    fn forwarding_probe(&self, load_idx: usize, addr: u64, width: MemWidth) -> ForwardState {
        let lw = width.bytes();
        let mut result = ForwardState::Memory;
        let load_seq = self.rob[load_idx].rob_seq;
        for &sseq in &self.store_list {
            if sseq >= load_seq {
                break;
            }
            let Some(j) = self.rob_idx(sseq) else { continue };
            let s = &self.rob[j];
            if !s.issued {
                return ForwardState::MustWait; // unknown address
            }
            let saddr = s.eff_addr.expect("issued store has address");
            let sw = match s.instr {
                Instr::Store { width, .. } => width.bytes(),
                _ => unreachable!(),
            };
            // Overlap test.
            if saddr < addr.wrapping_add(lw) && addr < saddr.wrapping_add(sw) {
                if saddr == addr && lw <= sw {
                    // Forward only once the store's data is available.
                    let data_src = s.psrc2.expect("store has a data source");
                    if self.rename.is_ready(data_src, self.now) {
                        result = ForwardState::Forward {
                            data: self.rename.read(data_src),
                            taint: self.rename.taint(data_src),
                        };
                    } else {
                        return ForwardState::MustWait; // data not produced yet
                    }
                } else {
                    return ForwardState::MustWait; // partial overlap
                }
            }
        }
        result
    }

    pub(crate) fn forwarding_source(&self, load_idx: usize, addr: u64, width: MemWidth) -> ForwardState {
        self.forwarding_probe(load_idx, addr, width)
    }
}
