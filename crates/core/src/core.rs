//! The public core API and the per-cycle conductor.
//!
//! A faithful-but-compact execute-at-execute pipeline:
//!
//! * **Fetch** ([`crate::frontend`]) — BTB + direction predictor; the BQ,
//!   TQ and TCR live here and resolve `Branch_on_BQ` / `Branch_on_TCR`
//!   non-speculatively when their producers have executed (the paper's
//!   central mechanism). BQ misses either speculate (verified by the late
//!   push) or stall.
//! * **Front pipe** — `front_depth` cycles of decode/rename delay, giving
//!   the configured minimum fetch-to-execute latency.
//! * **Rename/Dispatch** ([`crate::dispatch`]) — RMT + freelist + VQ
//!   renamer; ROB/IQ/LSQ allocation; branch snapshots and
//!   (confidence-guided) checkpoints.
//! * **Issue/Execute** ([`crate::scheduler`], [`crate::lsq`]) —
//!   oldest-first select over FU classes, driven by event-driven wakeup
//!   (no per-cycle IQ polling); values are computed at issue and become
//!   visible at `ready_at`; loads access the cache hierarchy with
//!   store-to-load forwarding.
//! * **Commit** ([`crate::commit`]) — in-order retirement verified against
//!   a functional oracle; predictor training; committed CFD-queue state.
//!
//! Two functional `Machine`s accompany the pipeline: one steps at *fetch*
//! (providing perfect predictions where configured and detecting the exact
//! instruction where fetch diverges onto the wrong path) and one at
//! *retire* (its memory image is the committed memory the backend loads
//! from; it also cross-checks the retired stream instruction by
//! instruction).
//!
//! The stage logic lives in the modules above, each an `impl` block on the
//! shared [`Pipeline`](crate::pipeline::Pipeline) state struct; the step
//! loop that sequences the stages (commit → complete → issue → dispatch →
//! fetch) lives in [`crate::kernel`]. This module owns the public [`Core`]
//! wrapper — whose entry points all pump that one kernel loop — and report
//! finalization.

use crate::config::CoreConfig;
use crate::fault::{FailureReport, FaultSpec};
use crate::host::{ControlPort, FaultHost, FaultPort, MemoryHost, TelemetryHost, TelemetryPort};
use crate::kernel::{KernelEvent, NullClock};
use crate::pipeline::Pipeline;
use crate::stats::RunReport;
use crate::trace::PipeTrace;
use cfd_isa::{MemImage, Program};
use cfd_obs::TelemetryConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cooperative cancellation handle for a running simulation.
///
/// A campaign supervisor holds one clone of the token while the
/// simulation thread holds another; the step loop checks it every cycle,
/// so even a pathological simulation that never retires (or a buggy stage
/// that stops making architectural progress) can be stopped without
/// killing the host thread. Two trip conditions:
///
/// * a **cycle budget** ([`CancelToken::with_budget`]) — deterministic:
///   the run fails with [`CoreError::Cancelled`] at exactly the first
///   cycle `>= budget`, independent of host timing or worker count;
/// * an **external cancel** ([`CancelToken::cancel`]) — a wall-clock
///   watchdog's last resort for a truly hung job; inherently
///   host-timing-dependent, so campaign verdicts must not depend on the
///   cycle it fires at.
///
/// The sim loop also publishes its current cycle through the token
/// ([`CancelToken::progress`]), which is what lets a supervisor
/// distinguish "slow but advancing" from "hung".
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelShared>,
}

#[derive(Debug, Default)]
struct CancelShared {
    cancelled: AtomicBool,
    /// Cycle budget; 0 means unlimited.
    budget: AtomicU64,
    /// Last cycle the sim loop reported.
    progress: AtomicU64,
}

impl CancelToken {
    /// A token with no budget: only [`CancelToken::cancel`] can trip it.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that deterministically cancels the run at the first cycle
    /// `>= budget` (0 means unlimited).
    pub fn with_budget(budget: u64) -> CancelToken {
        let t = CancelToken::default();
        t.inner.budget.store(budget, Ordering::Relaxed);
        t
    }

    /// Requests cancellation; the sim loop honours it within a bounded
    /// number of cycles.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The configured cycle budget, if any.
    pub fn budget(&self) -> Option<u64> {
        match self.inner.budget.load(Ordering::Relaxed) {
            0 => None,
            b => Some(b),
        }
    }

    /// The simulated cycle the sim loop most recently reported — the
    /// heartbeat a wall-clock watchdog monitors for forward progress.
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }

    pub(crate) fn note(&self, cycle: u64) {
        self.inner.progress.store(cycle, Ordering::Relaxed);
    }
}

/// A simulation failure (simulator bug or runaway program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The core configuration is invalid (e.g. an unknown predictor name).
    Config(String),
    /// The cycle limit was reached before `Halt` retired.
    CycleLimit(u64),
    /// The run was stopped through a [`CancelToken`]: deterministically
    /// by its cycle budget (`budget` is `Some`), or cooperatively by an
    /// external [`CancelToken::cancel`] call (`budget` is `None`).
    Cancelled {
        /// Cycle at which the cancellation was honoured.
        cycle: u64,
        /// The exhausted cycle budget, when the budget tripped it.
        budget: Option<u64>,
    },
    /// The retired stream diverged from the functional oracle.
    OracleMismatch {
        /// Retired sequence number.
        seq: u64,
        /// PC the core retired.
        core_pc: u32,
        /// PC the oracle expected.
        oracle_pc: u32,
    },
    /// The functional oracle itself faulted (program bug).
    Program(String),
    /// No instruction retired for a long interval (simulator deadlock).
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Human-readable pipeline state dump.
        state: String,
    },
    /// A checkpoint failed validation on restore (version mismatch or
    /// state-digest mismatch; see [`Checkpoint`](crate::Checkpoint)).
    Checkpoint(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Config(e) => write!(f, "invalid core configuration: {e}"),
            CoreError::CycleLimit(n) => write!(f, "cycle limit {n} reached before halt"),
            CoreError::Cancelled { cycle, budget: Some(b) } => {
                write!(f, "cycle budget {b} exhausted at cycle {cycle}")
            }
            CoreError::Cancelled { cycle, budget: None } => write!(f, "cancelled externally at cycle {cycle}"),
            CoreError::OracleMismatch { seq, core_pc, oracle_pc } => {
                write!(f, "retired pc {core_pc} at seq {seq}, oracle expected {oracle_pc}")
            }
            CoreError::Program(e) => write!(f, "program error: {e}"),
            CoreError::Deadlock { cycle, state } => write!(f, "deadlock at cycle {cycle}: {state}"),
            CoreError::Checkpoint(e) => write!(f, "invalid checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The out-of-order core.
pub struct Core {
    pub(crate) p: Pipeline,
}

impl Core {
    /// Builds a core over `program` and an initial memory image.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if the configured predictor name is unknown
    /// or a structural parameter is out of range.
    pub fn new(cfg: CoreConfig, program: Program, mem: MemImage) -> Result<Core, CoreError> {
        Ok(Core { p: Pipeline::new(cfg, program, mem)? })
    }

    /// Enables pipeline tracing for the first `limit` fetched instructions
    /// (see [`PipeTrace`]); the trace is returned in the [`RunReport`].
    #[must_use]
    pub fn with_pipe_trace(mut self, limit: usize) -> Self {
        self.p.pipe_trace = Some(PipeTrace::new(limit));
        self
    }

    /// Arms one deterministic fault injection (see [`crate::fault`]).
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.p.fault = FaultPort::armed_with(spec);
        self
    }

    /// Arms cooperative cancellation: the step loop checks `token` every
    /// cycle and fails with [`CoreError::Cancelled`] when its budget is
    /// exhausted or [`CancelToken::cancel`] was called. With no token (the
    /// default) the loop pays nothing.
    #[must_use]
    pub fn with_cancellation(mut self, token: CancelToken) -> Self {
        self.p.control = ControlPort::engaged(token);
        self
    }

    /// Arms telemetry: the metrics registry, interval time-series sampling
    /// and (per `cfg.trace`) the pipeline event trace. The artifacts come
    /// back in [`RunReport::telemetry`]. Telemetry only observes
    /// microarchitectural state — it never changes simulated timing, so
    /// every other report field is byte-identical with or without it.
    #[must_use]
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.p.telem = TelemetryPort::armed_with(cfg);
        self
    }

    /// Runs until `Halt` retires or `cycle_limit` elapses.
    ///
    /// # Errors
    ///
    /// [`CoreError::CycleLimit`] on a runaway simulation,
    /// [`CoreError::OracleMismatch`]/[`CoreError::Program`] on internal
    /// verification failures (these indicate simulator or program bugs).
    pub fn run(mut self, cycle_limit: u64) -> Result<RunReport, CoreError> {
        loop {
            if let KernelEvent::Halted { .. } = self.p.pump(cycle_limit, &mut NullClock)? {
                return Ok(self.into_report());
            }
        }
    }

    /// Like [`Core::run`], but a failure carries full post-mortem
    /// diagnostics: the typed error, the final pipeline state, the
    /// per-cycle snapshot ring (when `post_mortem_depth > 0`), and the
    /// injected fault's record when one fired.
    ///
    /// # Errors
    ///
    /// A boxed [`FailureReport`] wrapping the same [`CoreError`]s as
    /// [`Core::run`].
    pub fn run_diag(mut self, cycle_limit: u64) -> Result<RunReport, Box<FailureReport>> {
        let outcome = loop {
            match self.p.pump(cycle_limit, &mut NullClock) {
                Ok(KernelEvent::Halted { .. }) => break Ok(()),
                Ok(_) => continue,
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok(()) => Ok(self.into_report()),
            Err(error) => {
                let mut post_mortem = format!(
                    "final state: {}\nlast {} cycles:\n",
                    self.p.dump_state(),
                    self.p.snap_ring.snaps().count()
                );
                post_mortem.push_str(&self.p.snap_ring.render());
                let injection = self.p.fault.fired_record();
                let telemetry = self.p.telem.take_report();
                Err(Box::new(FailureReport { error, post_mortem, injection, telemetry }))
            }
        }
    }

    /// Like [`Core::run`], but attributes host wall time to the five
    /// stage groups and returns the [`StageProfile`](crate::StageProfile)
    /// next to the report. It drives the same kernel step loop as
    /// [`Core::run`] with the profiling stage clock;
    /// timing is host-side observability only: the report is
    /// byte-identical to what [`Core::run`] produces for the same inputs.
    /// Only available with the `stage-profile` feature.
    ///
    /// # Errors
    ///
    /// The same [`CoreError`]s as [`Core::run`].
    #[cfg(feature = "stage-profile")]
    pub fn run_profiled(
        mut self,
        cycle_limit: u64,
    ) -> Result<(RunReport, crate::stage_profile::StageProfile), CoreError> {
        let mut profile = crate::stage_profile::StageProfile::default();
        {
            let mut clock = crate::kernel::ProfClock::new(&mut profile);
            loop {
                if let KernelEvent::Halted { .. } = self.p.pump(cycle_limit, &mut clock)? {
                    break;
                }
            }
        }
        profile.cycles = self.p.now;
        profile.sched_ready_checks = self.p.sched_ready_checks;
        profile.sched_wakeup_events = self.p.sched_wakeup_events;
        profile.sched_poll_equiv = self.p.sched_poll_equiv;
        Ok((self.into_report(), profile))
    }

    /// Finalizes counters and packages the report (successful runs only).
    pub(crate) fn into_report(self) -> RunReport {
        let mut p = self.p;
        p.mem.advance(p.now);
        p.stats.cycles = p.now;
        p.events.cycles = p.now;
        debug_assert!(
            p.stats.cpi_stack().check(p.stats.cycles, p.cfg.width as u64).is_ok(),
            "{}",
            p.stats.cpi_stack().check(p.stats.cycles, p.cfg.width as u64).err().unwrap_or_default()
        );
        // Final time-series row at the true end-of-run cycle (captures the
        // retirements of the halting cycle), unless one landed there.
        p.final_sample();
        let (l1, l2, l3) = p.mem.cache_stats();
        p.events.l1d_accesses = l1.accesses;
        p.events.l2_accesses = l2.accesses;
        p.events.l3_accesses = l3.accesses;
        p.events.dram_accesses = p.mem.level_counts()[3];
        p.events.btb_ops = p.btb.lookups;
        if p.telem.armed() {
            // Mirror the headline aggregates into the registry so its
            // rendering is self-contained.
            p.telem.counter_add("core.cycles", p.stats.cycles);
            p.telem.counter_add("core.retired", p.stats.retired);
            p.telem.counter_add("core.fetched", p.stats.fetched);
            p.telem.counter_add("core.mispredictions", p.stats.mispredictions);
            p.telem.counter_add("core.retired_branches", p.stats.retired_branches);
            // Scheduler-efficiency counters: readiness checks the
            // event-driven scheduler actually performed, wakeup events it
            // processed, and what a per-cycle polling scheduler would have
            // scanned (`iq_count` summed over cycles). Host-side
            // observability only — they never feed back into timing.
            p.telem.counter_add("sched.ready_checks", p.sched_ready_checks);
            p.telem.counter_add("sched.wakeup_events", p.sched_wakeup_events);
            p.telem.counter_add("sched.poll_equiv", p.sched_poll_equiv);
        }
        let telemetry = p.telem.take_report();
        RunReport {
            stats: p.stats,
            events: p.events,
            cache_stats: (l1, l2, l3),
            mshr_histogram: p.mem.mshr_histogram().to_vec(),
            level_counts: p.mem.level_counts(),
            pipe_trace: p.pipe_trace,
            injection: p.fault.fired_record(),
            telemetry,
        }
    }
}
