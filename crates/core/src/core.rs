//! The cycle-level out-of-order core with CFD support.
//!
//! A faithful-but-compact execute-at-execute pipeline:
//!
//! * **Fetch** — BTB + direction predictor; the BQ, TQ and TCR live here
//!   and resolve `Branch_on_BQ` / `Branch_on_TCR` non-speculatively when
//!   their producers have executed (the paper's central mechanism). BQ
//!   misses either speculate (verified by the late push) or stall.
//! * **Front pipe** — `front_depth` cycles of decode/rename delay, giving
//!   the configured minimum fetch-to-execute latency.
//! * **Rename/Dispatch** — RMT + freelist + VQ renamer; ROB/IQ/LSQ
//!   allocation; branch snapshots and (confidence-guided) checkpoints.
//! * **Issue/Execute** — oldest-first select over FU classes; values are
//!   computed at issue and become visible at `ready_at`; loads access the
//!   cache hierarchy with store-to-load forwarding.
//! * **Commit** — in-order retirement verified against a functional oracle;
//!   predictor training; committed CFD-queue state.
//!
//! Two functional `Machine`s accompany the pipeline: one steps at *fetch*
//! (providing perfect predictions where configured and detecting the exact
//! instruction where fetch diverges onto the wrong path) and one at
//! *retire* (its memory image is the committed memory the backend loads
//! from; it also cross-checks the retired stream instruction by
//! instruction).

use crate::cfd_queues::{BqSnapshot, FetchBq, FetchTq, TqSnapshot};
use crate::config::{BqMissPolicy, CheckpointPolicy, CoreConfig};
use crate::fault::{FailureReport, FaultKind, FaultSite, FaultSpec, FaultState};
use crate::rename::{join_taint, PhysReg, RenameState, Taint, VqRenamer};
use crate::stats::{level_index, CoreStats, RunReport};
use crate::trace::{CycleSnap, PipeEvent, PipeTrace, SnapRing};
use cfd_energy::EventCounts;
use cfd_isa::{eval_alu, eval_branch, Instr, Machine, MemImage, MemWidth, NullSink, Program, QueueConfig, Src2};
use cfd_mem::{Cache, CacheConfig, Hierarchy, MemLevel};
use cfd_obs::{CpiComponent, MetricsRegistry, TelemetryConfig, TelemetryReport, TimeSeries, TraceLog};
use cfd_predictor::{
    predictor_by_name, BranchKind, Btb, BtbEntry, ConfidenceEstimator, DirectionPredictor, PredMeta, Ras, RasSnapshot,
};
use std::collections::VecDeque;

/// Recovery snapshot attached to instructions that can mispredict.
/// (The VQ renamer is a rename-stage structure repaired by the squash walk,
/// so no VQ pointers are snapshotted here.)
#[derive(Debug, Clone)]
struct Snapshot {
    bq: BqSnapshot,
    tq: TqSnapshot,
    ras: RasSnapshot,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
struct DynInst {
    seq: u64,
    /// Dense ROB ordinal assigned at dispatch (fetch seqs have gaps when
    /// the front pipe is squashed; ROB indexing needs contiguity).
    rob_seq: u64,
    pc: u32,
    instr: Instr,
    /// Cycle at which the instruction may dispatch (front-pipe delay).
    dispatch_at: u64,
    /// Fetched while fetch was known to be on the wrong path.
    on_wrong_path: bool,
    /// Direction chosen at fetch for conditional control.
    fetch_taken: Option<bool>,
    /// Predicted target for indirect jumps.
    fetch_target: u32,
    /// Predictor metadata (plain branches and speculative pops).
    pred_meta: Option<PredMeta>,
    /// This `Branch_on_BQ` was resolved speculatively (BQ miss).
    spec_pop: bool,
    /// Speculative pop verified by its push.
    verified: bool,
    /// BQ absolute index (pushes and pops).
    bq_abs: Option<u64>,
    /// TQ absolute index (pushes and pops).
    tq_abs: Option<u64>,
    /// TCR value loaded by a `Pop_TQ` at fetch.
    tq_loaded_tcr: u32,
    /// Recovery snapshot.
    snapshot: Option<Box<Snapshot>>,
    has_checkpoint: bool,
    // Rename results.
    pdest: Option<PhysReg>,
    /// Previous mapping of the destination (RMT-updating instructions).
    prev_phys: Option<PhysReg>,
    psrc1: Option<PhysReg>,
    psrc2: Option<PhysReg>,
    /// The VQ mapping a `Pop_VQ` frees at retirement. Normally equals
    /// `psrc1`; kept separate so the free list stays consistent when
    /// fault injection corrupts the operand mapping.
    vq_free: Option<PhysReg>,
    /// Occupies an IQ slot until issued.
    in_iq: bool,
    in_lsq: bool,
    dispatched: bool,
    issued: bool,
    done: bool,
    ready_at: u64,
    // Memory.
    eff_addr: Option<u64>,
    // Stage timestamps (pipeline tracing).
    t_fetch: u64,
    t_dispatch: u64,
    t_issue: u64,
    t_complete: u64,
    // Resolution.
    resolved_taken: Option<bool>,
    mispredict: bool,
    recover_at_retire: bool,
    taint: Taint,
}

impl DynInst {
    fn new(seq: u64, pc: u32, instr: Instr, dispatch_at: u64, on_wrong_path: bool) -> DynInst {
        DynInst {
            seq,
            rob_seq: 0,
            pc,
            instr,
            dispatch_at,
            on_wrong_path,
            fetch_taken: None,
            fetch_target: 0,
            pred_meta: None,
            spec_pop: false,
            verified: true,
            bq_abs: None,
            tq_abs: None,
            tq_loaded_tcr: 0,
            snapshot: None,
            has_checkpoint: false,
            pdest: None,
            prev_phys: None,
            psrc1: None,
            psrc2: None,
            vq_free: None,
            in_iq: false,
            in_lsq: false,
            dispatched: false,
            issued: false,
            done: false,
            ready_at: u64::MAX,
            eff_addr: None,
            t_fetch: 0,
            t_dispatch: 0,
            t_issue: 0,
            t_complete: 0,
            resolved_taken: None,
            mispredict: false,
            recover_at_retire: false,
            taint: None,
        }
    }

    /// Executes in the backend (needs an IQ slot and a function unit).
    fn needs_backend(&self) -> bool {
        match self.instr {
            Instr::Alu { .. }
            | Instr::Li { .. }
            | Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Prefetch { .. }
            | Instr::Branch { .. }
            | Instr::Jr { .. }
            | Instr::PushBq { .. }
            | Instr::PushVq { .. }
            | Instr::PopVq { .. }
            | Instr::PushTq { .. } => true,
            Instr::Jump { .. }
            | Instr::Jal { .. }
            | Instr::BranchOnBq { .. }
            | Instr::MarkBq
            | Instr::ForwardBq
            | Instr::PopTq
            | Instr::BranchOnTcr { .. }
            | Instr::PopTqBrOvf { .. }
            | Instr::Nop
            | Instr::Halt
            | Instr::SaveBq { .. }
            | Instr::RestoreBq { .. }
            | Instr::SaveVq { .. }
            | Instr::RestoreVq { .. }
            | Instr::SaveTq { .. }
            | Instr::RestoreTq { .. } => false,
        }
    }

    fn is_mem_op(&self) -> bool {
        matches!(self.instr, Instr::Load { .. } | Instr::Store { .. } | Instr::Prefetch { .. })
    }
}

/// Time-series schema: cumulative counters sampled every N cycles.
/// `cycle` stamps the row; everything else is cumulative-so-far, so rates
/// (IPC, miss ratios, predictor accuracy) are derived by differencing
/// adjacent rows.
const SERIES_COLUMNS: [&str; 27] = [
    "cycle",
    "retired",
    "fetched",
    "mispredictions",
    "retired_branches",
    "rob",
    "iq",
    "lsq",
    "front_q",
    "bq",
    "vq",
    "tq",
    "l1_accesses",
    "l1_hits",
    "l2_accesses",
    "l2_hits",
    "l3_accesses",
    "l3_hits",
    "cpi_base",
    "cpi_frontend",
    "cpi_mispredict",
    "cpi_cfd_stall",
    "cpi_mem_l1",
    "cpi_mem_l2",
    "cpi_mem_l3",
    "cpi_mem_dram",
    "cpi_backend",
];

/// Live telemetry attached to a run via [`Core::with_telemetry`].
struct TelemetryState {
    cfg: TelemetryConfig,
    registry: MetricsRegistry,
    series: TimeSeries,
    trace: TraceLog,
    /// Next cycle stamp at which to push a series row.
    next_sample: u64,
}

impl TelemetryState {
    fn new(cfg: TelemetryConfig) -> TelemetryState {
        TelemetryState {
            registry: MetricsRegistry::enabled(),
            series: TimeSeries::new(cfg.sample_interval, SERIES_COLUMNS.to_vec()),
            trace: if cfg.trace { TraceLog::enabled() } else { TraceLog::disabled() },
            next_sample: if cfg.sample_interval > 0 { cfg.sample_interval } else { u64::MAX },
            cfg,
        }
    }
}

/// A simulation failure (simulator bug or runaway program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The core configuration is invalid (e.g. an unknown predictor name).
    Config(String),
    /// The cycle limit was reached before `Halt` retired.
    CycleLimit(u64),
    /// The retired stream diverged from the functional oracle.
    OracleMismatch {
        /// Retired sequence number.
        seq: u64,
        /// PC the core retired.
        core_pc: u32,
        /// PC the oracle expected.
        oracle_pc: u32,
    },
    /// The functional oracle itself faulted (program bug).
    Program(String),
    /// No instruction retired for a long interval (simulator deadlock).
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Human-readable pipeline state dump.
        state: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Config(e) => write!(f, "invalid core configuration: {e}"),
            CoreError::CycleLimit(n) => write!(f, "cycle limit {n} reached before halt"),
            CoreError::OracleMismatch { seq, core_pc, oracle_pc } => {
                write!(f, "retired pc {core_pc} at seq {seq}, oracle expected {oracle_pc}")
            }
            CoreError::Program(e) => write!(f, "program error: {e}"),
            CoreError::Deadlock { cycle, state } => write!(f, "deadlock at cycle {cycle}: {state}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    /// Retire-side oracle; its memory is the committed data memory.
    oracle: Machine,
    /// Fetch-side oracle (perfect prediction + divergence detection).
    fetch_oracle: Machine,
    /// Sequence number of the instruction where fetch diverged.
    diverged_at: Option<u64>,
    // Front end.
    fetch_pc: u32,
    fetch_resume_at: u64,
    fetch_halted: bool,
    btb: Btb,
    ras: Ras,
    predictor: Box<dyn DirectionPredictor>,
    confidence: ConfidenceEstimator,
    bq: FetchBq,
    tq: FetchTq,
    vq: VqRenamer,
    front_q: VecDeque<DynInst>,
    /// L1 instruction cache (tags only; instruction "addresses" are
    /// `pc * 4`).
    icache: Cache,
    // Back end.
    rename: RenameState,
    rob: VecDeque<DynInst>,
    /// Sequence numbers of dispatched-but-unissued backend instructions,
    /// in age order (the issue queue's contents).
    iq_list: Vec<u64>,
    /// Sequence numbers of issued-but-incomplete instructions.
    exec_list: Vec<u64>,
    /// Sequence numbers of in-flight stores, in age order.
    store_list: VecDeque<u64>,
    iq_count: usize,
    lsq_count: usize,
    checkpoints_free: usize,
    hier: Hierarchy,
    now: u64,
    next_seq: u64,
    next_rob_seq: u64,
    /// Event tracing enabled (CFD_TRACE env var, cached).
    trace: bool,
    halted: bool,
    stats: CoreStats,
    events: EventCounts,
    pipe_trace: Option<PipeTrace>,
    /// Armed fault injection, if any (see [`crate::fault`]).
    fault: Option<FaultState>,
    /// Post-mortem snapshot ring (empty unless `post_mortem_depth > 0`).
    snap_ring: SnapRing,
    /// Why fetch most recently failed to supply instructions: CPI-stack
    /// attribution for empty-ROB cycles outside misprediction refill.
    front_block: CpiComponent,
    /// A recovery squashed the ROB and the corrected path has not reached
    /// dispatch yet: empty-ROB cycles are misprediction penalty.
    refill_after_recovery: bool,
    /// Telemetry (registry/series/trace), when armed.
    telemetry: Option<Box<TelemetryState>>,
}

impl Core {
    /// Builds a core over `program` and an initial memory image.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if the configured predictor name is unknown
    /// or a structural parameter is out of range.
    pub fn new(cfg: CoreConfig, program: Program, mem: MemImage) -> Result<Core, CoreError> {
        if cfg.bq_size == 0 || cfg.vq_size == 0 || cfg.tq_size == 0 {
            return Err(CoreError::Config("queue sizes must be non-zero".into()));
        }
        let qc = QueueConfig {
            bq_size: cfg.bq_size,
            vq_size: cfg.vq_size,
            tq_size: cfg.tq_size,
            tq_trip_bits: cfg.tq_trip_bits,
        };
        let oracle = Machine::with_queues(program.clone(), mem, qc);
        let fetch_oracle = oracle.clone();
        let predictor = predictor_by_name(&cfg.predictor)
            .ok_or_else(|| CoreError::Config(format!("unknown predictor `{}`", cfg.predictor)))?;
        Ok(Core {
            program,
            oracle,
            fetch_oracle,
            diverged_at: None,
            fetch_pc: 0,
            fetch_resume_at: 0,
            fetch_halted: false,
            btb: Btb::new(10, 4),
            ras: Ras::new(16),
            predictor,
            confidence: ConfidenceEstimator::new(12, 15),
            bq: FetchBq::new(cfg.bq_size),
            tq: FetchTq::new(cfg.tq_size, cfg.tq_trip_bits),
            vq: VqRenamer::new(cfg.vq_size),
            front_q: VecDeque::new(),
            icache: Cache::new(CacheConfig { size_bytes: 32 * 1024, ways: 8, block_bits: 6 }),
            rename: RenameState::new(cfg.prf_size),
            rob: VecDeque::new(),
            iq_list: Vec::new(),
            exec_list: Vec::new(),
            store_list: VecDeque::new(),
            iq_count: 0,
            lsq_count: 0,
            checkpoints_free: cfg.n_checkpoints,
            hier: Hierarchy::new(cfg.hierarchy.clone()),
            now: 0,
            next_seq: 0,
            next_rob_seq: 0,
            trace: std::env::var_os("CFD_TRACE").is_some(),
            halted: false,
            stats: CoreStats::default(),
            events: EventCounts::default(),
            pipe_trace: None,
            fault: None,
            snap_ring: SnapRing::new(cfg.post_mortem_depth),
            front_block: CpiComponent::Frontend,
            refill_after_recovery: false,
            telemetry: None,
            cfg,
        })
    }

    /// Enables pipeline tracing for the first `limit` fetched instructions
    /// (see [`PipeTrace`]); the trace is returned in the [`RunReport`].
    #[must_use]
    pub fn with_pipe_trace(mut self, limit: usize) -> Self {
        self.pipe_trace = Some(PipeTrace::new(limit));
        self
    }

    /// Arms one deterministic fault injection (see [`crate::fault`]).
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(FaultState::new(spec));
        self
    }

    /// Arms telemetry: the metrics registry, interval time-series sampling
    /// and (per `cfg.trace`) the pipeline event trace. The artifacts come
    /// back in [`RunReport::telemetry`]. Telemetry only observes
    /// microarchitectural state — it never changes simulated timing, so
    /// every other report field is byte-identical with or without it.
    #[must_use]
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(Box::new(TelemetryState::new(cfg)));
        self
    }

    /// Runs until `Halt` retires or `cycle_limit` elapses.
    ///
    /// # Errors
    ///
    /// [`CoreError::CycleLimit`] on a runaway simulation,
    /// [`CoreError::OracleMismatch`]/[`CoreError::Program`] on internal
    /// verification failures (these indicate simulator or program bugs).
    pub fn run(mut self, cycle_limit: u64) -> Result<RunReport, CoreError> {
        match self.run_inner(cycle_limit) {
            Ok(()) => Ok(self.into_report()),
            Err(e) => Err(e),
        }
    }

    /// Like [`Core::run`], but a failure carries full post-mortem
    /// diagnostics: the typed error, the final pipeline state, the
    /// per-cycle snapshot ring (when `post_mortem_depth > 0`), and the
    /// injected fault's record when one fired.
    ///
    /// # Errors
    ///
    /// A boxed [`FailureReport`] wrapping the same [`CoreError`]s as
    /// [`Core::run`].
    pub fn run_diag(mut self, cycle_limit: u64) -> Result<RunReport, Box<FailureReport>> {
        match self.run_inner(cycle_limit) {
            Ok(()) => Ok(self.into_report()),
            Err(error) => {
                let mut post_mortem =
                    format!("final state: {}\nlast {} cycles:\n", self.dump_state(), self.snap_ring.snaps().count());
                post_mortem.push_str(&self.snap_ring.render());
                let injection = self.fault.as_ref().and_then(|f| f.fired().cloned());
                let telemetry = self
                    .telemetry
                    .take()
                    .map(|t| TelemetryReport { registry: t.registry, series: t.series, trace: t.trace });
                Err(Box::new(FailureReport { error, post_mortem, injection, telemetry }))
            }
        }
    }

    fn run_inner(&mut self, cycle_limit: u64) -> Result<(), CoreError> {
        let profile = std::env::var_os("CFD_PROF").is_some();
        let mut prof = [0u64; 5];
        let mut last_retired = (0u64, 0u64); // (cycle, count)
        while !self.halted {
            if self.now >= cycle_limit {
                return Err(CoreError::CycleLimit(cycle_limit));
            }
            if self.stats.retired != last_retired.1 {
                last_retired = (self.now, self.stats.retired);
            } else if self.now - last_retired.0 > self.cfg.watchdog_cycles {
                return Err(CoreError::Deadlock { cycle: self.now, state: self.dump_state() });
            }
            if self.cfg.post_mortem_depth > 0 {
                self.snap_ring.push(self.cycle_snap());
            }
            let retired_before = self.stats.retired;
            if profile {
                let t0 = std::time::Instant::now();
                self.commit()?;
                let t1 = std::time::Instant::now();
                if self.halted {
                    break;
                }
                self.complete();
                let t2 = std::time::Instant::now();
                self.issue();
                let t3 = std::time::Instant::now();
                self.dispatch();
                let t4 = std::time::Instant::now();
                self.fetch()?;
                let t5 = std::time::Instant::now();
                prof[0] += (t1 - t0).as_nanos() as u64;
                prof[1] += (t2 - t1).as_nanos() as u64;
                prof[2] += (t3 - t2).as_nanos() as u64;
                prof[3] += (t4 - t3).as_nanos() as u64;
                prof[4] += (t5 - t4).as_nanos() as u64;
            } else {
                self.commit()?;
                if self.halted {
                    break;
                }
                self.complete();
                self.issue();
                self.dispatch();
                self.fetch()?;
            }
            self.account_cycle(retired_before);
            self.now += 1;
        }
        if profile {
            eprintln!(
                "stage ns: commit={} complete={} issue={} dispatch={} fetch={}",
                prof[0], prof[1], prof[2], prof[3], prof[4]
            );
        }
        Ok(())
    }

    /// Finalizes counters and packages the report (successful runs only).
    fn into_report(mut self) -> RunReport {
        self.hier.advance(self.now);
        self.stats.cycles = self.now;
        self.events.cycles = self.now;
        debug_assert!(
            self.stats.cpi_stack().check(self.stats.cycles, self.cfg.width as u64).is_ok(),
            "{}",
            self.stats
                .cpi_stack()
                .check(self.stats.cycles, self.cfg.width as u64)
                .err()
                .unwrap_or_default()
        );
        // Final time-series row at the true end-of-run cycle (captures the
        // retirements of the halting cycle), unless one landed there.
        self.final_sample();
        let (l1, l2, l3) = self.hier.cache_stats();
        self.events.l1d_accesses = l1.accesses;
        self.events.l2_accesses = l2.accesses;
        self.events.l3_accesses = l3.accesses;
        self.events.dram_accesses = self.hier.level_counts[3];
        self.events.btb_ops = self.btb.lookups;
        let telemetry = self.telemetry.take().map(|mut t| {
            // Mirror the headline aggregates into the registry so its
            // rendering is self-contained.
            t.registry.counter_add("core.cycles", self.stats.cycles);
            t.registry.counter_add("core.retired", self.stats.retired);
            t.registry.counter_add("core.fetched", self.stats.fetched);
            t.registry.counter_add("core.mispredictions", self.stats.mispredictions);
            t.registry.counter_add("core.retired_branches", self.stats.retired_branches);
            TelemetryReport { registry: t.registry, series: t.series, trace: t.trace }
        });
        RunReport {
            stats: self.stats,
            events: self.events,
            cache_stats: (l1, l2, l3),
            mshr_histogram: self.hier.mshr_histogram().to_vec(),
            level_counts: self.hier.level_counts,
            pipe_trace: self.pipe_trace,
            injection: self.fault.as_ref().and_then(|f| f.fired().cloned()),
            telemetry,
        }
    }

    // ------------------------------------------------------------------
    // CPI-stack accounting + telemetry sampling
    // ------------------------------------------------------------------

    /// Attributes this cycle's `width` retire slots: one Base slot per
    /// instruction retired this cycle, all remaining slots to the single
    /// blocking cause [`Core::idle_cause`] identifies. Runs at the end of
    /// every counted cycle (the halting cycle is neither counted in
    /// `cycles` nor accounted here), so the components sum to exactly
    /// `cycles × width`.
    fn account_cycle(&mut self, retired_before: u64) {
        let width = self.cfg.width as u64;
        let r = (self.stats.retired - retired_before).min(width);
        self.stats.cpi_slots[CpiComponent::Base.index()] += r;
        let idle = width - r;
        if idle > 0 {
            let cause = self.idle_cause();
            self.stats.cpi_slots[cause.index()] += idle;
        }
        if self.telemetry.is_some() {
            self.sample_telemetry(self.now + 1, false);
        }
    }

    /// The single component charged for this cycle's idle retire slots,
    /// classified from the end-of-cycle ROB head (or its absence).
    fn idle_cause(&self) -> CpiComponent {
        if let Some(head) = self.rob.front() {
            // A resolved speculative BQ pop waiting for its late push.
            if head.done && !head.verified {
                return CpiComponent::CfdStall;
            }
            // A load in (or just out of) flight: charge the furthest
            // memory level feeding it.
            if matches!(head.instr, Instr::Load { .. }) && head.issued {
                match head.taint {
                    Some(MemLevel::L1) => return CpiComponent::MemL1,
                    Some(MemLevel::L2) => return CpiComponent::MemL2,
                    Some(MemLevel::L3) => return CpiComponent::MemL3,
                    Some(MemLevel::Mem) => return CpiComponent::MemDram,
                    None => {}
                }
            }
            CpiComponent::Backend
        } else if self.refill_after_recovery {
            CpiComponent::Mispredict
        } else {
            // Pipeline fill: whatever last blocked fetch (a CFD queue
            // stall or a plain front-end bubble).
            self.front_block
        }
    }

    /// Pushes one time-series row stamped `cycle` when due (or `force`d).
    fn sample_telemetry(&mut self, cycle: u64, force: bool) {
        let due = match &self.telemetry {
            Some(t) => t.cfg.sample_interval > 0 && (force || cycle >= t.next_sample),
            None => false,
        };
        if !due {
            return;
        }
        let (l1, l2, l3) = self.hier.cache_stats();
        let bq = self.bq.length();
        let vq = self.vq.length();
        let tq = self.tq.length();
        let rob = self.rob.len() as u64;
        let mut row = vec![
            cycle,
            self.stats.retired,
            self.stats.fetched,
            self.stats.mispredictions,
            self.stats.retired_branches,
            rob,
            self.iq_count as u64,
            self.lsq_count as u64,
            self.front_q.len() as u64,
            bq,
            vq,
            tq,
            l1.accesses,
            l1.hits,
            l2.accesses,
            l2.hits,
            l3.accesses,
            l3.hits,
        ];
        row.extend_from_slice(&self.stats.cpi_slots);
        let t = self.telemetry.as_mut().expect("checked above");
        t.series.push_row(row);
        let step = t.cfg.sample_interval.max(1);
        while t.next_sample <= cycle {
            t.next_sample += step;
        }
        if t.trace.is_enabled() {
            t.trace.counter(
                "occupancy",
                "pipe",
                cycle,
                0,
                vec![("bq", bq.into()), ("vq", vq.into()), ("tq", tq.into()), ("rob", rob.into())],
            );
        }
    }

    /// Final series row at end of run, skipped if sampling already landed
    /// exactly there.
    fn final_sample(&mut self) {
        let need = match &self.telemetry {
            Some(t) => {
                t.cfg.sample_interval > 0 && t.series.rows.last().is_none_or(|r| r[0] != self.now)
            }
            None => false,
        };
        if need {
            self.sample_telemetry(self.now, true);
        }
    }

    /// One post-mortem ring entry for the current cycle.
    fn cycle_snap(&self) -> CycleSnap {
        CycleSnap {
            cycle: self.now,
            fetch_pc: self.fetch_pc,
            retired: self.stats.retired,
            rob: self.rob.len(),
            iq: self.iq_count,
            lsq: self.lsq_count,
            front_q: self.front_q.len(),
            bq_len: self.bq.length(),
            tq_len: self.tq.length(),
            tcr: self.tq.tcr,
            free_regs: self.rename.free_regs(),
            ckpt_free: self.checkpoints_free,
        }
    }

    /// Visits a fault-injection site: returns the armed fault's kind when
    /// it fires at this visit (see [`crate::fault`]).
    fn fault_at(&mut self, site: FaultSite) -> Option<FaultKind> {
        let fired = self.fault.as_mut()?.visit(site, self.now);
        if let Some(kind) = fired {
            self.stats.faults_injected += 1;
            if let Some(t) = &mut self.telemetry {
                t.trace.instant(
                    "fault",
                    "fault",
                    self.now,
                    0,
                    0,
                    vec![("site", format!("{site:?}").into()), ("kind", format!("{kind:?}").into())],
                );
            }
        }
        fired
    }

    /// Whether the armed fault has fired by now (recovery attribution).
    fn fault_has_fired(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.fired().is_some())
    }

    /// Branch PC as presented to predictor structures: instruction indices
    /// are word-granular, but the predictor/confidence hash functions expect
    /// byte-granular PCs (`pc >> 2` etc.), so scale by 4 to avoid aliasing
    /// adjacent branches.
    #[inline]
    fn bpc(pc: u32) -> u64 {
        (pc as u64) << 2
    }

    /// ROB index of the instruction with dense ordinal `rob_seq`.
    #[inline]
    fn rob_idx(&self, rob_seq: u64) -> Option<usize> {
        let front = self.rob.front()?.rob_seq;
        let idx = rob_seq.checked_sub(front)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    /// Records a finished (retired or squashed) instruction into the trace.
    fn trace_record(&mut self, e: &DynInst, retired: Option<u64>) {
        if let Some(t) = &mut self.pipe_trace {
            if t.accepting() && e.seq < u64::MAX {
                t.record(PipeEvent {
                    seq: e.seq,
                    pc: e.pc,
                    disasm: e.instr.to_string(),
                    fetch: e.t_fetch,
                    dispatch: e.dispatched.then_some(e.t_dispatch),
                    issue: e.issued.then_some(e.t_issue),
                    complete: e.done.then_some(e.t_complete),
                    retire: retired,
                    squashed: retired.is_none(),
                });
            }
        }
    }

    /// One-line pipeline state summary for deadlock diagnostics.
    fn dump_state(&self) -> String {
        let head = self.rob.front().map(|e| {
            format!(
                "head seq={} pc={} `{}` disp={} issued={} done={} verified={} spec_pop={} bq_abs={:?}",
                e.seq, e.pc, e.instr, e.dispatched, e.issued, e.done, e.verified, e.spec_pop, e.bq_abs
            )
        });
        format!(
            "rob={} iq={} lsq={} front_q={} fetch_pc={} fetch_halted={} resume_at={} diverged={:?}              bq[h={} t={} net={} pend={}] tq[h={} t={} tcr={}] vq[h={} t={}] free_regs={} | {:?}",
            self.rob.len(),
            self.iq_count,
            self.lsq_count,
            self.front_q.len(),
            self.fetch_pc,
            self.fetch_halted,
            self.fetch_resume_at,
            self.diverged_at,
            self.bq.head,
            self.bq.tail,
            self.bq.net_push_ctr,
            self.bq.pending_push_ctr,
            self.tq.head,
            self.tq.tail,
            self.tq.tcr,
            self.vq.head,
            self.vq.tail,
            self.rename.free_regs(),
            head
        ) + &format!(
            " | front_head: {:?} vq_net={} vq_pend={} bq_len={} ckpt_free={}",
            self.front_q.front().map(|e| format!("seq={} pc={} `{}` disp_at={}", e.seq, e.pc, e.instr, e.dispatch_at)),
            self.vq.net_ctr,
            self.vq.pending_ctr,
            self.bq.length(),
            self.checkpoints_free
        )
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) -> Result<(), CoreError> {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else { return Ok(()) };
            if !head.dispatched || !head.done || !head.verified {
                return Ok(());
            }
            // Deferred (retirement-time) misprediction recovery.
            if head.mispredict && head.recover_at_retire {
                self.stats.retire_recoveries += 1;
                self.recover_at(0);
            }
            let mut e = self.rob.pop_front().expect("head exists");
            self.trace_record(&e, Some(self.now));

            // Oracle cross-check: the retired stream must match functional
            // execution exactly.
            if self.cfg.verify_retirement {
                let opc = self.oracle.pc();
                if opc != e.pc {
                    return Err(CoreError::OracleMismatch { seq: e.seq, core_pc: e.pc, oracle_pc: opc });
                }
            }
            self.oracle.step(&mut NullSink).map_err(|err| CoreError::Program(err.to_string()))?;

            // Architectural queue high-water marks, sampled on the committed
            // (oracle) state so speculation never inflates them. cfd-harden
            // checks these against the static bounds from cfd-lint.
            self.stats.max_bq_occupancy = self.stats.max_bq_occupancy.max(self.oracle.bq.len() as u64);
            self.stats.max_vq_occupancy = self.stats.max_vq_occupancy.max(self.oracle.vq.len() as u64);
            self.stats.max_tq_occupancy = self.stats.max_tq_occupancy.max(self.oracle.tq.len() as u64);
            // The registry gauges sample the same committed state at the
            // same point, so each gauge's high-water mark equals the
            // `max_*_occupancy` counter above by construction.
            if let Some(t) = &mut self.telemetry {
                t.registry.gauge_set("core.bq_occupancy", self.oracle.bq.len() as u64);
                t.registry.gauge_set("core.vq_occupancy", self.oracle.vq.len() as u64);
                t.registry.gauge_set("core.tq_occupancy", self.oracle.tq.len() as u64);
            }

            self.stats.retired += 1;
            self.events.rob_ops += 1;
            if e.in_lsq {
                self.lsq_count -= 1;
            }
            if let Some(prev) = e.prev_phys {
                self.rename.free_phys(prev);
            }
            match e.instr {
                Instr::PushBq { .. } => self.bq.retire_push(),
                Instr::BranchOnBq { .. } => {
                    self.bq.retire_pop();
                    self.events.bq_ops += 1;
                }
                Instr::MarkBq => self.bq.retire_mark(),
                Instr::ForwardBq => self.bq.retire_forward(),
                Instr::PushVq { .. } => self.vq.retire_push(),
                Instr::PopVq { .. } => {
                    self.vq.retire_pop();
                    // The push's physical register is freed when the pop
                    // that references it retires (§IV-B).
                    if let Some(p) = e.vq_free {
                        self.rename.free_phys(p);
                    }
                }
                Instr::PushTq { .. } => self.tq.retire_push(),
                Instr::PopTq | Instr::PopTqBrOvf { .. } => self.tq.retire_pop(e.tq_loaded_tcr),
                Instr::BranchOnTcr { .. } => {
                    if e.fetch_taken == Some(true) {
                        self.tq.retire_tcr_decrement();
                    }
                    self.events.tq_ops += 1;
                }
                Instr::Store { .. } => {
                    // The oracle step above performed the store on committed
                    // memory; charge the cache access here (store buffer
                    // drains at retirement). Under MSHR saturation the fill
                    // is dropped rather than retried — a deliberate
                    // store-buffer simplification: correctness lives in the
                    // oracle memory, and retirement never stalls on stores.
                    if let Some(addr) = e.eff_addr {
                        self.hier.access(e.pc as u64 * 4, addr, true, self.now);
                    }
                    debug_assert_eq!(self.store_list.front(), Some(&e.rob_seq));
                    self.store_list.pop_front();
                }
                Instr::Halt => {
                    self.halted = true;
                }
                _ => {}
            }

            // Branch bookkeeping + predictor training.
            if e.fetch_taken.is_some() || matches!(e.instr, Instr::Jr { .. }) {
                self.retire_branch(&mut e);
            }
            if e.has_checkpoint {
                self.checkpoints_free += 1;
            }
            if self.halted {
                return Ok(());
            }
        }
        Ok(())
    }

    fn retire_branch(&mut self, e: &mut DynInst) {
        let taken = e.resolved_taken.or(e.fetch_taken).unwrap_or(false);
        if e.instr.is_conditional() {
            self.stats.retired_branches += 1;
        }
        let stat = self.stats.branches.entry(e.pc).or_default();
        stat.executed += 1;
        if taken {
            stat.taken += 1;
        }
        if e.mispredict {
            stat.mispredicted += 1;
            stat.mispredicted_by_level[level_index(e.taint)] += 1;
            self.stats.mispredictions += 1;
        }
        if let Some(meta) = &e.pred_meta {
            self.predictor.train(Self::bpc(e.pc), taken, meta);
            self.events.bpred_ops += 1;
        }
        if e.instr.is_plain_conditional() {
            self.confidence.update(Self::bpc(e.pc), !e.mispredict);
        }
    }

    // ------------------------------------------------------------------
    // Complete (writeback / resolve)
    // ------------------------------------------------------------------

    fn complete(&mut self) {
        // Collect completions oldest-first (recovery squashes younger ones).
        let mut completions: Vec<u64> = Vec::new();
        for &seq in &self.exec_list {
            if let Some(i) = self.rob_idx(seq) {
                if self.rob[i].ready_at <= self.now {
                    completions.push(seq);
                }
            }
        }
        if completions.is_empty() {
            return;
        }
        completions.sort_unstable();
        // Entries leave exec_list only once actually completed: a recovery
        // can abort this loop while *older* survivors (e.g. instructions
        // between a late push and its speculative pop) are still pending —
        // they must be re-collected next cycle.
        let mut done_seqs: Vec<u64> = Vec::with_capacity(completions.len());
        let mut truncated = false;
        for seq in completions {
            if truncated {
                break;
            }
            let Some(i) = self.rob_idx(seq) else { continue };
            if !(self.rob[i].issued && !self.rob[i].done && self.rob[i].ready_at <= self.now) {
                continue;
            }
            self.rob[i].done = true;
            self.rob[i].t_complete = self.now;
            done_seqs.push(seq);
            let instr = self.rob[i].instr;
            match instr {
                Instr::Branch { .. } | Instr::Jr { .. }
                    if self.resolve_branch(i) => {
                        // Immediate recovery truncated the ROB.
                        truncated = true;
                    }
                Instr::PushBq { .. }
                    if self.execute_push_bq(i) => {
                        truncated = true;
                    }
                Instr::PushTq { .. } => {
                    let abs = self.rob[i].tq_abs.expect("tq push has index");
                    let src = self.rob[i].psrc1.expect("tq push has source");
                    let mut v = self.rename.read(src);
                    // Fault injection at the TQ write port: an off-by-one
                    // trip count makes `Branch_on_TCR` run the loop a wrong
                    // number of times (oracle mismatch at retire).
                    if self.fault_at(FaultSite::TqExecutePush) == Some(FaultKind::TqCorrupt) {
                        v = v.wrapping_add(1);
                    }
                    self.tq.execute_push(abs, v);
                    self.events.tq_ops += 1;
                }
                _ => {}
            }
        }
        self.exec_list.retain(|s| !done_seqs.contains(s));
    }

    /// Resolves a plain branch or indirect jump at ROB index `i`. Returns
    /// true if an immediate recovery truncated the ROB.
    fn resolve_branch(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        let (actual_taken, actual_target) = match e.instr {
            Instr::Branch { cond, target, .. } => {
                let a = self.rename.read(e.psrc1.expect("branch src1"));
                let b = self.rename.read(e.psrc2.expect("branch src2"));
                let t = eval_branch(cond, a, b);
                (t, if t { target } else { e.pc + 1 })
            }
            Instr::Jr { .. } => {
                let t = self.rename.read(e.psrc1.expect("jr src")) as u32;
                (true, t)
            }
            _ => unreachable!("resolve_branch on non-branch"),
        };
        let taint = {
            let mut t = None;
            if let Some(p) = e.psrc1 {
                t = join_taint(t, self.rename.taint(p));
            }
            if let Some(p) = e.psrc2 {
                t = join_taint(t, self.rename.taint(p));
            }
            t
        };
        let predicted_target = e.fetch_target;
        let mispredicted = match e.instr {
            // A branch targeting its own fall-through has a single successor:
            // a wrong direction cannot take fetch down a wrong path, and the
            // fetch oracle (which tracks the *path*) never diverges on it.
            Instr::Branch { target, .. } => e.fetch_taken != Some(actual_taken) && target != e.pc + 1,
            _ => predicted_target != actual_target,
        };
        let idx = i;
        {
            let e = &mut self.rob[idx];
            e.resolved_taken = Some(actual_taken);
            e.taint = taint;
        }
        if mispredicted {
            self.rob[idx].mispredict = true;
            let truncated = self.begin_recovery(idx, actual_target, actual_taken);
            // OoO checkpoint reclamation: the checkpoint was consumed by the
            // recovery (or was never held); release it now, not at retire.
            self.release_checkpoint(idx);
            truncated
        } else {
            // Correctly-predicted branch: its checkpoint is no longer needed
            // (aggressive OoO reclamation, the paper's best policy, §VI).
            self.release_checkpoint(idx);
            false
        }
    }

    /// Frees the checkpoint held by the ROB entry at `idx`, if any.
    fn release_checkpoint(&mut self, idx: usize) {
        if self.rob[idx].has_checkpoint {
            self.rob[idx].has_checkpoint = false;
            self.checkpoints_free += 1;
        }
    }

    /// Executes a `Push_BQ` at ROB index `i`; handles late-push
    /// verification. Returns true if recovery truncated the ROB.
    fn execute_push_bq(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        let abs = e.bq_abs.expect("bq push has index");
        let src = e.psrc1.expect("bq push has source");
        let mut predicate = self.rename.read(src) != 0;
        let taint = self.rename.taint(src);
        // Fault injection at the BQ write port: a corrupted predicate
        // steers the pop down the wrong path (oracle mismatch at retire);
        // a dropped write leaves the pop unverifiable (watchdog trip).
        match self.fault_at(FaultSite::BqExecutePush) {
            Some(FaultKind::BqCorrupt) => predicate = !predicate,
            Some(FaultKind::BqDrop) => return false,
            _ => {}
        }
        self.events.bq_ops += 1;
        let r = self.bq.execute_push_tainted(abs, predicate, level_index(taint) as u8);
        if self.trace {
            eprintln!("[{}] EXEC_PUSH seq={} abs={} pred={} result={:?}", self.now, self.rob[i].seq, abs, predicate, r);
        }
        let Some((pop_seq, spec_pred)) = r else {
            return false;
        };
        // Late push: find the speculative pop and verify it.
        let Some(pop_idx) = self.rob.iter().position(|x| x.seq == pop_seq) else {
            return false; // the pop was squashed
        };
        {
            let pop = &mut self.rob[pop_idx];
            pop.verified = true;
            pop.taint = taint;
        }
        if spec_pred == predicate {
            self.release_checkpoint(pop_idx);
            return false;
        }
        let actual_taken = !predicate;
        let taken_target = match self.rob[pop_idx].instr {
            Instr::BranchOnBq { target } => target,
            _ => unreachable!("spec pop is a Branch_on_BQ"),
        };
        // Degenerate pop (taken target == fall-through): the predicate was
        // wrong but both directions continue at the same PC, so the fetched
        // path is already correct — no squash, and the fetch oracle (which
        // never diverged) must not be rewound.
        if taken_target == self.rob[pop_idx].pc + 1 {
            self.rob[pop_idx].resolved_taken = Some(actual_taken);
            self.release_checkpoint(pop_idx);
            return false;
        }
        // Speculation failed: the pop's direction flips (taken = !predicate).
        self.stats.bq_spec_recoveries += 1;
        let target = if actual_taken { taken_target } else { self.rob[pop_idx].pc + 1 };
        self.rob[pop_idx].mispredict = true;
        self.rob[pop_idx].resolved_taken = Some(actual_taken);
        let truncated = self.begin_recovery(pop_idx, target, actual_taken);
        self.release_checkpoint(pop_idx);
        truncated
    }

    /// Starts recovery for the mispredicted instruction at ROB index `i`:
    /// immediately when it holds a checkpoint, else deferred to retirement.
    /// Returns true when the ROB was truncated now.
    fn begin_recovery(&mut self, i: usize, _target: u32, _actual_taken: bool) -> bool {
        if self.fault_has_fired() {
            self.stats.post_fault_recoveries += 1;
        }
        if self.rob[i].has_checkpoint {
            self.stats.immediate_recoveries += 1;
            self.events.checkpoint_ops += 1;
            self.recover_at(i);
            true
        } else {
            self.rob[i].recover_at_retire = true;
            false
        }
    }

    /// Squashes everything younger than ROB index `i` and restores front-end
    /// state from its snapshot; fetch resumes at the corrected target.
    fn recover_at(&mut self, i: usize) {
        let squashed = (self.rob.len() - (i + 1)) as u64 + self.front_q.len() as u64;
        // Squash the front pipe entirely (younger than everything in ROB),
        // returning any checkpoints its branches hold.
        for e in &self.front_q {
            if e.has_checkpoint {
                self.checkpoints_free += 1;
            }
        }
        self.front_q.clear();
        // Walk youngest -> oldest undoing renames.
        while self.rob.len() > i + 1 {
            let mut victim = self.rob.pop_back().expect("len > i+1");
            self.squash_entry(&mut victim);
        }
        let max_rob_seq = self.rob.back().expect("recovery target survives").rob_seq;
        self.next_rob_seq = max_rob_seq + 1;
        self.iq_list.retain(|&s| s <= max_rob_seq);
        self.exec_list.retain(|&s| s <= max_rob_seq);
        self.store_list.retain(|&s| s <= max_rob_seq);
        let (snap, pc, seq, instr, resolved_taken, psrc1, pred_meta) = {
            let e = &self.rob[i];
            (
                e.snapshot.as_ref().expect("recovering instruction has a snapshot").clone(),
                e.pc,
                e.seq,
                e.instr,
                e.resolved_taken,
                e.psrc1,
                e.pred_meta.clone(),
            )
        };
        if self.trace {
            eprintln!("[{}] BQ_RECOVER to snap head={} tail={} (was h={} t={})", self.now, snap.bq.head, snap.bq.tail, self.bq.head, self.bq.tail);
        }
        self.bq.recover(&snap.bq);
        self.tq.recover(&snap.tq);
        // The VQ renamer was already repaired by the squash walk (it is a
        // rename-stage structure; fetch-time snapshots do not apply).
        self.ras.restore(&snap.ras);

        // Predictor history rewinds to this branch and learns the outcome.
        if let Some(meta) = pred_meta {
            self.predictor.recover(Self::bpc(pc), resolved_taken.unwrap_or(false), &meta);
        }

        // Correct next PC.
        let target = match instr {
            Instr::Branch { target, .. } | Instr::BranchOnBq { target } => {
                if resolved_taken == Some(true) {
                    target
                } else {
                    pc + 1
                }
            }
            Instr::Jr { .. } => self.rename.read(psrc1.expect("jr src")) as u32,
            _ => pc + 1,
        };
        self.fetch_pc = target;
        self.fetch_resume_at = self.now + 1;
        self.fetch_halted = false;
        self.refill_after_recovery = true;
        if let Some(t) = &mut self.telemetry {
            t.registry.counter_add("core.recoveries", 1);
            t.registry.histogram_record("core.squash_depth", squashed);
            t.trace.instant(
                "recovery",
                "pipe",
                self.now,
                0,
                0,
                vec![
                    ("pc", (pc as u64).into()),
                    ("seq", seq.into()),
                    ("target", (target as u64).into()),
                    ("squashed", squashed.into()),
                ],
            );
        }
        if self.trace {
            eprintln!("[{}] RECOVER seq={} pc={} `{}` -> target {} (diverged={:?})", self.now, seq, pc, instr, target, self.diverged_at);
        }

        // Resynchronize the fetch oracle when the diverging instruction
        // itself recovers.
        if self.diverged_at == Some(seq) {
            self.diverged_at = None;
            debug_assert_eq!(self.fetch_oracle.pc(), target, "fetch oracle resync mismatch");
        } else if self.diverged_at.is_none() && self.fetch_oracle.pc() != target {
            // A "recovery" that leaves the oracle's path can only come from
            // corrupted state (fault injection): an on-path branch resolved
            // with a wrong value. Mark fetch as diverged so the retirement
            // oracle reports the mismatch instead of the fetch-side
            // divergence tracker asserting.
            debug_assert!(self.fault.is_some(), "off-oracle recovery without fault injection");
            self.diverged_at = Some(seq);
        }
    }

    fn squash_entry(&mut self, victim: &mut DynInst) {
        self.trace_record(victim, None);
        if victim.in_iq && !victim.issued {
            self.iq_count -= 1;
        }
        if victim.in_lsq {
            self.lsq_count -= 1;
        }
        if victim.has_checkpoint {
            self.checkpoints_free += 1;
        }
        match victim.instr {
            Instr::PushVq { .. } => {
                // No RMT update; roll the VQ renamer tail back and return
                // the mapping's register.
                self.vq.unrename_push();
                if let Some(p) = victim.pdest {
                    self.rename.free_phys(p);
                }
            }
            Instr::PopVq { .. } => {
                self.vq.unrename_pop();
                if let (Some(rd), Some(p), Some(prev)) = (victim.instr.dest(), victim.pdest, victim.prev_phys) {
                    self.rename.unrename(rd, p, prev);
                }
            }
            _ => {
                if let (Some(rd), Some(p), Some(prev)) = (victim.instr.dest(), victim.pdest, victim.prev_phys) {
                    self.rename.unrename(rd, p, prev);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let mut issued = 0usize;
        let mut alu = 0usize;
        let mut complex = 0usize;
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut branches = 0usize;
        let now = self.now;

        let mut issued_seqs: Vec<u64> = Vec::new();
        for li in 0..self.iq_list.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let seq = self.iq_list[li];
            let Some(i) = self.rob_idx(seq) else { continue };
            let e = &self.rob[i];
            debug_assert!(e.dispatched && !e.issued && e.needs_backend());
            // Source readiness. Stores issue on address readiness alone
            // (split agen/data, like a real LSQ): the data may arrive later
            // and is checked at forwarding/retire time.
            let is_store = matches!(e.instr, Instr::Store { .. });
            let ready = e.psrc1.is_none_or(|p| self.rename.is_ready(p, now))
                && (is_store || e.psrc2.is_none_or(|p| self.rename.is_ready(p, now)));
            if !ready {
                continue;
            }
            // FU availability.
            let fu_ok = match e.instr {
                Instr::Alu { op, .. } if op.is_complex() => complex < self.cfg.n_complex,
                Instr::Alu { .. }
                | Instr::Li { .. }
                | Instr::PushBq { .. }
                | Instr::PushVq { .. }
                | Instr::PopVq { .. }
                | Instr::PushTq { .. } => alu < self.cfg.n_alu,
                Instr::Load { .. } | Instr::Prefetch { .. } => loads < self.cfg.n_load_ports,
                Instr::Store { .. } => stores < self.cfg.n_store_ports,
                Instr::Branch { .. } | Instr::Jr { .. } => branches < self.cfg.n_branch_units,
                _ => true,
            };
            if !fu_ok {
                continue;
            }
            // Loads: conservative disambiguation (all older stores have
            // computed addresses; exact-match forwarding; partial overlap
            // waits for the store to drain).
            if matches!(e.instr, Instr::Load { .. }) && !self.load_may_issue(i) {
                continue;
            }

            // Issue.
            match self.rob[i].instr {
                Instr::Alu { op, .. } if op.is_complex() => complex += 1,
                Instr::Alu { .. }
                | Instr::Li { .. }
                | Instr::PushBq { .. }
                | Instr::PushVq { .. }
                | Instr::PopVq { .. }
                | Instr::PushTq { .. } => alu += 1,
                Instr::Load { .. } | Instr::Prefetch { .. } => loads += 1,
                Instr::Store { .. } => stores += 1,
                Instr::Branch { .. } | Instr::Jr { .. } => branches += 1,
                _ => {}
            }
            if !self.execute_at(i) {
                // Transient structural refusal (e.g. MSHRs full): retry.
                match self.rob[i].instr {
                    Instr::Load { .. } | Instr::Prefetch { .. } => loads -= 1,
                    _ => {}
                }
                continue;
            }
            issued += 1;
            self.stats.issued += 1;
            issued_seqs.push(seq);
            self.exec_list.push(seq);
            if self.rob[i].on_wrong_path {
                self.stats.wrong_path_issued += 1;
            }
            self.events.iq_wakeups += 1;
            if self.rob[i].in_iq {
                self.rob[i].in_iq = false;
                self.iq_count -= 1;
            }
        }
        if !issued_seqs.is_empty() {
            self.iq_list.retain(|s| !issued_seqs.contains(s));
        }
    }

    /// Computes the instruction at ROB index `i` and schedules its
    /// completion. Returns false when a structural resource (MSHR) refused
    /// it this cycle.
    fn execute_at(&mut self, i: usize) -> bool {
        let now = self.now;
        let (instr, pc, psrc1, psrc2) = {
            let e = &self.rob[i];
            (e.instr, e.pc, e.psrc1, e.psrc2)
        };
        let v1 = psrc1.map(|p| self.rename.read(p)).unwrap_or(0);
        let v2 = psrc2.map(|p| self.rename.read(p)).unwrap_or(0);
        let t1 = psrc1.and_then(|p| self.rename.taint(p));
        let t2 = psrc2.and_then(|p| self.rename.taint(p));
        let in_taint = join_taint(t1, t2);
        self.events.regfile_reads += psrc1.is_some() as u64 + psrc2.is_some() as u64;

        let mut value = 0i64;
        let mut out_taint = in_taint;
        let latency: u64;
        match instr {
            Instr::Alu { op, src2, .. } => {
                let b = match src2 {
                    Src2::Reg(_) => v2,
                    Src2::Imm(imm) => imm,
                };
                value = eval_alu(op, v1, b);
                latency = if op.is_complex() {
                    self.events.alu_complex += 1;
                    if matches!(op, cfd_isa::AluOp::Div | cfd_isa::AluOp::Rem) {
                        20
                    } else {
                        3
                    }
                } else {
                    self.events.alu_simple += 1;
                    1
                };
            }
            Instr::Li { imm, .. } => {
                value = imm;
                out_taint = None;
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::Load { offset, width, signed, .. } => {
                let addr = (v1 as u64).wrapping_add(offset as u64);
                self.events.lsq_ops += 1;
                // Store-to-load forwarding.
                match self.forwarding_source(i, addr, width) {
                    ForwardState::Forward { data, taint } => {
                        self.stats.lsq_forwards += 1;
                        value = extract(data, width, signed);
                        // The forwarded value carries the store data's taint.
                        out_taint = join_taint(in_taint, taint);
                        latency = 2;
                    }
                    ForwardState::Memory => {
                        let res = self.hier.access(pc as u64 * 4, addr, false, now);
                        if res.mshr_full {
                            return false;
                        }
                        value = self.oracle.mem.read(addr, width, signed);
                        out_taint = join_taint(in_taint, Some(res.level));
                        // Fault injection: a delayed memory response is a
                        // timing-only perturbation and must be masked.
                        let extra = match self.fault_at(FaultSite::LoadAccess) {
                            Some(FaultKind::MemDelay(n)) => n,
                            _ => 0,
                        };
                        latency = res.latency as u64 + extra;
                    }
                    ForwardState::MustWait => unreachable!("checked by load_may_issue"),
                }
                self.rob[i].eff_addr = Some(addr);
            }
            Instr::Prefetch { offset, .. } => {
                let addr = (v1 as u64).wrapping_add(offset as u64);
                let res = self.hier.access(pc as u64 * 4, addr, false, now);
                if res.mshr_full {
                    return false;
                }
                self.rob[i].eff_addr = Some(addr);
                latency = 1; // non-binding: completes immediately
                self.events.lsq_ops += 1;
            }
            Instr::Store { offset, .. } => {
                // Address generation only; data is read from the PRF when a
                // load forwards from this store (or implicitly at retire via
                // the oracle).
                let addr = (v1 as u64).wrapping_add(offset as u64);
                self.rob[i].eff_addr = Some(addr);
                latency = 1;
                self.events.lsq_ops += 1;
            }
            Instr::Branch { .. } | Instr::Jr { .. } => {
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::PushBq { .. } | Instr::PushTq { .. } => {
                latency = 1;
                self.events.alu_simple += 1;
            }
            Instr::PushVq { .. } => {
                value = v1;
                latency = 1;
                self.events.alu_simple += 1;
                self.events.vq_ops += 1;
            }
            Instr::PopVq { .. } => {
                value = v1;
                latency = 1;
                self.events.alu_simple += 1;
                self.events.vq_ops += 1;
            }
            _ => unreachable!("execute_at on a fetch-resolved instruction"),
        }

        let e = &mut self.rob[i];
        e.issued = true;
        e.t_issue = now;
        e.ready_at = now + latency;
        e.taint = out_taint;
        if let Some(p) = e.pdest {
            self.rename.write(p, value, e.ready_at, out_taint);
            self.events.regfile_writes += 1;
        }
        true
    }

    /// Whether the load at ROB index `i` may issue under conservative
    /// disambiguation.
    fn load_may_issue(&self, i: usize) -> bool {
        let Instr::Load { offset, width, .. } = self.rob[i].instr else { return true };
        let base = self.rob[i].psrc1.expect("load base renamed");
        if !self.rename.is_ready(base, self.now) {
            return false;
        }
        let addr = (self.rename.read(base) as u64).wrapping_add(offset as u64);
        !matches!(self.forwarding_probe(i, addr, width), ForwardState::MustWait)
    }

    fn forwarding_probe(&self, load_idx: usize, addr: u64, width: MemWidth) -> ForwardState {
        let lw = width.bytes();
        let mut result = ForwardState::Memory;
        let load_seq = self.rob[load_idx].rob_seq;
        for &sseq in &self.store_list {
            if sseq >= load_seq {
                break;
            }
            let Some(j) = self.rob_idx(sseq) else { continue };
            let s = &self.rob[j];
            if !s.issued {
                return ForwardState::MustWait; // unknown address
            }
            let saddr = s.eff_addr.expect("issued store has address");
            let sw = match s.instr {
                Instr::Store { width, .. } => width.bytes(),
                _ => unreachable!(),
            };
            // Overlap test.
            if saddr < addr.wrapping_add(lw) && addr < saddr.wrapping_add(sw) {
                if saddr == addr && lw <= sw {
                    // Forward only once the store's data is available.
                    let data_src = s.psrc2.expect("store has a data source");
                    if self.rename.is_ready(data_src, self.now) {
                        result = ForwardState::Forward {
                            data: self.rename.read(data_src),
                            taint: self.rename.taint(data_src),
                        };
                    } else {
                        return ForwardState::MustWait; // data not produced yet
                    }
                } else {
                    return ForwardState::MustWait; // partial overlap
                }
            }
        }
        result
    }

    fn forwarding_source(&self, load_idx: usize, addr: u64, width: MemWidth) -> ForwardState {
        self.forwarding_probe(load_idx, addr, width)
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(front) = self.front_q.front() else { return };
            if front.dispatch_at > self.now {
                return;
            }
            if self.rob.len() >= self.cfg.rob_size {
                return;
            }
            let needs_backend = front.needs_backend();
            if needs_backend && self.iq_count >= self.cfg.iq_size {
                return;
            }
            let is_mem = front.is_mem_op();
            if is_mem && self.lsq_count >= self.cfg.lsq_size {
                return;
            }
            // VQ renamer hazards.
            match front.instr {
                Instr::PushVq { .. } if self.vq.push_would_stall() => return,
                Instr::PopVq { .. } if self.vq.pop_would_underflow() => return,
                _ => {}
            }
            // Register renaming: guarantee a free physical register up
            // front so no rename below can fail after mutating queue state.
            if self.rename.free_regs() < 1 {
                return;
            }
            let mut e = self.front_q.pop_front().expect("checked");
            let instr = e.instr;
            let (s1, s2) = instr.sources();
            e.psrc1 = s1.map(|r| self.rename.map(r));
            e.psrc2 = s2.map(|r| self.rename.map(r));
            match instr {
                Instr::PushVq { .. } => {
                    let Some(p) = self.rename.alloc_phys() else { return };
                    e.pdest = Some(p);
                    self.vq.rename_push(p);
                    self.events.vq_ops += 1;
                }
                Instr::PopVq { .. } => {
                    // Source comes from the VQ renamer head (the push's
                    // physical register); the destination renames normally.
                    // `pop_vq r0` is ISA-legal (consume and discard): it
                    // still pops the mapping but writes no register.
                    let mut vq_src = self.vq.rename_pop();
                    e.vq_free = Some(vq_src);
                    // Fault injection at the VQ rename map: the pop latches
                    // a different physical register than its push wrote.
                    // The wrong value either reaches control flow (oracle
                    // mismatch), wedges on a never-ready register
                    // (watchdog), or is overwritten downstream (masked —
                    // committed memory comes from the retire oracle). The
                    // free at retirement uses the true mapping (`vq_free`)
                    // either way.
                    if self.fault_at(FaultSite::VqRenamePop) == Some(FaultKind::VqRemapCorrupt) {
                        vq_src = (vq_src ^ 1) % self.cfg.prf_size as PhysReg;
                    }
                    e.psrc1 = Some(vq_src);
                    self.events.vq_ops += 1;
                    if let Some(rd) = instr.dest() {
                        let Some((p, prev)) = self.rename.rename_dest(rd) else { return };
                        e.pdest = Some(p);
                        e.prev_phys = Some(prev);
                    }
                }
                _ => {
                    if let Some(rd) = instr.dest() {
                        let Some((p, prev)) = self.rename.rename_dest(rd) else { return };
                        e.pdest = Some(p);
                        e.prev_phys = Some(prev);
                    }
                }
            }
            e.dispatched = true;
            e.t_dispatch = self.now;
            e.rob_seq = self.next_rob_seq;
            self.next_rob_seq += 1;
            self.events.decoded += 1;
            self.events.renamed += 1;
            if needs_backend {
                e.in_iq = true;
                self.iq_count += 1;
                self.iq_list.push(e.rob_seq);
                self.events.iq_writes += 1;
            } else {
                // Fetch-resolved instructions complete at dispatch.
                e.done = true;
                e.ready_at = self.now;
                e.t_complete = self.now;
                if let Instr::Jal { .. } = instr {
                    // Link value is known statically.
                    if let Some(p) = e.pdest {
                        self.rename.write(p, (e.pc + 1) as i64, self.now, None);
                        self.events.regfile_writes += 1;
                    }
                }
            }
            if is_mem {
                e.in_lsq = true;
                self.lsq_count += 1;
                if matches!(instr, Instr::Store { .. }) {
                    self.store_list.push_back(e.rob_seq);
                }
            }
            self.events.rob_ops += 1;
            let spec_pop_unverified = e.spec_pop && !e.verified;
            self.rob.push_back(e);
            // The corrected path reached the ROB: misprediction refill over.
            self.refill_after_recovery = false;
            // A late push may have executed while this speculative pop sat
            // in the front pipe; its ROB scan could not find the pop then,
            // so verify against the BQ entry now.
            if spec_pop_unverified {
                let idx = self.rob.len() - 1;
                if self.verify_spec_pop_at_dispatch(idx) {
                    return; // recovery truncated the ROB
                }
            }
        }
    }

    /// Re-checks a just-dispatched speculative pop against its BQ entry.
    /// Returns true when a failed verification triggered immediate recovery.
    fn verify_spec_pop_at_dispatch(&mut self, idx: usize) -> bool {
        let abs = self.rob[idx].bq_abs.expect("spec pop has a BQ index");
        let Some((predicate, taint_code)) = self.bq.peek_entry_tainted(abs) else { return false };
        self.rob[idx].verified = true;
        self.rob[idx].taint = taint_from_index(taint_code);
        let spec_taken = self.rob[idx].fetch_taken.expect("spec pop chose a direction");
        let actual_taken = !predicate;
        if spec_taken == actual_taken {
            self.release_checkpoint(idx);
            return false;
        }
        // Degenerate pop: both directions continue at the same PC (see
        // `execute_push_bq`) — the fetched path is already correct.
        if let Instr::BranchOnBq { target } = self.rob[idx].instr {
            if target == self.rob[idx].pc + 1 {
                self.rob[idx].resolved_taken = Some(actual_taken);
                self.release_checkpoint(idx);
                return false;
            }
        }
        self.stats.bq_spec_recoveries += 1;
        self.rob[idx].mispredict = true;
        self.rob[idx].resolved_taken = Some(actual_taken);
        let truncated = self.begin_recovery(idx, 0, actual_taken);
        self.release_checkpoint(if truncated { self.rob.len() - 1 } else { idx });
        truncated
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn front_cap(&self) -> usize {
        (self.cfg.front_depth as usize + 2) * self.cfg.width
    }

    fn fetch(&mut self) -> Result<(), CoreError> {
        if self.fetch_halted || self.now < self.fetch_resume_at {
            return Ok(());
        }
        let mut fetched = 0;
        while fetched < self.cfg.width && self.front_q.len() < self.front_cap() {
            let pc = self.fetch_pc;
            let Some(instr) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the program: wait for recovery.
                return Ok(());
            };

            // Queue-full stalls (§III-C3).
            match instr {
                Instr::PushBq { .. } if self.bq.push_would_stall() => {
                    self.stats.bq_push_stall_cycles += 1;
                    self.front_block = CpiComponent::CfdStall;
                    return Ok(());
                }
                Instr::PushTq { .. } if self.tq.push_would_stall() => {
                    self.stats.tq_push_stall_cycles += 1;
                    self.front_block = CpiComponent::CfdStall;
                    return Ok(());
                }
                // Context-switch macro-ops drain the pipeline first.
                Instr::SaveBq { .. }
                | Instr::RestoreBq { .. }
                | Instr::SaveVq { .. }
                | Instr::RestoreVq { .. }
                | Instr::SaveTq { .. }
                | Instr::RestoreTq { .. }
                    if (!self.rob.is_empty() || !self.front_q.is_empty()) => {
                        self.front_block = CpiComponent::Frontend;
                        return Ok(());
                    }
                _ => {}
            }
            // TQ miss stalls fetch (§IV-C3).
            if matches!(instr, Instr::PopTq | Instr::PopTqBrOvf { .. }) && self.tq.pop_would_miss() {
                self.stats.tq_miss_stall_cycles += 1;
                self.front_block = CpiComponent::CfdStall;
                return Ok(());
            }
            // BQ miss stalls fetch under the stall policy (Fig. 21c).
            if self.bq_stall_precheck(&instr) {
                self.stats.bq_miss_stall_cycles += 1;
                self.front_block = CpiComponent::CfdStall;
                return Ok(());
            }

            // L1I probe: a miss bubbles fetch for the L2 latency.
            if self.cfg.model_icache && !self.icache.access(pc as u64 * 4, false) {
                self.icache.fill(pc as u64 * 4, false);
                self.stats.icache_misses += 1;
                self.fetch_resume_at = self.now + self.cfg.hierarchy.l2_latency as u64;
                self.front_block = CpiComponent::Frontend;
                return Ok(());
            }
            let seq = self.next_seq;
            let was_diverged = self.diverged_at.is_some();
            let stop = self.fetch_instr(seq, pc, instr)?;
            self.next_seq += 1;
            fetched += 1;
            self.stats.fetched += 1;
            self.events.fetched += 1;
            if was_diverged {
                self.stats.wrong_path_fetched += 1;
            }
            match stop {
                FetchStop::Continue => {}
                FetchStop::BundleEnd => break,
                FetchStop::Bubble => {
                    self.fetch_resume_at = self.now + 2;
                    self.front_block = CpiComponent::Frontend;
                    break;
                }
                FetchStop::Halt => {
                    self.fetch_halted = true;
                    break;
                }
            }
        }
        if fetched > 0 {
            // Fetch supplied instructions this cycle: any subsequent
            // empty-ROB cycles are plain pipeline fill until something
            // blocks again.
            self.front_block = CpiComponent::Frontend;
        }
        Ok(())
    }

    /// Fetches one instruction: resolves/predicts control, steps the fetch
    /// oracle, and enqueues the `DynInst`.
    fn fetch_instr(&mut self, seq: u64, pc: u32, instr: Instr) -> Result<FetchStop, CoreError> {
        let on_wrong_path = self.diverged_at.is_some();
        let mut e = DynInst::new(seq, pc, instr, self.now + self.cfg.front_depth as u64, on_wrong_path);
        e.t_fetch = self.now;
        let mut next_pc = pc + 1;
        let mut stop = FetchStop::Continue;
        let mut is_taken_control = false;

        // Step the fetch oracle along the correct path.
        let oracle_ev = if self.diverged_at.is_none() {
            debug_assert_eq!(self.fetch_oracle.pc(), pc, "fetch oracle out of sync");
            let mut ev = None;
            let mut sink = |r: &cfd_isa::RetireEvent| ev = Some(*r);
            self.fetch_oracle.step(&mut sink).map_err(|err| CoreError::Program(err.to_string()))?;
            ev
        } else {
            None
        };

        match instr {
            Instr::Branch { target, .. } => {
                let dir = if self.cfg.perfect.covers(pc) {
                    if let Some(ev) = &oracle_ev {
                        ev.taken.expect("branch has outcome")
                    } else {
                        // Wrong path: the oracle cannot help; fall back.
                        let (d, meta) = self.predictor.predict(Self::bpc(pc));
                        e.pred_meta = Some(meta);
                        d
                    }
                } else {
                    let (d, meta) = self.predictor.predict(Self::bpc(pc));
                    e.pred_meta = Some(meta);
                    d
                };
                // Fault injection: an inverted prediction must be masked by
                // the normal misprediction-recovery machinery.
                let dir = dir ^ (self.fault_at(FaultSite::PredictorPredict) == Some(FaultKind::PredictorFlip));
                self.events.bpred_ops += 1;
                e.fetch_taken = Some(dir);
                e.fetch_target = target;
                e.snapshot = Some(Box::new(self.take_snapshot()));
                self.maybe_checkpoint(&mut e, pc);
                if dir {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::Jump { target } | Instr::Jal { target, .. } => {
                if let Instr::Jal { .. } = instr {
                    self.ras.push(pc + 1);
                }
                next_pc = target;
                is_taken_control = true;
            }
            Instr::Jr { .. } => {
                let predicted = self.ras.pop();
                e.fetch_target = predicted;
                e.snapshot = Some(Box::new(self.take_snapshot()));
                self.maybe_checkpoint(&mut e, pc);
                next_pc = predicted;
                is_taken_control = true;
            }
            Instr::PushBq { .. } => {
                e.bq_abs = Some(self.bq.fetch_push());
                if self.trace {
                    eprintln!("[{}] FETCH_PUSH seq={} abs={:?}", self.now, seq, e.bq_abs);
                }
                self.events.bq_ops += 1;
            }
            Instr::BranchOnBq { target } => {
                self.events.bq_ops += 1;
                let (abs, pred) = self.bq.fetch_pop();
                e.bq_abs = Some(abs);
                let dir = match pred {
                    Some(p) => {
                        // Early push: timely, non-speculative branching.
                        self.stats.bq_hits += 1;
                        !p
                    }
                    None => {
                        // BQ miss.
                        self.stats.bq_misses += 1;
                        match self.cfg.bq_miss_policy {
                            BqMissPolicy::Stall => {
                                // Pre-checked in fetch(); a miss never
                                // reaches this point under the stall policy.
                                unreachable!("BQ stall is pre-checked in fetch()")
                            }
                            BqMissPolicy::Speculate => {
                                let predicted_pred = if let (true, Some(ev)) =
                                    (self.cfg.perfect.covers(pc), oracle_ev.as_ref())
                                {
                                    // ev.taken is the pop direction (= !predicate)
                                    !ev.taken.expect("pop outcome")
                                } else {
                                    // The predictor predicts the pop's *taken
                                    // direction*; the predicate is its
                                    // complement (taken = !predicate under the
                                    // skip-if-false idiom). Training and
                                    // recovery also use the taken domain.
                                    let (d, meta) = self.predictor.predict(Self::bpc(pc));
                                    e.pred_meta = Some(meta);
                                    self.events.bpred_ops += 1;
                                    !d
                                };
                                // Fault injection: a flipped speculative-pop
                                // prediction must be caught by late-push
                                // verification.
                                let predicted_pred = predicted_pred
                                    ^ (self.fault_at(FaultSite::PredictorPredict)
                                        == Some(FaultKind::PredictorFlip));
                                if self.trace {
                                    eprintln!("[{}] SPEC_POP seq={} abs={} pred={}", self.now, seq, abs, predicted_pred);
                                }
                                e.spec_pop = true;
                                if abs < self.bq.tail {
                                    // A push owns this entry: link for late-push
                                    // verification.
                                    self.bq.record_spec_pop(abs, predicted_pred, seq);
                                    e.verified = false;
                                } else {
                                    // No push was ever fetched for this pop, so
                                    // the ISA ordering rules place it on the
                                    // wrong path: speculate without recording
                                    // (recording would clobber a live slot).
                                    // It retires only if the program is buggy,
                                    // which the retirement oracle flags.
                                }
                                e.snapshot = Some(Box::new(self.take_snapshot()));
                                self.maybe_checkpoint(&mut e, pc);
                                !predicted_pred
                            }
                        }
                    }
                };
                e.fetch_taken = Some(dir);
                e.fetch_target = target;
                if dir {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::MarkBq => {
                self.bq.fetch_mark();
                self.events.bq_ops += 1;
            }
            Instr::ForwardBq => {
                self.bq.fetch_forward();
                self.events.bq_ops += 1;
            }
            Instr::PushTq { .. } => {
                e.tq_abs = Some(self.tq.fetch_push());
                self.events.tq_ops += 1;
            }
            Instr::PopTq => {
                let (abs, ovf) = self.tq.fetch_pop();
                debug_assert!(ovf.is_some(), "TQ miss pre-checked in fetch()");
                e.tq_abs = Some(abs);
                e.tq_loaded_tcr = self.tq.tcr;
                self.stats.tq_hits += 1;
                self.events.tq_ops += 1;
            }
            Instr::PopTqBrOvf { target } => {
                let (abs, ovf) = self.tq.fetch_pop();
                let overflow = ovf.expect("TQ miss pre-checked in fetch()");
                e.tq_abs = Some(abs);
                e.tq_loaded_tcr = self.tq.tcr;
                e.fetch_taken = Some(overflow);
                e.fetch_target = target;
                self.stats.tq_hits += 1;
                self.events.tq_ops += 1;
                if overflow {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::BranchOnTcr { target } => {
                let cont = self.tq.fetch_branch_on_tcr();
                e.fetch_taken = Some(cont);
                e.fetch_target = target;
                self.events.tq_ops += 1;
                if cont {
                    next_pc = target;
                    is_taken_control = true;
                }
            }
            Instr::Halt => {
                stop = FetchStop::Halt;
            }
            Instr::SaveBq { .. }
            | Instr::RestoreBq { .. }
            | Instr::SaveVq { .. }
            | Instr::RestoreVq { .. }
            | Instr::SaveTq { .. }
            | Instr::RestoreTq { .. } => {
                self.macro_queue_op(&mut e, &oracle_ev);
            }
            _ => {}
        }

        // Divergence detection against the fetch oracle.
        if let Some(ev) = &oracle_ev {
            let actually_next = ev.next_pc;
            if next_pc != actually_next && self.diverged_at.is_none() {
                self.diverged_at = Some(seq);
                if self.trace {
                    eprintln!(
                        "[{}] DIVERGE seq={} pc={} `{}` chose next={} oracle next={}",
                        self.now, seq, pc, instr, next_pc, actually_next
                    );
                }
            }
        }

        // BTB modeling: taken control instructions missing from the BTB pay
        // a one-cycle misfetch bubble.
        if instr.is_control() {
            let hit = self.btb.lookup(pc as u64).is_some();
            if !hit {
                self.btb.insert(
                    pc as u64,
                    BtbEntry {
                        target: instr.direct_target().unwrap_or(e.fetch_target),
                        kind: match instr {
                            Instr::Branch { .. } => BranchKind::Conditional,
                            Instr::BranchOnBq { .. } => BranchKind::CfdPop,
                            Instr::BranchOnTcr { .. } | Instr::PopTqBrOvf { .. } => BranchKind::CfdTcr,
                            Instr::Jr { .. } => BranchKind::Indirect,
                            _ => BranchKind::Unconditional,
                        },
                    },
                );
                if is_taken_control {
                    self.stats.btb_misfetches += 1;
                    stop = FetchStop::Bubble;
                }
            }
        }

        self.fetch_pc = next_pc;
        if is_taken_control && stop == FetchStop::Continue {
            stop = FetchStop::BundleEnd;
        }
        self.front_q.push_back(e);
        Ok(stop)
    }

    /// Pre-checks whether fetching `instr` would stall this cycle under the
    /// BQ-miss stall policy (the oracle must not step for a stalled fetch).
    fn bq_stall_precheck(&self, instr: &Instr) -> bool {
        matches!(instr, Instr::BranchOnBq { .. })
            && self.cfg.bq_miss_policy == BqMissPolicy::Stall
            && self.bq.pop_would_miss()
    }

    fn take_snapshot(&self) -> Snapshot {
        Snapshot { bq: self.bq.snapshot(), tq: self.tq.snapshot(), ras: self.ras.snapshot() }
    }

    fn maybe_checkpoint(&mut self, e: &mut DynInst, pc: u32) {
        let want = match self.cfg.checkpoint_policy {
            CheckpointPolicy::AllBranches => true,
            CheckpointPolicy::ConfidenceGuided => !self.confidence.is_confident(Self::bpc(pc)),
            CheckpointPolicy::None => false,
        };
        if want && self.checkpoints_free > 0 {
            self.checkpoints_free -= 1;
            e.has_checkpoint = true;
            self.stats.checkpoints_allocated += 1;
            self.events.checkpoint_ops += 1;
        } else if want {
            self.stats.checkpoints_denied += 1;
        } else {
            self.stats.checkpoints_unwanted += 1;
        }
    }

    /// Context-switch macro-ops (`Save_*`/`Restore_*`): the pipeline is
    /// drained (enforced by the caller); execute the operation through the
    /// fetch oracle and resynchronize the fetch-side queue structures.
    fn macro_queue_op(&mut self, e: &mut DynInst, oracle_ev: &Option<cfd_isa::RetireEvent>) {
        e.done = true;
        e.dispatched = true;
        e.ready_at = self.now;
        if oracle_ev.is_none() {
            // Wrong path: will be squashed; do nothing microarchitectural.
            return;
        }
        match e.instr {
            Instr::RestoreBq { .. } => {
                let contents = self.fetch_oracle.bq.contents();
                self.bq = FetchBq::new(self.cfg.bq_size);
                for (k, p) in contents.iter().enumerate() {
                    let abs = self.bq.fetch_push();
                    debug_assert_eq!(abs, k as u64);
                    self.bq.execute_push(abs, *p);
                    self.bq.retire_push();
                }
            }
            Instr::RestoreTq { .. } => {
                let contents = self.fetch_oracle.tq.contents();
                let tcr = self.fetch_oracle.tq.tcr();
                self.tq = FetchTq::new(self.cfg.tq_size, self.cfg.tq_trip_bits);
                for entry in contents {
                    let abs = self.tq.fetch_push();
                    let v = if entry.overflow { (self.tq.size() as i64) << 33 } else { entry.trip_count as i64 };
                    self.tq.execute_push(abs, v);
                    self.tq.retire_push();
                }
                self.tq.tcr = tcr;
                self.tq.committed_tcr = tcr;
            }
            Instr::RestoreVq { .. } => {
                // Free the physical registers still held by the old VQ's
                // live mappings (they are normally freed when their pops
                // retire, which will now never happen).
                while !self.vq.pop_would_underflow() {
                    let p = self.vq.rename_pop();
                    self.rename.free_phys(p);
                }
                let contents = self.fetch_oracle.vq.contents();
                self.vq = VqRenamer::new(self.cfg.vq_size);
                for v in contents {
                    // The pipeline is drained here, so at most vq_size live
                    // registers are needed; the PRF is sized well above that.
                    let p = self
                        .rename
                        .alloc_phys()
                        .expect("PRF exhausted during Restore_VQ; prf_size must exceed 32 + vq_size");
                    self.rename.write(p, v, self.now, None);
                    self.vq.rename_push(p);
                    self.vq.retire_push();
                }
            }
            _ => {}
        }
        // Timing: drained + serialized; charge a latency proportional to
        // the queue length by delaying fetch.
        self.fetch_resume_at = self.now + 4;
    }
}

/// Result of fetching one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStop {
    Continue,
    BundleEnd,
    Bubble,
    Halt,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForwardState {
    /// Load can read committed memory.
    Memory,
    /// Load forwards this in-flight store's value (with its data taint).
    Forward {
        data: i64,
        taint: Taint,
    },
    /// Load must wait (unknown or partially overlapping older store).
    MustWait,
}

/// Inverse of [`level_index`]: reconstructs a taint from its code.
fn taint_from_index(code: u8) -> Taint {
    use cfd_mem::MemLevel;
    match code {
        1 => Some(MemLevel::L1),
        2 => Some(MemLevel::L2),
        3 => Some(MemLevel::L3),
        4 => Some(MemLevel::Mem),
        _ => None,
    }
}

fn extract(stored: i64, width: MemWidth, signed: bool) -> i64 {
    let n = width.bytes() as u32;
    if n == 8 {
        return stored;
    }
    let shift = 64 - 8 * n;
    if signed {
        (stored << shift) >> shift
    } else {
        ((stored as u64) << shift >> shift) as i64
    }
}
