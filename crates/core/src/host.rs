//! The kernel/host boundary: every doorway from the pure execution kernel
//! to the outside world.
//!
//! The pipeline stages ([`frontend`](crate::frontend),
//! [`dispatch`](crate::dispatch), [`scheduler`](crate::scheduler),
//! [`lsq`](crate::lsq), [`commit`](crate::commit)) never touch the cache
//! hierarchy, cfd-obs telemetry, fault injection, or cancellation tokens
//! directly. Each capability sits behind a narrow trait —
//! [`MemoryHost`], [`TelemetryHost`], [`FaultHost`], [`ControlHost`] —
//! implemented by a *port* struct whose internals are private to this
//! module, so the only operations a stage can perform are the trait
//! methods. That makes the kernel's external surface auditable by reading
//! four trait definitions, and it is what lets the kernel be checkpointed,
//! resumed, and re-hosted (sampled simulation, future multi-core) without
//! touching stage code.
//!
//! Every port has a **null state** (telemetry unarmed, no fault armed, no
//! cancel token) whose trait methods reduce to an `Option` check — the
//! same cost the pre-refactor field tests paid, so a run with null hosts
//! is as fast as the old direct-field code. `scripts/verify.sh` holds this
//! to a hard simperf KIPS floor.

use crate::core::{CancelToken, CoreError};
use crate::fault::{FaultKind, FaultSite, FaultSpec, FaultState, InjectionRecord};
use cfd_mem::{AccessResult, Cache, CacheConfig, CacheStats, Hierarchy, HierarchyConfig};
use cfd_obs::{ArgValue, MetricsRegistry, TelemetryConfig, TelemetryReport, TimeSeries, TraceLog};

// ----------------------------------------------------------------------
// Memory
// ----------------------------------------------------------------------

/// The kernel's only route to the cache hierarchy and the L1I tags.
///
/// Simulated data and instruction accesses, end-of-run drain, and the
/// read-only statistics views the report builder needs.
pub trait MemoryHost {
    /// Data-side access (loads, prefetches, retiring stores) at `addr`,
    /// attributed to the instruction at byte-PC `pc`.
    fn data_access(&mut self, pc: u64, addr: u64, write: bool, now: u64) -> AccessResult;
    /// Instruction-side probe at byte-PC `pc`: true on an L1I hit. A miss
    /// fills the line (the bubble cost is the caller's to model).
    fn fetch_probe(&mut self, pc: u64) -> bool;
    /// Drains in-flight miss state up to `now` (end of run).
    fn advance(&mut self, now: u64);
    /// Per-level (L1D, L2, L3) access/hit counters.
    fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats);
    /// MSHR occupancy histogram (index = occupancy at allocation time).
    fn mshr_histogram(&self) -> &[u64];
    /// Demand accesses that reached each level (L1, L2, L3, DRAM).
    fn level_counts(&self) -> [u64; 4];
}

/// The built-in memory port: a three-level data hierarchy plus L1I tags.
#[derive(Debug, Clone)]
pub(crate) struct MemoryPort {
    hier: Hierarchy,
    /// L1 instruction cache (tags only; instruction "addresses" are
    /// `pc * 4`).
    icache: Cache,
}

impl MemoryPort {
    pub(crate) fn new(cfg: HierarchyConfig) -> MemoryPort {
        MemoryPort {
            hier: Hierarchy::new(cfg),
            icache: Cache::new(CacheConfig { size_bytes: 32 * 1024, ways: 8, block_bits: 6 }),
        }
    }
}

impl MemoryHost for MemoryPort {
    #[inline]
    fn data_access(&mut self, pc: u64, addr: u64, write: bool, now: u64) -> AccessResult {
        self.hier.access(pc, addr, write, now)
    }

    #[inline]
    fn fetch_probe(&mut self, pc: u64) -> bool {
        if self.icache.access(pc, false) {
            true
        } else {
            self.icache.fill(pc, false);
            false
        }
    }

    fn advance(&mut self, now: u64) {
        self.hier.advance(now);
    }

    fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        self.hier.cache_stats()
    }

    fn mshr_histogram(&self) -> &[u64] {
        self.hier.mshr_histogram()
    }

    fn level_counts(&self) -> [u64; 4] {
        self.hier.level_counts
    }
}

// ----------------------------------------------------------------------
// Telemetry
// ----------------------------------------------------------------------

/// Time-series schema: cumulative counters sampled every N cycles.
/// `cycle` stamps the row; everything else is cumulative-so-far, so rates
/// (IPC, miss ratios, predictor accuracy) are derived by differencing
/// adjacent rows.
pub(crate) const SERIES_COLUMNS: [&str; 27] = [
    "cycle",
    "retired",
    "fetched",
    "mispredictions",
    "retired_branches",
    "rob",
    "iq",
    "lsq",
    "front_q",
    "bq",
    "vq",
    "tq",
    "l1_accesses",
    "l1_hits",
    "l2_accesses",
    "l2_hits",
    "l3_accesses",
    "l3_hits",
    "cpi_base",
    "cpi_frontend",
    "cpi_mispredict",
    "cpi_cfd_stall",
    "cpi_mem_l1",
    "cpi_mem_l2",
    "cpi_mem_l3",
    "cpi_mem_dram",
    "cpi_backend",
];

/// Live telemetry attached to a run via
/// [`Core::with_telemetry`](crate::Core::with_telemetry).
#[derive(Debug, Clone)]
struct TelemetryState {
    cfg: TelemetryConfig,
    registry: MetricsRegistry,
    series: TimeSeries,
    trace: TraceLog,
    /// Next cycle stamp at which to push a series row.
    next_sample: u64,
}

impl TelemetryState {
    fn new(cfg: TelemetryConfig) -> TelemetryState {
        TelemetryState {
            registry: MetricsRegistry::enabled(),
            series: TimeSeries::new(cfg.sample_interval, SERIES_COLUMNS.to_vec()),
            trace: if cfg.trace { TraceLog::enabled() } else { TraceLog::disabled() },
            next_sample: if cfg.sample_interval > 0 { cfg.sample_interval } else { u64::MAX },
            cfg,
        }
    }
}

/// The kernel's only route to cfd-obs: metrics, interval time-series
/// sampling, and the pipeline event trace.
///
/// Telemetry only observes microarchitectural state — no method feeds back
/// into simulated timing, so every report field outside
/// [`RunReport::telemetry`](crate::RunReport::telemetry) is byte-identical
/// whether or not the port is armed.
pub trait TelemetryHost {
    /// Whether telemetry is armed at all (the null port answers false).
    fn armed(&self) -> bool;
    /// Adds `n` to a named monotonic counter.
    fn counter_add(&mut self, name: &'static str, n: u64);
    /// Sets a named gauge (its high-water mark is tracked).
    fn gauge_set(&mut self, name: &'static str, v: u64);
    /// Records one observation into a named histogram.
    fn histogram_record(&mut self, name: &'static str, v: u64);
    /// Emits an instant event into the pipeline trace.
    fn trace_instant(&mut self, name: &'static str, cat: &'static str, ts: u64, args: Vec<(&'static str, ArgValue)>);
    /// Emits a counter sample into the pipeline trace.
    fn trace_counter(&mut self, name: &'static str, cat: &'static str, ts: u64, args: Vec<(&'static str, ArgValue)>);
    /// Whether the event trace is collecting (cheaper than building args).
    fn trace_enabled(&self) -> bool;
    /// Whether a time-series row is due at `cycle` (or `force`d).
    fn sample_due(&self, cycle: u64, force: bool) -> bool;
    /// Pushes one time-series row stamped `cycle` and advances the
    /// sampling clock past it.
    fn record_sample(&mut self, cycle: u64, row: Vec<u64>);
    /// Whether the end-of-run row at `cycle` still needs to be pushed.
    fn needs_final_sample(&self, cycle: u64) -> bool;
    /// Detaches the collected artifacts (report finalization); the port
    /// reverts to null.
    fn take_report(&mut self) -> Option<TelemetryReport>;
}

/// The built-in telemetry port; null until armed.
#[derive(Debug, Clone, Default)]
pub(crate) struct TelemetryPort {
    state: Option<Box<TelemetryState>>,
}

impl TelemetryPort {
    pub(crate) fn unarmed() -> TelemetryPort {
        TelemetryPort::default()
    }

    pub(crate) fn armed_with(cfg: TelemetryConfig) -> TelemetryPort {
        TelemetryPort { state: Some(Box::new(TelemetryState::new(cfg))) }
    }
}

impl TelemetryHost for TelemetryPort {
    #[inline]
    fn armed(&self) -> bool {
        self.state.is_some()
    }

    fn counter_add(&mut self, name: &'static str, n: u64) {
        if let Some(t) = &mut self.state {
            t.registry.counter_add(name, n);
        }
    }

    fn gauge_set(&mut self, name: &'static str, v: u64) {
        if let Some(t) = &mut self.state {
            t.registry.gauge_set(name, v);
        }
    }

    fn histogram_record(&mut self, name: &'static str, v: u64) {
        if let Some(t) = &mut self.state {
            t.registry.histogram_record(name, v);
        }
    }

    fn trace_instant(&mut self, name: &'static str, cat: &'static str, ts: u64, args: Vec<(&'static str, ArgValue)>) {
        if let Some(t) = &mut self.state {
            t.trace.instant(name, cat, ts, 0, 0, args);
        }
    }

    fn trace_counter(&mut self, name: &'static str, cat: &'static str, ts: u64, args: Vec<(&'static str, ArgValue)>) {
        if let Some(t) = &mut self.state {
            t.trace.counter(name, cat, ts, 0, args);
        }
    }

    fn trace_enabled(&self) -> bool {
        self.state.as_ref().is_some_and(|t| t.trace.is_enabled())
    }

    #[inline]
    fn sample_due(&self, cycle: u64, force: bool) -> bool {
        match &self.state {
            Some(t) => t.cfg.sample_interval > 0 && (force || cycle >= t.next_sample),
            None => false,
        }
    }

    fn record_sample(&mut self, cycle: u64, row: Vec<u64>) {
        let Some(t) = &mut self.state else { return };
        t.series.push_row(row);
        let step = t.cfg.sample_interval.max(1);
        while t.next_sample <= cycle {
            t.next_sample += step;
        }
    }

    fn needs_final_sample(&self, cycle: u64) -> bool {
        match &self.state {
            Some(t) => t.cfg.sample_interval > 0 && t.series.rows.last().is_none_or(|r| r[0] != cycle),
            None => false,
        }
    }

    fn take_report(&mut self) -> Option<TelemetryReport> {
        self.state.take().map(|t| TelemetryReport { registry: t.registry, series: t.series, trace: t.trace })
    }
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

/// The kernel's only route to the deterministic fault injector
/// (see [`crate::fault`]).
pub trait FaultHost {
    /// Visits an injection site on cycle `now`; returns the armed fault's
    /// kind exactly once, at its `nth` visit.
    fn visit(&mut self, site: FaultSite, now: u64) -> Option<FaultKind>;
    /// Whether the armed fault has fired by now (recovery attribution).
    fn has_fired(&self) -> bool;
    /// The injection record, once fired.
    fn fired_record(&self) -> Option<InjectionRecord>;
    /// Whether a fault is armed at all (the null port answers false).
    fn armed(&self) -> bool;
}

/// The built-in fault port; null until armed.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultPort {
    state: Option<FaultState>,
}

impl FaultPort {
    pub(crate) fn unarmed() -> FaultPort {
        FaultPort::default()
    }

    pub(crate) fn armed_with(spec: FaultSpec) -> FaultPort {
        FaultPort { state: Some(FaultState::new(spec)) }
    }
}

impl FaultHost for FaultPort {
    #[inline]
    fn visit(&mut self, site: FaultSite, now: u64) -> Option<FaultKind> {
        self.state.as_mut()?.visit(site, now)
    }

    fn has_fired(&self) -> bool {
        self.state.as_ref().is_some_and(|f| f.fired().is_some())
    }

    fn fired_record(&self) -> Option<InjectionRecord> {
        self.state.as_ref().and_then(|f| f.fired().cloned())
    }

    #[inline]
    fn armed(&self) -> bool {
        self.state.is_some()
    }
}

// ----------------------------------------------------------------------
// Control
// ----------------------------------------------------------------------

/// The kernel's only route to its supervisor: the per-cycle progress
/// heartbeat and cooperative cancellation.
pub trait ControlHost {
    /// Called once per cycle before the stages run: publishes `cycle` as
    /// the progress heartbeat, then trips [`CoreError::Cancelled`] when
    /// the cycle budget is exhausted or an external cancel was requested.
    fn poll(&mut self, cycle: u64) -> Result<(), CoreError>;
}

/// The built-in control port; null (free) until a token is engaged.
#[derive(Debug, Clone, Default)]
pub(crate) struct ControlPort {
    token: Option<CancelToken>,
}

impl ControlPort {
    pub(crate) fn disengaged() -> ControlPort {
        ControlPort::default()
    }

    pub(crate) fn engaged(token: CancelToken) -> ControlPort {
        ControlPort { token: Some(token) }
    }
}

impl ControlHost for ControlPort {
    #[inline]
    fn poll(&mut self, cycle: u64) -> Result<(), CoreError> {
        let Some(tok) = &self.token else { return Ok(()) };
        // Publish progress before checking: a supervisor that sees a stale
        // heartbeat knows the loop itself stopped turning.
        tok.note(cycle);
        if let Some(b) = tok.budget() {
            if cycle >= b {
                return Err(CoreError::Cancelled { cycle, budget: Some(b) });
            }
        }
        if tok.is_cancelled() {
            return Err(CoreError::Cancelled { cycle, budget: None });
        }
        Ok(())
    }
}
