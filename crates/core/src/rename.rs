//! Register renaming: RMT, freelist, physical register file, VQ renamer.
//!
//! The PRF holds *values* (the simulator is execute-at-execute), readiness
//! cycles, and the memory-level taint used for the paper's "mispredictions
//! fed by L1/L2/L3/MEM" breakdowns (Fig. 2a, 25b).
//!
//! The VQ renamer implements §IV-B: a circular buffer of physical-register
//! mappings that links each `Pop_VQ` to its `Push_VQ` through the existing
//! PRF, leaving the backend untouched.

use cfd_isa::{Reg, NUM_REGS};
use cfd_mem::MemLevel;
use std::collections::VecDeque;

/// A physical register id.
pub type PhysReg = u16;

/// Memory-level taint: `None` = not memory-fed.
pub type Taint = Option<MemLevel>;

/// Joins two taints, keeping the furthest level.
pub fn join_taint(a: Taint, b: Taint) -> Taint {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.max(y)),
    }
}

#[derive(Debug, Clone, Copy)]
struct PhysEntry {
    value: i64,
    /// Cycle at which the value becomes available (u64::MAX = not computed).
    ready_at: u64,
    taint: Taint,
}

/// The physical register file + freelist + rename map table.
///
/// Each physical register also carries a *waiter list*: the ROB ordinals of
/// dispatched instructions blocked on it. The scheduler registers a consumer
/// on its first not-yet-computed source and the producer's write drains the
/// list into the wakeup wheel, so per-cycle scheduling work is proportional
/// to wakeup events rather than IQ occupancy.
#[derive(Debug, Clone)]
pub struct RenameState {
    prf: Vec<PhysEntry>,
    rmt: [PhysReg; NUM_REGS],
    freelist: VecDeque<PhysReg>,
    waiters: Vec<Vec<u64>>,
}

impl RenameState {
    /// Creates rename state with `prf_size` physical registers; the first
    /// 32 are bound to the architectural registers, value 0, ready.
    pub fn new(prf_size: usize) -> RenameState {
        assert!(prf_size > NUM_REGS + 8, "PRF must exceed the architectural registers");
        let prf = vec![PhysEntry { value: 0, ready_at: 0, taint: None }; prf_size];
        let mut rmt = [0; NUM_REGS];
        for (i, m) in rmt.iter_mut().enumerate() {
            *m = i as PhysReg;
        }
        let freelist = (NUM_REGS as PhysReg..prf_size as PhysReg).collect();
        let waiters = vec![Vec::new(); prf_size];
        RenameState { prf, rmt, freelist, waiters }
    }

    /// Free physical registers remaining.
    pub fn free_regs(&self) -> usize {
        self.freelist.len()
    }

    /// Current mapping of an architectural register.
    pub fn map(&self, r: Reg) -> PhysReg {
        self.rmt[r.index()]
    }

    /// Renames a destination: allocates a physical register, updates the
    /// RMT, and returns `(new_phys, previous_phys)`. Returns `None` when
    /// the freelist is empty (dispatch must stall).
    pub fn rename_dest(&mut self, r: Reg) -> Option<(PhysReg, PhysReg)> {
        let p = self.freelist.pop_front()?;
        self.prf[p as usize] = PhysEntry { value: 0, ready_at: u64::MAX, taint: None };
        let prev = self.rmt[r.index()];
        self.rmt[r.index()] = p;
        Some((p, prev))
    }

    /// Allocates a physical register without touching the RMT (for VQ
    /// pushes, whose destination is the VQ tail).
    pub fn alloc_phys(&mut self) -> Option<PhysReg> {
        let p = self.freelist.pop_front()?;
        self.prf[p as usize] = PhysEntry { value: 0, ready_at: u64::MAX, taint: None };
        Some(p)
    }

    /// Frees a physical register (at retire of the overwriting instruction,
    /// or during squash).
    pub fn free_phys(&mut self, p: PhysReg) {
        debug_assert!(!self.freelist.contains(&p), "double free of p{p}");
        self.freelist.push_back(p);
    }

    /// Rolls back one rename during a squash walk (youngest first).
    pub fn unrename(&mut self, r: Reg, new_phys: PhysReg, prev_phys: PhysReg) {
        debug_assert_eq!(self.rmt[r.index()], new_phys, "unrename out of order");
        self.rmt[r.index()] = prev_phys;
        self.free_phys(new_phys);
    }

    /// Whether the physical register's value is available at `now`.
    pub fn is_ready(&self, p: PhysReg, now: u64) -> bool {
        self.prf[p as usize].ready_at <= now
    }

    /// The cycle the register becomes ready (`u64::MAX` if not computed).
    pub fn ready_at(&self, p: PhysReg) -> u64 {
        self.prf[p as usize].ready_at
    }

    /// Reads a value (caller must have checked readiness for timing
    /// correctness; values are written eagerly at issue).
    pub fn read(&self, p: PhysReg) -> i64 {
        self.prf[p as usize].value
    }

    /// The taint of a register.
    pub fn taint(&self, p: PhysReg) -> Taint {
        self.prf[p as usize].taint
    }

    /// Writes a value that becomes visible at `ready_at`.
    pub fn write(&mut self, p: PhysReg, value: i64, ready_at: u64, taint: Taint) {
        self.prf[p as usize] = PhysEntry { value, ready_at, taint };
    }

    /// Registers the instruction with ROB ordinal `seq` as blocked on `p`
    /// (whose value has not been computed yet).
    pub fn add_waiter(&mut self, p: PhysReg, seq: u64) {
        self.waiters[p as usize].push(seq);
    }

    /// Drains and returns the waiter list of `p` (called by the producer's
    /// write so the scheduler can move the consumers to its wakeup wheel).
    pub fn take_waiters(&mut self, p: PhysReg) -> Vec<u64> {
        std::mem::take(&mut self.waiters[p as usize])
    }

    /// Total instructions parked on waiter lists (diagnostics only).
    pub fn waiting(&self) -> usize {
        self.waiters.iter().map(Vec::len).sum()
    }
}

/// Snapshot of the VQ renamer for branch recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VqSnapshot {
    /// Head (next pop) position.
    pub head: u64,
    /// Tail (next push) position.
    pub tail: u64,
}

/// The VQ renamer (§IV-B): a circular buffer of PRF mappings.
#[derive(Debug, Clone)]
pub struct VqRenamer {
    maps: Vec<PhysReg>,
    size: usize,
    /// Next pop position.
    pub head: u64,
    /// Next push position.
    pub tail: u64,
    /// Retired pushes minus retired pops (architectural occupancy).
    pub net_ctr: u64,
    /// In-flight pushes.
    pub pending_ctr: u64,
}

impl VqRenamer {
    /// Creates a VQ renamer of `size` entries.
    pub fn new(size: usize) -> VqRenamer {
        assert!(size > 0);
        VqRenamer { maps: vec![0; size], size, head: 0, tail: 0, net_ctr: 0, pending_ctr: 0 }
    }

    /// Occupancy.
    pub fn length(&self) -> u64 {
        self.net_ctr + self.pending_ctr
    }

    /// Whether a push renamed now must stall.
    pub fn push_would_stall(&self) -> bool {
        self.length() >= self.size as u64
    }

    /// Whether a pop renamed now would underflow (no in-flight or
    /// architectural value to link to). A correct program never does this.
    pub fn pop_would_underflow(&self) -> bool {
        self.head >= self.tail
    }

    /// Renames a `Push_VQ`: records the push's destination mapping at the
    /// tail.
    pub fn rename_push(&mut self, dest: PhysReg) {
        assert!(!self.push_would_stall(), "VQ push renamed into a full queue");
        let idx = (self.tail % self.size as u64) as usize;
        self.maps[idx] = dest;
        self.tail += 1;
        self.pending_ctr += 1;
    }

    /// Renames a `Pop_VQ`: returns the head mapping as the pop's source.
    pub fn rename_pop(&mut self) -> PhysReg {
        assert!(!self.pop_would_underflow(), "VQ pop renamed from an empty queue");
        let idx = (self.head % self.size as u64) as usize;
        self.head += 1;
        self.maps[idx]
    }

    /// Takes a recovery snapshot.
    ///
    /// Note: the VQ renamer lives in the *rename* stage (§IV-B), so unlike
    /// the fetch-resident BQ/TQ it is repaired by walking squashed
    /// instructions ([`unrename_push`](Self::unrename_push) /
    /// [`unrename_pop`](Self::unrename_pop)) rather than from fetch-time
    /// snapshots; the snapshot is exposed for tests and committed-state
    /// queries.
    pub fn snapshot(&self) -> VqSnapshot {
        VqSnapshot { head: self.head, tail: self.tail }
    }

    /// Restores a snapshot exactly (test/committed-state use only).
    pub fn recover(&mut self, snap: &VqSnapshot) {
        let squashed = self.tail.saturating_sub(snap.tail);
        self.head = snap.head;
        self.tail = snap.tail;
        self.pending_ctr = self.pending_ctr.saturating_sub(squashed);
    }

    /// Undoes the most recent [`rename_push`](Self::rename_push) during a
    /// youngest-first squash walk.
    pub fn unrename_push(&mut self) {
        debug_assert!(self.tail > 0 && self.pending_ctr > 0);
        self.tail -= 1;
        self.pending_ctr -= 1;
    }

    /// Undoes the most recent [`rename_pop`](Self::rename_pop) during a
    /// youngest-first squash walk.
    pub fn unrename_pop(&mut self) {
        debug_assert!(self.head > 0);
        self.head -= 1;
    }

    /// Retirement of a push.
    pub fn retire_push(&mut self) {
        debug_assert!(self.pending_ctr > 0);
        self.pending_ctr -= 1;
        self.net_ctr += 1;
    }

    /// Retirement of a pop.
    pub fn retire_pop(&mut self) {
        debug_assert!(self.net_ctr > 0, "VQ pop retired before its push");
        self.net_ctr -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_links_consumer_to_producer() {
        let mut rs = RenameState::new(64);
        let r5 = Reg::new(5);
        let (p, _prev) = rs.rename_dest(r5).unwrap();
        rs.write(p, 42, 10, None);
        assert_eq!(rs.map(r5), p);
        assert!(!rs.is_ready(p, 9));
        assert!(rs.is_ready(p, 10));
        assert_eq!(rs.read(p), 42);
    }

    #[test]
    fn unrename_restores_previous_mapping() {
        let mut rs = RenameState::new(64);
        let r5 = Reg::new(5);
        let before = rs.map(r5);
        let (p, prev) = rs.rename_dest(r5).unwrap();
        assert_eq!(prev, before);
        rs.unrename(r5, p, prev);
        assert_eq!(rs.map(r5), before);
    }

    #[test]
    fn freelist_exhaustion_returns_none() {
        let mut rs = RenameState::new(42); // 10 free
        let r1 = Reg::new(1);
        for _ in 0..10 {
            assert!(rs.rename_dest(r1).is_some());
        }
        assert!(rs.rename_dest(r1).is_none());
    }

    #[test]
    fn free_then_realloc_roundtrip() {
        let mut rs = RenameState::new(64);
        let (p, prev) = rs.rename_dest(Reg::new(3)).unwrap();
        let _ = prev;
        let before = rs.free_regs();
        rs.free_phys(p);
        assert_eq!(rs.free_regs(), before + 1);
    }

    #[test]
    fn taint_joins_to_furthest() {
        assert_eq!(join_taint(None, None), None);
        assert_eq!(join_taint(Some(MemLevel::L2), None), Some(MemLevel::L2));
        assert_eq!(join_taint(Some(MemLevel::L2), Some(MemLevel::Mem)), Some(MemLevel::Mem));
    }

    #[test]
    fn vq_renamer_fifo_links() {
        let mut vq = VqRenamer::new(4);
        vq.rename_push(10);
        vq.rename_push(11);
        assert_eq!(vq.rename_pop(), 10);
        assert_eq!(vq.rename_pop(), 11);
    }

    #[test]
    fn vq_renamer_interleaved_push_pop() {
        // The paper's Fig. 12 scenario: two pushes then two pops link
        // 1st->1st, 2nd->2nd even with an intervening push.
        let mut vq = VqRenamer::new(8);
        vq.rename_push(2);
        vq.rename_push(7);
        assert_eq!(vq.rename_pop(), 2);
        vq.rename_push(9);
        assert_eq!(vq.rename_pop(), 7);
        assert_eq!(vq.rename_pop(), 9);
    }

    #[test]
    fn vq_recovery_restores_pointers() {
        let mut vq = VqRenamer::new(4);
        vq.rename_push(1);
        let snap = vq.snapshot();
        vq.rename_push(2);
        vq.rename_pop();
        vq.recover(&snap);
        assert_eq!(vq.length(), 1);
        assert_eq!(vq.rename_pop(), 1);
    }

    #[test]
    fn vq_occupancy_tracks_retirement() {
        let mut vq = VqRenamer::new(2);
        vq.rename_push(1);
        vq.rename_push(2);
        assert!(vq.push_would_stall());
        vq.rename_pop();
        vq.retire_push();
        vq.retire_push();
        assert!(vq.push_would_stall(), "pop not retired yet");
        vq.retire_pop();
        assert!(!vq.push_would_stall());
    }

    #[test]
    #[should_panic(expected = "VQ pop renamed from an empty queue")]
    fn vq_underflow_panics() {
        let mut vq = VqRenamer::new(2);
        vq.rename_pop();
    }
}
