//! Host-side stage self-profiler (the `stage-profile` feature).
//!
//! Attributes host wall time and invocation counts to the five stage
//! groups the step loop sequences every cycle. This replaces the old
//! ad-hoc `CFD_PROF` env-var instrumentation with a typed API:
//! [`Core::run_profiled`](crate::Core::run_profiled) returns a
//! [`StageProfile`] next to the ordinary
//! [`RunReport`](crate::RunReport), and the report is byte-identical to
//! an unprofiled run — timing is observability only and never feeds
//! back into simulated state.
//!
//! Shares are computed in **basis points** with largest-remainder
//! rounding so they always sum to exactly 10 000 (100.00%) whenever any
//! time was recorded — the invariant the `simperf --profile` CI gate
//! asserts.

use std::fmt::Write as _;
use std::time::Duration;

/// Number of profiled stage buckets.
pub const STAGE_COUNT: usize = 5;

/// Bucket names, in pipeline order from the front end down to commit.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = ["frontend", "dispatch", "scheduler", "lsq", "commit"];

/// A profiled stage bucket; the discriminant indexes [`STAGE_NAMES`]
/// and the arrays in [`StageProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Fetch/decode/rename delivery, BTB + direction prediction, and
    /// the fetch-resident BQ/TQ machinery (`fetch`).
    Frontend = 0,
    /// Rename, ROB/IQ/LSQ allocation, checkpoints (`dispatch`).
    Dispatch = 1,
    /// Event-driven wakeup + oldest-first select + execute (`issue`).
    Scheduler = 2,
    /// Load/store completion, forwarding, cache hierarchy (`complete`).
    Lsq = 3,
    /// In-order retirement, oracle check, predictor training (`commit`).
    Commit = 4,
}

/// Host wall-time attribution for one run (or several merged runs).
///
/// All fields are plain integers so merged profiles aggregate exactly;
/// only the `ns` column is host-dependent — `calls`, `cycles` and the
/// scheduler counters are deterministic simulation facts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Accumulated host nanoseconds per bucket.
    pub ns: [u64; STAGE_COUNT],
    /// Stage invocations per bucket (commit also runs on the halting
    /// cycle, so its count can exceed `cycles` by one per run).
    pub calls: [u64; STAGE_COUNT],
    /// Simulated cycles covered by this profile.
    pub cycles: u64,
    /// Readiness checks the event-driven scheduler performed.
    pub sched_ready_checks: u64,
    /// Wakeup events the scheduler processed.
    pub sched_wakeup_events: u64,
    /// Readiness checks a per-cycle polling scheduler would have done.
    pub sched_poll_equiv: u64,
}

impl StageProfile {
    /// Records one timed stage invocation.
    pub fn lap(&mut self, stage: Stage, elapsed: Duration) {
        let i = stage as usize;
        self.ns[i] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.calls[i] += 1;
    }

    /// Folds `other` into `self` (per-bucket and counter sums).
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..STAGE_COUNT {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
        self.cycles += other.cycles;
        self.sched_ready_checks += other.sched_ready_checks;
        self.sched_wakeup_events += other.sched_wakeup_events;
        self.sched_poll_equiv += other.sched_poll_equiv;
    }

    /// Total profiled nanoseconds across all buckets.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Per-bucket share of total time in basis points (1/100 of a
    /// percent), largest-remainder rounded so the shares sum to exactly
    /// 10 000 whenever `total_ns() > 0` (all zeros otherwise). Ties go
    /// to the earlier bucket, keeping the rounding deterministic.
    pub fn shares_bp(&self) -> [u64; STAGE_COUNT] {
        let total: u128 = self.ns.iter().map(|&n| u128::from(n)).sum();
        if total == 0 {
            return [0; STAGE_COUNT];
        }
        let mut bp = [0u64; STAGE_COUNT];
        let mut assigned = 0u64;
        let mut remainders = [(0u128, 0usize); STAGE_COUNT];
        for i in 0..STAGE_COUNT {
            let scaled = u128::from(self.ns[i]) * 10_000;
            bp[i] = (scaled / total) as u64;
            assigned += bp[i];
            remainders[i] = (scaled % total, i);
        }
        remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in remainders.iter().take((10_000 - assigned) as usize) {
            bp[i] += 1;
        }
        bp
    }

    /// Plain-text per-stage table (name, ns, calls, share) plus a
    /// totals row. Shares render as `DD.DD%` from [`shares_bp`](Self::shares_bp),
    /// so the printed column sums to exactly 100.00%.
    pub fn table(&self) -> String {
        let bp = self.shares_bp();
        let mut out = format!("{:<10} {:>14} {:>12} {:>8}\n", "stage", "ns", "calls", "share");
        for i in 0..STAGE_COUNT {
            let share = format!("{}.{:02}%", bp[i] / 100, bp[i] % 100);
            let _ = writeln!(out, "{:<10} {:>14} {:>12} {share:>8}", STAGE_NAMES[i], self.ns[i], self.calls[i]);
        }
        let total_bp: u64 = bp.iter().sum();
        let share = format!("{}.{:02}%", total_bp / 100, total_bp % 100);
        let calls: u64 = self.calls.iter().sum();
        let _ = writeln!(out, "{:<10} {:>14} {:>12} {share:>8}", "TOTAL", self.total_ns(), calls);
        out
    }

    /// JSON object rendering with a fixed key order (ns and calls keyed
    /// by stage name, then the deterministic counters).
    pub fn to_json(&self) -> String {
        let keyed = |vals: &[u64; STAGE_COUNT]| {
            let mut s = String::from("{");
            for i in 0..STAGE_COUNT {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", STAGE_NAMES[i], vals[i]);
            }
            s.push('}');
            s
        };
        format!(
            "{{\"ns\":{},\"calls\":{},\"cycles\":{},\"sched_ready_checks\":{},\"sched_wakeup_events\":{},\"sched_poll_equiv\":{}}}",
            keyed(&self.ns),
            keyed(&self.calls),
            self.cycles,
            self.sched_ready_checks,
            self.sched_wakeup_events,
            self.sched_poll_equiv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_exactly_ten_thousand() {
        // Awkward splits that plain floor-division would round to 9998.
        let shares = |ns| StageProfile { ns, ..Default::default() }.shares_bp();
        assert_eq!(shares([1, 1, 1, 3, 1]).iter().sum::<u64>(), 10_000);
        assert_eq!(shares([333, 333, 333, 1, 0]).iter().sum::<u64>(), 10_000);
        assert_eq!(shares([u64::MAX / 7; STAGE_COUNT]).iter().sum::<u64>(), 10_000);
        assert_eq!(shares([0; STAGE_COUNT]), [0; STAGE_COUNT], "no time recorded means no shares");
    }

    #[test]
    fn merge_is_per_bucket_addition() {
        let mut a = StageProfile { ns: [1, 2, 3, 4, 5], calls: [10, 10, 10, 10, 11], cycles: 10, ..Default::default() };
        let b = StageProfile {
            ns: [5, 4, 3, 2, 1],
            calls: [7, 7, 7, 7, 8],
            cycles: 7,
            sched_ready_checks: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ns, [6; STAGE_COUNT]);
        assert_eq!(a.calls, [17, 17, 17, 17, 19]);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.sched_ready_checks, 3);
        assert_eq!(a.total_ns(), 30);
    }

    #[test]
    fn table_and_json_are_deterministic_given_the_profile() {
        let p = StageProfile { ns: [10, 20, 30, 25, 15], calls: [4, 4, 4, 4, 5], cycles: 4, ..Default::default() };
        let table = p.table();
        assert!(table.contains("frontend"), "{table}");
        assert!(table.contains("100.00%"), "{table}");
        assert_eq!(p.table(), table);
        let json = p.to_json();
        assert!(json.starts_with("{\"ns\":{\"frontend\":10,"), "{json}");
        assert!(json.contains("\"cycles\":4"), "{json}");
    }

    #[test]
    fn profiled_run_report_matches_plain_run() {
        use cfd_isa::{Assembler, MemImage, Reg};
        let program = || {
            let (i, n, acc) = (Reg::new(1), Reg::new(2), Reg::new(3));
            let mut a = Assembler::new();
            a.li(n, 64);
            a.label("top");
            a.addi(acc, acc, 1);
            a.addi(i, i, 1);
            a.blt(i, n, "top");
            a.halt();
            a.finish().unwrap()
        };
        let plain =
            crate::Core::new(crate::CoreConfig::default(), program(), MemImage::new()).unwrap().run(100_000).unwrap();
        let (report, profile) = crate::Core::new(crate::CoreConfig::default(), program(), MemImage::new())
            .unwrap()
            .run_profiled(100_000)
            .unwrap();
        assert_eq!(report.stats.cycles, plain.stats.cycles, "profiling must not perturb simulated time");
        assert_eq!(report.stats.retired, plain.stats.retired);
        assert_eq!(report.stats.mispredictions, plain.stats.mispredictions);
        assert_eq!(profile.cycles, report.stats.cycles);
        assert!(profile.calls.iter().all(|&c| c > 0), "every stage ran: {profile:?}");
        assert!(profile.calls[Stage::Commit as usize] >= profile.cycles);
        assert_eq!(profile.shares_bp().iter().sum::<u64>(), 10_000);
    }
}
