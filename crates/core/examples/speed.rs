//! Host-side simulator speed probe: times one hot loop and reports
//! simulated-cycles-per-host-second. Timings are host-dependent.

use cfd_core::{Core, CoreConfig};
use cfd_isa::{Assembler, MemImage, Reg};
use std::time::Instant;
fn r(i: usize) -> Reg {
    Reg::new(i)
}
fn main() {
    let n = 200_000i64;
    let (i, nn, base, x, eps, p, tmp, cnt) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut a = Assembler::new();
    a.li(nn, n);
    a.li(base, 0x100000);
    a.li(eps, 50);
    a.label("top");
    a.sll(tmp, i, 3i64);
    a.add(tmp, tmp, base);
    a.ld(x, 0, tmp);
    a.slt(p, x, eps);
    a.beqz(p, "skip");
    a.addi(cnt, cnt, 1);
    a.add(r(9), r(9), x);
    a.label("skip");
    a.addi(i, i, 1);
    a.blt(i, nn, "top");
    a.halt();
    let mut mem = MemImage::new();
    let mut s = 99u64;
    for k in 0..n as u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        mem.write_u64(0x100000 + 8 * k, s % 100);
    }
    let t0 = Instant::now();
    let rep = Core::new(CoreConfig::default(), a.finish().unwrap(), mem).unwrap().run(100_000_000).unwrap();
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "retired={} cycles={} ipc={:.2} | {:.2} M instr/s, {:.2} M cyc/s",
        rep.stats.retired,
        rep.stats.cycles,
        rep.ipc(),
        rep.stats.retired as f64 / dt / 1e6,
        rep.stats.cycles as f64 / dt / 1e6
    );
}
